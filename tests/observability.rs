//! Integration tests for the observability layer: the structured event
//! stream a full optimization run emits, its agreement with the
//! engine's own statistics, and the CLI-level fail-fast and
//! manifest-determinism contracts that `repro check` and CI rely on.

use eco_core::events::{check_stream, field};
use eco_core::{EngineConfig, SearchOptions, TuneRequest, TuneResponse};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-observability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One real (small) tune of MM with the event stream captured to a
/// file; returns the report and the raw stream text.
fn tuned_with_events(tag: &str, threads: usize) -> (TuneResponse, String) {
    let dir = scratch(tag);
    let path = dir.join("events.jsonl");
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(16)
        .max_variants(2)
        .build()
        .expect("options");
    let config = EngineConfig::new().threads(threads).events(&path);
    let report = TuneRequest::new(Kernel::matmul(), machine)
        .options(opts)
        .engine(config)
        .run()
        .expect("tuned");
    let text = fs::read_to_string(&path).expect("event stream");
    let _ = fs::remove_dir_all(&dir);
    (report, text)
}

#[test]
fn tune_event_stream_is_balanced_and_covers_search_stages() {
    let (report, text) = tuned_with_events("stages", 1);
    let summary = check_stream(&text).expect("well-formed stream");
    // Exactly one root span per run, closed like every other span
    // (check_stream already rejects unbalanced or non-LIFO nesting).
    assert_eq!(summary.spans_named("optimize"), 1, "{text}");
    assert_eq!(summary.spans_named("screen"), 1);
    // Every §3.2 stage of the guided search shows up as a span.
    for stage in [
        "variant", "stage", "shape", "halve", "refine", "prefetch", "adjust",
    ] {
        assert!(
            summary.spans_named(stage) >= 1,
            "missing {stage} span; spans: {:?}",
            summary.span_names
        );
    }
    // And the engine-side events ride along in the same stream.
    for ev in [
        "point",
        "batch",
        "engine_stats",
        "plan_compile",
        "variant_kept",
    ] {
        assert!(
            summary.events_named(ev) >= 1,
            "missing {ev} event; events: {:?}",
            summary.event_names
        );
    }
    // The per-stage counters the manifest records agree with the
    // stream: every searched point produced a `point` event.
    let per_stage_total: usize = report.tuned.stats.per_stage.iter().map(|(_, n)| n).sum();
    assert!(per_stage_total > 0);
    assert_eq!(
        summary.events_named("point") as u64,
        report.engine.requested
    );
}

#[test]
fn memo_hit_point_events_match_engine_cache_stats() {
    let (report, text) = tuned_with_events("memo", 2);
    let point_lines: Vec<&str> = text
        .lines()
        .filter(|l| field(l, "name") == Some("point"))
        .collect();
    assert_eq!(point_lines.len() as u64, report.engine.requested);
    let hits = point_lines
        .iter()
        .filter(|l| field(l, "cache_hit") == Some("true"))
        .count() as u64;
    assert_eq!(
        hits, report.engine.cache_hits,
        "memo-hit point events must match the engine's cache stats"
    );
    let misses = point_lines.len() as u64 - hits;
    assert_eq!(misses, report.engine.evaluated);
}

#[test]
fn eco_cli_writes_valid_events_and_deterministic_manifests() {
    let dir = scratch("cli");
    let eco = env!("CARGO_BIN_EXE_eco");
    let run = |threads: &str, tag: &str| -> (String, String) {
        let events = dir.join(format!("{tag}.events.jsonl"));
        let manifest = dir.join(format!("{tag}.manifest.json"));
        let out = Command::new(eco)
            .args([
                "tune",
                "mm",
                "--search-n",
                "16",
                "--threads",
                threads,
                "--events",
                events.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
            ])
            .output()
            .expect("run eco");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            fs::read_to_string(&events).expect("events"),
            fs::read_to_string(&manifest).expect("manifest"),
        )
    };
    let (events1, manifest1) = run("1", "a");
    let (_, manifest2) = run("1", "b");
    let (_, manifest3) = run("3", "c");
    let summary = check_stream(&events1).expect("well-formed CLI stream");
    assert_eq!(summary.spans_named("optimize"), 1);
    assert!(summary.events_named("point") > 0);
    assert_eq!(manifest1, manifest2, "same run must render identical bytes");
    assert_eq!(
        manifest1, manifest3,
        "thread count must not leak into the manifest"
    );
    assert!(manifest1.contains("\"kernel\": \"mm\""));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn eco_cli_fails_fast_on_unwritable_telemetry_paths() {
    let eco = env!("CARGO_BIN_EXE_eco");
    for (flag, kind) in [
        ("--trace", "trace"),
        ("--events", "events"),
        ("--manifest", "manifest"),
    ] {
        let out = Command::new(eco)
            .args([
                "tune",
                "mm",
                "--search-n",
                "16",
                flag,
                "/nonexistent-dir/x/t.jsonl",
            ])
            .output()
            .expect("run eco");
        assert!(!out.status.success(), "{flag} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("cannot create {kind} file")),
            "{flag}: unexpected stderr: {stderr}"
        );
        // Fail-fast: the search never started, so nothing was printed.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            !stdout.contains("selected"),
            "{flag}: search ran before the error: {stdout}"
        );
    }
}
