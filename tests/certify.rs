//! Differential tests for the static variant certifier (`eco-verify`):
//! across random kernels × derived variants × random parameters, a
//! certificate implies the engine executes the candidate without a
//! single out-of-bounds access, and injected corruptions — an illegal
//! interchange, a shrunk array, a hopeless prefetch, a deleted copy
//! write-back — are each caught statically with their distinct codes.

use eco_analysis::NestInfo;
use eco_core::{derive_variants, generate, ParamValues};
use eco_exec::{interpret, measure, ArrayLayout, LayoutOptions, Params, Storage};
use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_transform::insert_prefetch;
use eco_verify::{certify, DiagCode};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Random tile/unroll parameters for a random variant of a random
/// kernel, mirroring the semantic-preservation proptest in `props.rs`.
fn random_point(
    runner: &mut proptest::test_runner::TestRunner,
) -> (usize, usize, u64, u64, Vec<u64>, i64) {
    let strategy = (
        0..Kernel::all().len(),
        0..16usize,
        1u64..6,
        1u64..6,
        prop::collection::vec(1u64..40, 3),
        7i64..26,
    );
    strategy.new_tree(runner).expect("tree").current()
}

fn params_for(v: &eco_core::Variant, ui: u64, uj: u64, ts: &[u64]) -> ParamValues {
    let mut params = ParamValues::new();
    let mut ti = ts.iter().copied().cycle();
    for nm in &v.param_names() {
        let val = if nm.starts_with('U') {
            if nm == "UI" {
                ui
            } else {
                uj
            }
        } else {
            ti.next().expect("cycle")
        };
        params.insert(nm.clone(), val);
    }
    params
}

/// Soundness, differentially: whenever the certifier passes a generated
/// candidate, the engine's bounds-checked interpreter and the simulated
/// measurement both execute it without a single out-of-bounds error.
#[test]
fn certified_variants_execute_without_oob() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernels = Kernel::all();
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let mut certified = 0usize;
    for _ in 0..48 {
        let (ki, vi, ui, uj, ts, n) = random_point(&mut runner);
        let kernel = &kernels[ki];
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let variants = derive_variants(&nest, &machine, &kernel.program);
        let v = &variants[vi % variants.len()];
        let params = params_for(v, ui, uj, &ts);
        let Ok(program) = generate(kernel, &nest, v, &params, &machine) else {
            continue; // infeasible point: the search skips these too
        };
        let size_name = kernel.program.var(kernel.size).name.clone();
        let cert = certify(&kernel.program, &program, &[(size_name, n)]);
        if !cert.ok() {
            continue; // conservative rejections are allowed to be wrong
        }
        certified += 1;
        let pr = Params::new().with(kernel.size, n);
        measure(&program, &pr, &machine, &LayoutOptions::default()).unwrap_or_else(|e| {
            panic!(
                "{} {:?} N={n} certified but measurement failed: {e}\n{program}",
                v.name, params
            )
        });
        let layout = ArrayLayout::new(&program, &pr, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::seeded(&layout, 1234);
        interpret(&program, &pr, &layout, &mut st).unwrap_or_else(|e| {
            panic!(
                "{} {:?} N={n} certified but interpretation failed: {e}\n{program}",
                v.name, params
            )
        });
    }
    assert!(
        certified >= 8,
        "only {certified}/48 random points were certified; the property is near-vacuous"
    );
}

/// Shrinking a data array of an otherwise-valid generated candidate is
/// caught statically as ECO-E001 — across random variants, not just one
/// hand-picked program.
#[test]
fn shrunk_arrays_are_flagged_e001() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let mut flagged = 0usize;
    for _ in 0..32 {
        let (_, vi, ui, uj, ts, n) = random_point(&mut runner);
        let v = &variants[vi % variants.len()];
        let params = params_for(v, ui, uj, &ts);
        let Ok(program) = generate(&kernel, &nest, v, &params, &machine) else {
            continue;
        };
        let mut bad = program.clone();
        let nv = bad.var_by_name("N").expect("N");
        let c = bad.array_by_name("C").expect("C");
        // C is read and written over [0, N-1]^2 by every variant.
        bad.arrays[c.index()].dims = vec![
            AffineExpr::var(nv) - AffineExpr::constant(1),
            AffineExpr::var(nv) - AffineExpr::constant(1),
        ];
        let cert = certify(&kernel.program, &bad, &[("N".to_string(), n)]);
        assert_eq!(
            cert.first_error(),
            Some(DiagCode::OutOfBounds),
            "{} {:?} N={n}:\n{}",
            v.name,
            params,
            cert.render()
        );
        flagged += 1;
    }
    assert!(flagged >= 8, "only {flagged}/32 corrupted points checked");
}

/// A prefetch no iteration can ever land inside the array is caught
/// statically as ECO-E002 on random generated candidates.
#[test]
fn hopeless_prefetches_are_flagged_e002() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let mut flagged = 0usize;
    for _ in 0..32 {
        let (_, vi, ui, uj, ts, n) = random_point(&mut runner);
        let v = &variants[vi % variants.len()];
        let params = params_for(v, ui, uj, &ts);
        let Ok(program) = generate(&kernel, &nest, v, &params, &machine) else {
            continue;
        };
        // Distance 4096 puts the prefetched line past any N < 26 array
        // for every iteration.
        let b = program.array_by_name("B").expect("B");
        let Ok(pf) = insert_prefetch(&program, v.register_carrier(), b, 4096) else {
            continue; // copy variants read B only through a buffer
        };
        let cert = certify(&kernel.program, &pf, &[("N".to_string(), n)]);
        assert_eq!(
            cert.first_error(),
            Some(DiagCode::PrefetchNeverInBounds),
            "{} {:?} N={n}:\n{}",
            v.name,
            params,
            cert.render()
        );
        flagged += 1;
    }
    assert!(flagged >= 8, "only {flagged}/32 corrupted points checked");
}

/// `DO I: C[I] = C[I] + 1` staged through a copy buffer; with
/// `write_back` the buffer result is flushed to `C`, without it the
/// computation is silently dropped.
fn copy_roundtrip(write_back: bool) -> (Program, Program) {
    let mut orig = Program::new("inc");
    let n = orig.add_param("N");
    let i = orig.add_loop_var("I");
    let c = orig.add_array("C", vec![AffineExpr::var(n)]);
    let hi = AffineExpr::var(n) - AffineExpr::constant(1);
    let at = |v| ArrayRef::new(c, vec![AffineExpr::var(v)]);
    let mk = |var, body| {
        Stmt::For(Loop {
            var,
            lo: 0.into(),
            hi: hi.clone().into(),
            step: 1,
            body,
        })
    };
    orig.body.push(mk(
        i,
        vec![Stmt::Store {
            target: at(i),
            value: ScalarExpr::add(ScalarExpr::Load(at(i)), ScalarExpr::Const(1.0)),
        }],
    ));

    let mut tr = orig.clone();
    let p = tr.add_copy_buffer("P", vec![AffineExpr::var(n)]);
    let pat = |v| ArrayRef::new(p, vec![AffineExpr::var(v)]);
    let fill_v = tr.add_loop_var("F");
    let comp_v = tr.add_loop_var("G");
    let back_v = tr.add_loop_var("H");
    let mut body = vec![
        mk(
            fill_v,
            vec![Stmt::Store {
                target: pat(fill_v),
                value: ScalarExpr::Load(at(fill_v)),
            }],
        ),
        mk(
            comp_v,
            vec![Stmt::Store {
                target: pat(comp_v),
                value: ScalarExpr::add(ScalarExpr::Load(pat(comp_v)), ScalarExpr::Const(1.0)),
            }],
        ),
    ];
    if write_back {
        body.push(mk(
            back_v,
            vec![Stmt::Store {
                target: at(back_v),
                value: ScalarExpr::Load(pat(back_v)),
            }],
        ));
    }
    tr.body = body;
    (orig, tr)
}

/// Deleting the copy write-back loop is caught statically as ECO-E006;
/// the intact round trip certifies clean. Together with the E001/E002
/// properties and the interchange check this shows each injected
/// corruption lands on its own distinct diagnostic code.
#[test]
fn missing_write_back_is_flagged_e006() {
    let bind = vec![("N".to_string(), 12i64)];
    let (orig, good) = copy_roundtrip(true);
    let cert = certify(&orig, &good, &bind);
    assert!(cert.ok(), "intact round trip:\n{}", cert.render());

    let (orig, bad) = copy_roundtrip(false);
    let cert = certify(&orig, &bad, &bind);
    assert_eq!(
        cert.first_error(),
        Some(DiagCode::MissingWriteBack),
        "{}",
        cert.render()
    );
    assert!(cert.render().contains("ECO-E006"), "{}", cert.render());
}

/// An illegal interchange (reversing a flow dependence) is caught
/// statically as ECO-E003, distinct from every corruption above.
#[test]
fn reversed_interchange_is_flagged_e003() {
    // A[I,J] = A[I-1,J+1] + 1: distance (I: +1, J: -1); swapping the
    // loops executes the negative component first.
    let build = |outer_i: bool| {
        let mut p = Program::new("skew");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let j = p.add_loop_var("J");
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let hi = AffineExpr::var(n) - AffineExpr::constant(2);
        let store = Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i), AffineExpr::var(j)]),
            value: ScalarExpr::add(
                ScalarExpr::Load(ArrayRef::new(
                    a,
                    vec![
                        AffineExpr::var(i) - AffineExpr::constant(1),
                        AffineExpr::var(j) + AffineExpr::constant(1),
                    ],
                )),
                ScalarExpr::Const(1.0),
            ),
        };
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 1.into(),
                hi: hi.clone().into(),
                step: 1,
                body,
            })
        };
        let (outer, inner) = if outer_i { (i, j) } else { (j, i) };
        p.body.push(mk(outer, vec![mk(inner, vec![store])]));
        p
    };
    let cert = certify(&build(true), &build(false), &[("N".to_string(), 9)]);
    assert_eq!(
        cert.first_error(),
        Some(DiagCode::DependenceNotPreserved),
        "{}",
        cert.render()
    );
    assert!(cert.render().contains("ECO-E003"), "{}", cert.render());
}
