//! Cross-process warm-start tests for the persistent result store: a
//! second run against the same `--store` directory must produce
//! byte-identical outputs while serving (nearly) every evaluation from
//! disk instead of re-simulating.

use eco_core::{run_manifest, EngineConfig, SearchOptions, TuneRequest, TuneResponse};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-warmstart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_request(store: &Path) -> TuneRequest {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(16)
        .max_variants(1)
        .build()
        .expect("options");
    TuneRequest::new(Kernel::matmul(), machine)
        .options(opts)
        .engine(EngineConfig::new().store(store.display().to_string()))
}

fn manifest_of(request: &TuneRequest, response: &TuneResponse) -> String {
    run_manifest(
        &request.kernel.name,
        &request.machine,
        &request.options,
        &request.engine,
        response,
    )
    .render()
}

/// Two independent engines (cold, then warm) against one store: the
/// warm run re-simulates (almost) nothing and still renders the exact
/// same manifest bytes — the store must never leak into the outputs.
#[test]
fn second_run_against_the_same_store_is_warm_and_byte_identical() {
    let dir = scratch("inproc");
    let store = dir.join("store");

    let request = tiny_request(&store);
    let cold = request.run().expect("cold run");
    assert_eq!(
        cold.engine.store_hits, 0,
        "nothing can hit an empty store: {:?}",
        cold.engine
    );
    assert!(cold.engine.evaluated > 0);

    let warm = tiny_request(&store).run().expect("warm run");
    assert_eq!(
        warm.tuned.variant.name, cold.tuned.variant.name,
        "warm run must select the same variant"
    );
    assert_eq!(
        manifest_of(&request, &warm),
        manifest_of(&request, &cold),
        "manifests must be byte-identical across cold and warm runs"
    );
    assert!(
        warm.engine.store_hits * 10 >= warm.engine.evaluated * 9,
        "warm run should serve >=90% of evaluations from the store: {:?}",
        warm.engine
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The same contract across real processes: `eco tune --store DIR
/// --manifest F` twice writes byte-identical manifests, and the second
/// process reports its store hits on stdout.
#[test]
fn eco_tune_warm_starts_across_processes() {
    let dir = scratch("subproc");
    let store = dir.join("store");
    let run = |manifest: &PathBuf| {
        let out = Command::new(env!("CARGO_BIN_EXE_eco"))
            .args([
                "tune",
                "mm",
                "--search-n",
                "16",
                "--store",
                &store.display().to_string(),
                "--manifest",
                &manifest.display().to_string(),
            ])
            .output()
            .expect("eco tune runs");
        assert!(
            out.status.success(),
            "eco tune failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let m1 = dir.join("cold.manifest.json");
    let m2 = dir.join("warm.manifest.json");
    let cold_stdout = run(&m1);
    let warm_stdout = run(&m2);

    let cold = std::fs::read_to_string(&m1).expect("cold manifest");
    let warm = std::fs::read_to_string(&m2).expect("warm manifest");
    assert_eq!(cold, warm, "manifests must not depend on store warmth");
    assert!(
        !cold.contains("store"),
        "the store must not be recorded in the manifest:\n{cold}"
    );

    assert!(
        cold_stdout.contains("store: 0 hits"),
        "cold run hits an empty store:\n{cold_stdout}"
    );
    let hits_line = warm_stdout
        .lines()
        .find(|l| l.trim_start().starts_with("store: "))
        .unwrap_or_else(|| panic!("no store line in:\n{warm_stdout}"));
    assert!(
        !hits_line.contains("store: 0 hits"),
        "warm run must hit the store: {hits_line}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
