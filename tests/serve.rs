//! Service-layer integration tests: the `eco serve` protocol over a
//! Unix socket — concurrent identical tune requests share one search
//! (in-flight dedupe plus the shared engine's memo cache), responses
//! embed the same deterministic manifest a local run renders, and the
//! stats/store-stats/ping/shutdown ops answer as documented.

use eco_bench::serve::{self, LogLevel, ServeConfig, Server};
use eco_core::events::Json;
use eco_core::{EngineConfig, SearchOptions, TuneRequest};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::path::PathBuf;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_request() -> TuneRequest {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(16)
        .max_variants(1)
        .build()
        .expect("options");
    TuneRequest::new(Kernel::matmul(), machine).options(opts)
}

/// Starts a server on a scratch socket and returns it with the join
/// handle of its accept loop.
fn start_server(
    dir: &std::path::Path,
    engine: EngineConfig,
) -> (PathBuf, std::thread::JoinHandle<()>) {
    let socket = dir.join("eco.sock");
    let server = Server::bind(ServeConfig {
        socket: socket.clone(),
        engine,
        events: Some(dir.join("serve.events.jsonl").display().to_string()),
        log_level: LogLevel::Quiet,
        slow_ms: 1000,
    })
    .expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    // The listener is bound before `bind` returns, so clients can
    // connect immediately; no readiness poll needed.
    (socket, handle)
}

fn shutdown(socket: &std::path::Path) {
    let doc =
        serve::request(socket, &Json::obj().field("op", Json::str("shutdown"))).expect("shutdown");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn concurrent_identical_tunes_share_one_simulation_pass() {
    // What one isolated run of the same request evaluates — the
    // deterministic search makes this the exact unique-point count.
    let expected = tiny_request().run().expect("local run").engine.evaluated;
    assert!(expected > 0);

    let dir = scratch("dedupe");
    let store = dir.join("store");
    let (socket, handle) =
        start_server(&dir, EngineConfig::new().store(store.display().to_string()));

    let tune_line = Json::obj()
        .field("op", Json::str("tune"))
        .field("request", tiny_request().to_json());
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            let line = tune_line.render_compact();
            std::thread::spawn(move || {
                let doc = Json::parse(&line).expect("request parses");
                serve::request(&socket, &doc).expect("tune request")
            })
        })
        .collect();
    let responses: Vec<Json> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    for doc in &responses {
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc:?}");
    }
    let first = responses[0].render();
    for doc in &responses[1..] {
        assert_eq!(doc.render(), first, "identical requests, identical bytes");
    }

    // The dedupe assert: 4 concurrent tunes of the same request must
    // cost exactly one simulation pass. Whether a request waited on the
    // in-flight owner or re-ran against the shared engine, the engine's
    // unique-evaluation count cannot exceed one isolated run's.
    let stats =
        serve::request(&socket, &Json::obj().field("op", Json::str("stats"))).expect("stats");
    assert_eq!(stats.get("tunes").and_then(Json::as_u64), Some(4));
    let engines = match stats.get("engines") {
        Some(Json::Obj(fields)) => fields,
        other => panic!("engines object missing: {other:?}"),
    };
    assert_eq!(engines.len(), 1, "one machine, one shared engine");
    let evaluated = engines[0]
        .1
        .get("evaluated")
        .and_then(Json::as_u64)
        .expect("evaluated");
    assert_eq!(
        evaluated, expected,
        "4 identical tunes must simulate exactly one search's worth of points"
    );
    let deduped = stats
        .get("deduped_requests")
        .and_then(Json::as_u64)
        .expect("deduped_requests");
    assert!(deduped <= 3, "at most 3 of 4 requests can be followers");

    // The shared store saw the searched points.
    let store_stats = serve::request(&socket, &Json::obj().field("op", Json::str("store-stats")))
        .expect("store-stats");
    assert_eq!(
        store_stats.get("configured").and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        store_stats
            .get("puts")
            .and_then(Json::as_u64)
            .expect("puts")
            > 0
    );

    shutdown(&socket);
    handle.join().expect("server thread");

    // The request-level event stream recorded every protocol request.
    let events = std::fs::read_to_string(dir.join("serve.events.jsonl")).expect("events");
    assert!(
        events.matches("serve_request").count() >= 7,
        "4 tunes + stats + store-stats + shutdown:\n{events}"
    );
    assert_eq!(
        events.matches("serve_request").count(),
        events.matches("serve_done").count(),
        "every request gets a done event"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite coverage for `ServeStats` and the per-server metrics
/// registry: mixed concurrent traffic — pings, unknown ops, identical
/// tunes — then exact totals from both the `stats` op and a parsed
/// `metrics` exposition.
#[test]
fn mixed_concurrent_traffic_counts_exactly() {
    use eco_metrics::parse_exposition;

    let dir = scratch("mixed");
    let (socket, handle) = start_server(&dir, EngineConfig::new());

    let mut clients = Vec::new();
    for _ in 0..3 {
        let socket = socket.clone();
        clients.push(std::thread::spawn(move || {
            let doc =
                serve::request(&socket, &Json::obj().field("op", Json::str("ping"))).expect("ping");
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        }));
    }
    for _ in 0..2 {
        let socket = socket.clone();
        clients.push(std::thread::spawn(move || {
            let doc = serve::request(&socket, &Json::obj().field("op", Json::str("explode")))
                .expect("error response");
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        }));
    }
    for _ in 0..4 {
        let socket = socket.clone();
        let line = Json::obj()
            .field("op", Json::str("tune"))
            .field("request", tiny_request().to_json())
            .render_compact();
        clients.push(std::thread::spawn(move || {
            let doc = serve::request(&socket, &Json::parse(&line).expect("request parses"))
                .expect("tune");
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc:?}");
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // Exact ServeStats totals: 3 pings + 2 unknown + 4 tunes + this
    // stats request itself = 10 requests, 2 of them errors.
    let stats =
        serve::request(&socket, &Json::obj().field("op", Json::str("stats"))).expect("stats");
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(10));
    assert_eq!(stats.get("tunes").and_then(Json::as_u64), Some(4));
    assert_eq!(stats.get("shards").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(2));
    let deduped = stats
        .get("deduped_requests")
        .and_then(Json::as_u64)
        .expect("deduped_requests");
    assert!(deduped <= 3, "at most 3 of 4 identical tunes follow");

    // The same totals through the metrics op, as Prometheus text. The
    // per-server registry makes these exact even under a parallel test
    // run (global-registry engine counters would cross-pollute).
    let scraped =
        serve::request(&socket, &Json::obj().field("op", Json::str("metrics"))).expect("metrics");
    assert_eq!(scraped.get("ok").and_then(Json::as_bool), Some(true));
    let text = scraped
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics text");
    let exp = parse_exposition(text).expect("exposition parses");
    assert_eq!(
        exp.value("eco_serve_requests_total", &[("op", "ping")]),
        Some(3.0)
    );
    assert_eq!(
        exp.value("eco_serve_requests_total", &[("op", "tune")]),
        Some(4.0)
    );
    assert_eq!(
        exp.value("eco_serve_requests_total", &[("op", "other")]),
        Some(2.0),
        "unknown ops land in the bounded 'other' label"
    );
    assert_eq!(
        exp.value("eco_serve_requests_total", &[("op", "stats")]),
        Some(1.0)
    );
    assert_eq!(exp.value("eco_serve_errors_total", &[]), Some(2.0));
    assert_eq!(
        exp.value("eco_serve_deduped_requests_total", &[]),
        Some(deduped as f64)
    );
    // 10 handled so far — the metrics scrape does not count itself.
    assert_eq!(exp.total("eco_serve_requests_total"), 10.0);
    assert_eq!(
        exp.value("eco_serve_request_duration_us_count", &[("op", "tune")]),
        Some(4.0),
        "every tune request is timed"
    );
    assert_eq!(
        exp.value("eco_serve_inflight", &[]),
        Some(0.0),
        "the scrape excludes itself from the in-flight gauge"
    );
    assert_eq!(
        exp.types
            .get("eco_serve_requests_total")
            .map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        exp.types
            .get("eco_serve_request_duration_us")
            .map(String::as_str),
        Some("histogram")
    );

    shutdown(&socket);
    handle.join().expect("server thread");

    // Failed requests carry the error string on their serve_done event.
    let events = std::fs::read_to_string(dir.join("serve.events.jsonl")).expect("events");
    let error_dones = events
        .lines()
        .filter(|l| l.contains("serve_done") && l.contains("unknown op 'explode'"))
        .count();
    assert_eq!(
        error_dones, 2,
        "both failures record their error:\n{events}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The live-telemetry ops: `watch` replays a completed tune's event
/// stream over the connection, and `trace` returns the same stream
/// with the stored response for offline rendering.
#[test]
fn watch_and_trace_replay_a_completed_tune() {
    use eco_core::events::check_stream;

    let dir = scratch("watch");
    let (socket, handle) = start_server(&dir, EngineConfig::new());

    let served = serve::request(
        &socket,
        &Json::obj()
            .field("op", Json::str("tune"))
            .field("request", tiny_request().to_json()),
    )
    .expect("tune");
    assert_eq!(served.get("ok").and_then(Json::as_bool), Some(true));
    let fp_text = served
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();
    let fp = u64::from_str_radix(fp_text.trim_start_matches("0x"), 16).expect("hex fingerprint");

    // watch replays the search's event stream line by line.
    let mut lines = Vec::new();
    let header = serve::watch(&socket, fp, |line| lines.push(line.to_string())).expect("watch");
    assert_eq!(header.get("live").and_then(Json::as_bool), Some(false));
    assert!(!lines.is_empty(), "a tune search emits events");
    let replayed = lines.join("\n") + "\n";
    check_stream(&replayed).expect("replayed stream is well-formed");

    // trace returns the identical stream plus the stored response.
    let traced = serve::request(
        &socket,
        &Json::obj()
            .field("op", Json::str("trace"))
            .field("fingerprint", Json::str(&fp_text)),
    )
    .expect("trace");
    assert_eq!(traced.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(traced.get("op").and_then(Json::as_str), Some("tune"));
    assert_eq!(
        traced.get("events").and_then(Json::as_str),
        Some(replayed.as_str()),
        "trace and watch see the same stored stream"
    );
    assert_eq!(
        traced
            .get_path("response.manifest")
            .map(eco_core::events::Json::render),
        served.get("manifest").map(eco_core::events::Json::render),
        "trace stores the original response"
    );

    // trace without a fingerprint returns the latest completed request.
    let latest = serve::request(&socket, &Json::obj().field("op", Json::str("trace")))
        .expect("trace latest");
    assert_eq!(
        latest.get("fingerprint").and_then(Json::as_str),
        Some(fp_text.as_str())
    );

    // Watching an unknown fingerprint is an error, not a hang.
    let missing = serve::watch(&socket, fp ^ 0xdead_beef, |_| {});
    assert!(missing.is_err(), "unknown fingerprint refuses cleanly");

    shutdown(&socket);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_tune_matches_a_local_manifest_and_reports_errors() {
    let dir = scratch("manifest");
    let (socket, handle) = start_server(&dir, EngineConfig::new());

    // ping answers with the protocol and API versions.
    let pong = serve::request(&socket, &Json::obj().field("op", Json::str("ping"))).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        pong.get("api_version").and_then(Json::as_u64),
        Some(eco_core::API_VERSION)
    );

    // A served tune embeds the byte-identical local manifest.
    let request = tiny_request();
    let local = request.run().expect("local run");
    let local_manifest = eco_core::run_manifest(
        &request.kernel.name,
        &request.machine,
        &request.options,
        &EngineConfig::new(),
        &local,
    )
    .render();
    let served = serve::request(
        &socket,
        &Json::obj()
            .field("op", Json::str("tune"))
            .field("request", request.to_json()),
    )
    .expect("served tune");
    assert_eq!(served.get("ok").and_then(Json::as_bool), Some(true));
    let manifest = served.get("manifest").expect("manifest in response");
    assert_eq!(
        manifest.render(),
        local_manifest,
        "served and local manifests must be the same bytes"
    );

    // Unknown ops and malformed tunes answer ok=false, not a hangup.
    let bad = serve::request(&socket, &Json::obj().field("op", Json::str("explode")))
        .expect("error response");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .expect("error message")
        .contains("unknown op"));
    let bad_tune = serve::request(
        &socket,
        &Json::obj()
            .field("op", Json::str("tune"))
            .field("request", Json::obj()),
    )
    .expect("error response");
    assert_eq!(bad_tune.get("ok").and_then(Json::as_bool), Some(false));

    shutdown(&socket);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
