//! Service-layer integration tests: the `eco serve` protocol over a
//! Unix socket — concurrent identical tune requests share one search
//! (in-flight dedupe plus the shared engine's memo cache), responses
//! embed the same deterministic manifest a local run renders, and the
//! stats/store-stats/ping/shutdown ops answer as documented.

use eco_bench::serve::{self, ServeConfig, Server};
use eco_core::events::Json;
use eco_core::{EngineConfig, SearchOptions, TuneRequest};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::path::PathBuf;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_request() -> TuneRequest {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(16)
        .max_variants(1)
        .build()
        .expect("options");
    TuneRequest::new(Kernel::matmul(), machine).options(opts)
}

/// Starts a server on a scratch socket and returns it with the join
/// handle of its accept loop.
fn start_server(
    dir: &std::path::Path,
    engine: EngineConfig,
) -> (PathBuf, std::thread::JoinHandle<()>) {
    let socket = dir.join("eco.sock");
    let server = Server::bind(ServeConfig {
        socket: socket.clone(),
        engine,
        events: Some(dir.join("serve.events.jsonl").display().to_string()),
    })
    .expect("bind");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    // The listener is bound before `bind` returns, so clients can
    // connect immediately; no readiness poll needed.
    (socket, handle)
}

fn shutdown(socket: &std::path::Path) {
    let doc =
        serve::request(socket, &Json::obj().field("op", Json::str("shutdown"))).expect("shutdown");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn concurrent_identical_tunes_share_one_simulation_pass() {
    // What one isolated run of the same request evaluates — the
    // deterministic search makes this the exact unique-point count.
    let expected = tiny_request().run().expect("local run").engine.evaluated;
    assert!(expected > 0);

    let dir = scratch("dedupe");
    let store = dir.join("store");
    let (socket, handle) =
        start_server(&dir, EngineConfig::new().store(store.display().to_string()));

    let tune_line = Json::obj()
        .field("op", Json::str("tune"))
        .field("request", tiny_request().to_json());
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            let line = tune_line.render_compact();
            std::thread::spawn(move || {
                let doc = Json::parse(&line).expect("request parses");
                serve::request(&socket, &doc).expect("tune request")
            })
        })
        .collect();
    let responses: Vec<Json> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    for doc in &responses {
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc:?}");
    }
    let first = responses[0].render();
    for doc in &responses[1..] {
        assert_eq!(doc.render(), first, "identical requests, identical bytes");
    }

    // The dedupe assert: 4 concurrent tunes of the same request must
    // cost exactly one simulation pass. Whether a request waited on the
    // in-flight owner or re-ran against the shared engine, the engine's
    // unique-evaluation count cannot exceed one isolated run's.
    let stats =
        serve::request(&socket, &Json::obj().field("op", Json::str("stats"))).expect("stats");
    assert_eq!(stats.get("tunes").and_then(Json::as_u64), Some(4));
    let engines = match stats.get("engines") {
        Some(Json::Obj(fields)) => fields,
        other => panic!("engines object missing: {other:?}"),
    };
    assert_eq!(engines.len(), 1, "one machine, one shared engine");
    let evaluated = engines[0]
        .1
        .get("evaluated")
        .and_then(Json::as_u64)
        .expect("evaluated");
    assert_eq!(
        evaluated, expected,
        "4 identical tunes must simulate exactly one search's worth of points"
    );
    let deduped = stats
        .get("deduped_requests")
        .and_then(Json::as_u64)
        .expect("deduped_requests");
    assert!(deduped <= 3, "at most 3 of 4 requests can be followers");

    // The shared store saw the searched points.
    let store_stats = serve::request(&socket, &Json::obj().field("op", Json::str("store-stats")))
        .expect("store-stats");
    assert_eq!(
        store_stats.get("configured").and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        store_stats
            .get("puts")
            .and_then(Json::as_u64)
            .expect("puts")
            > 0
    );

    shutdown(&socket);
    handle.join().expect("server thread");

    // The request-level event stream recorded every protocol request.
    let events = std::fs::read_to_string(dir.join("serve.events.jsonl")).expect("events");
    assert!(
        events.matches("serve_request").count() >= 7,
        "4 tunes + stats + store-stats + shutdown:\n{events}"
    );
    assert_eq!(
        events.matches("serve_request").count(),
        events.matches("serve_done").count(),
        "every request gets a done event"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_tune_matches_a_local_manifest_and_reports_errors() {
    let dir = scratch("manifest");
    let (socket, handle) = start_server(&dir, EngineConfig::new());

    // ping answers with the protocol and API versions.
    let pong = serve::request(&socket, &Json::obj().field("op", Json::str("ping"))).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        pong.get("api_version").and_then(Json::as_u64),
        Some(eco_core::API_VERSION)
    );

    // A served tune embeds the byte-identical local manifest.
    let request = tiny_request();
    let local = request.run().expect("local run");
    let local_manifest = eco_core::run_manifest(
        &request.kernel.name,
        &request.machine,
        &request.options,
        &EngineConfig::new(),
        &local,
    )
    .render();
    let served = serve::request(
        &socket,
        &Json::obj()
            .field("op", Json::str("tune"))
            .field("request", request.to_json()),
    )
    .expect("served tune");
    assert_eq!(served.get("ok").and_then(Json::as_bool), Some(true));
    let manifest = served.get("manifest").expect("manifest in response");
    assert_eq!(
        manifest.render(),
        local_manifest,
        "served and local manifests must be the same bytes"
    );

    // Unknown ops and malformed tunes answer ok=false, not a hangup.
    let bad = serve::request(&socket, &Json::obj().field("op", Json::str("explode")))
        .expect("error response");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .expect("error message")
        .contains("unknown op"));
    let bad_tune = serve::request(
        &socket,
        &Json::obj()
            .field("op", Json::str("tune"))
            .field("request", Json::obj()),
    )
    .expect("error response");
    assert_eq!(bad_tune.get("ok").and_then(Json::as_bool), Some(false));

    shutdown(&socket);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
