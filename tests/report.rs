//! Report-subsystem integration tests: byte-determinism of every
//! rendering across read-buffer sizes, a committed golden fixture, the
//! trajectory regression gate, and a live tune → report round trip.

use eco_core::events::Json;
use eco_core::{EngineConfig, SearchOptions, TuneRequest};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_report::{
    analyze_stream, compare_trajectories, render_attribution_ascii, render_html,
    render_profile_ascii, render_profile_csv, ReportOptions, RunReport,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path}: {e}"))
}

fn analyze_fixture(buf_size: usize) -> RunReport {
    let stream = fixture("mm_tune.events.jsonl");
    let opts = ReportOptions {
        buf_size,
        attribute: false,
        ..Default::default()
    };
    analyze_stream(&stream, "mm_tune.events.jsonl", &opts).expect("fixture stream analyzes")
}

/// The exact composition `eco report --out` writes to `report.txt`.
fn compose_txt(report: &RunReport) -> String {
    let mut text = render_profile_ascii(report);
    text.push_str(&render_attribution_ascii(&report.attribution));
    text.push('\n');
    text
}

#[test]
fn report_bytes_are_identical_for_any_buffer_size() {
    let baseline = analyze_fixture(64 * 1024);
    let (ascii, csv, html) = (
        render_profile_ascii(&baseline),
        render_profile_csv(&baseline.profile),
        render_html(std::slice::from_ref(&baseline)),
    );
    for buf_size in [1usize, 3, 17, 4096, 1 << 20] {
        let report = analyze_fixture(buf_size);
        assert_eq!(
            render_profile_ascii(&report),
            ascii,
            "ascii @ buf {buf_size}"
        );
        assert_eq!(
            render_profile_csv(&report.profile),
            csv,
            "csv @ buf {buf_size}"
        );
        assert_eq!(
            render_html(std::slice::from_ref(&report)),
            html,
            "html @ buf {buf_size}"
        );
    }
}

#[test]
fn golden_fixture_renders_byte_identically() {
    let report = analyze_fixture(64 * 1024);
    assert_eq!(compose_txt(&report), fixture("mm_tune.report.txt"));
    assert_eq!(
        render_profile_csv(&report.profile),
        fixture("mm_tune.profile.csv")
    );
    assert_eq!(
        render_html(std::slice::from_ref(&report)),
        fixture("mm_tune.report.html")
    );
}

#[test]
fn fixture_profile_reconstructs_the_search() {
    let report = analyze_fixture(64 * 1024);
    let p = &report.profile;
    assert_eq!(p.kernel, "mm");
    assert_eq!(p.search_n, 24);
    assert!(p.points > 0, "profile found no points");
    assert!(p.selected.is_some(), "no selected variant");
    assert!(
        p.stages.iter().any(|s| s.stage == "screen"),
        "no screen stage row"
    );
    assert!(!p.variants.is_empty(), "no variant rows");
    assert!(
        p.lineage
            .last()
            .is_some_and(|l| l.label.starts_with("selected")),
        "lineage does not end at the selected variant"
    );
    assert_eq!(report.records, report.summary.records);
}

#[test]
fn synthetically_regressed_trajectory_fails_the_gate() {
    let old = Json::obj()
        .field(
            "smoke",
            Json::obj()
                .field("points", Json::UInt(29))
                .field("secs", Json::Float(2.0))
                .field("points_per_sec", Json::Float(14.5)),
        )
        .field(
            "figures",
            Json::obj().field(
                "fig4a",
                Json::obj()
                    .field("wall_secs", Json::Float(3.0))
                    .field("manifest_fingerprint", Json::str("0x1")),
            ),
        );
    // Identical trajectories pass at any threshold.
    assert!(compare_trajectories(&old, &old, 0.5).passed());
    // Halved throughput fails a 25% gate but passes a generous 60% one.
    let regressed = Json::obj().field(
        "smoke",
        Json::obj()
            .field("points", Json::UInt(29))
            .field("secs", Json::Float(2.6))
            .field("points_per_sec", Json::Float(7.25)),
    );
    let cmp = compare_trajectories(&old, &regressed, 25.0);
    assert!(!cmp.passed());
    assert!(cmp
        .regressions
        .iter()
        .any(|d| d.path == "smoke.points_per_sec"));
    // The figure metrics exist only in the old file: notes, not gates.
    assert!(cmp.notes.iter().any(|n| n.contains("only in old file")));
    assert!(compare_trajectories(&old, &regressed, 60.0).passed());
}

#[test]
fn live_tune_stream_analyzes_end_to_end() {
    let events_path = std::env::temp_dir().join(format!(
        "eco-report-live-{}.events.jsonl",
        std::process::id()
    ));
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(24)
        .max_variants(1)
        .build()
        .expect("options");
    let config = EngineConfig::new().events(events_path.display().to_string());
    let report = TuneRequest::new(Kernel::matmul(), machine)
        .options(opts)
        .engine(config)
        .run()
        .expect("tune succeeds");
    let stream = std::fs::read_to_string(&events_path).expect("events written");
    let _ = std::fs::remove_file(&events_path);

    let analyzed =
        analyze_stream(&stream, "live", &ReportOptions::default()).expect("live stream analyzes");
    assert_eq!(
        analyzed.profile.selected.as_deref(),
        Some(report.tuned.variant.name.as_str()),
        "report's selected variant disagrees with the tuner"
    );
    assert_eq!(
        analyzed.profile.selected_cycles,
        Some(report.tuned.counters.cycles())
    );
    assert!(analyzed.profile.points as u64 >= report.tuned.stats.points as u64);
}
