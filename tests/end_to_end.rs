//! End-to-end checks of the experiment harness itself: small versions
//! of each table/figure, asserting the qualitative claims recorded in
//! EXPERIMENTS.md.

use eco_bench::{counters_at, jacobi_table_row, mflops_at, mm_copy_variant, mm_table_row, Sweep};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

/// Table 1, Matrix Multiply rows: multi-level balance beats any
/// single-level optimum (the paper's central motivation, §2).
#[test]
fn table1_mm_balance_beats_single_level_optima() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let n = 200;
    // mm1: only J/K tiled for L1 -> lowest L1 misses of the three.
    let mm1 = counters_at(&mm_table_row(1, 4, 32, false), &kernel, n, &machine);
    // mm3: all three tiled -> lowest L2 misses.
    let mm3 = counters_at(&mm_table_row(8, 32, 16, false), &kernel, n, &machine);
    // mm4: the balanced configuration.
    let mm4 = counters_at(&mm_table_row(4, 16, 16, false), &kernel, n, &machine);
    assert!(
        mm1.cache_misses[0] < mm3.cache_misses[0],
        "mm1 must have fewer L1 misses than mm3: {} vs {}",
        mm1.cache_misses[0],
        mm3.cache_misses[0]
    );
    assert!(
        mm3.cache_misses[1] * 2 < mm1.cache_misses[1],
        "mm3 must slash L2 misses vs mm1: {} vs {}",
        mm3.cache_misses[1],
        mm1.cache_misses[1]
    );
    // mm4 is best at neither level...
    assert!(mm4.cache_misses[0] > mm1.cache_misses[0]);
    assert!(mm4.cache_misses[1] > mm3.cache_misses[1]);
    let best_cycles = [&mm1, &mm3, &mm4].iter().map(|c| c.cycles()).min();
    assert_eq!(
        best_cycles,
        Some(mm4.cycles()),
        "the balanced row must win overall: mm1={} mm3={} mm4={}",
        mm1.cycles(),
        mm3.cycles(),
        mm4.cycles()
    );
}

/// Table 1, prefetch rows: prefetching adds loads but removes cycles.
#[test]
fn table1_prefetch_rows_trade_loads_for_cycles() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let mm = Kernel::matmul();
    let base = counters_at(&mm_table_row(4, 16, 16, false), &mm, 200, &machine);
    let pref = counters_at(&mm_table_row(4, 16, 16, true), &mm, 200, &machine);
    assert!(pref.loads_incl_prefetch() > base.loads_incl_prefetch());
    assert!(pref.cycles() < base.cycles());

    let jac = Kernel::jacobi3d();
    let jbase = counters_at(&jacobi_table_row(1, 4, 4, false), &jac, 48, &machine);
    let jpref = counters_at(&jacobi_table_row(1, 4, 4, true), &jac, 48, &machine);
    assert!(jpref.loads_incl_prefetch() > jbase.loads_incl_prefetch());
    assert!(jpref.cycles() < jbase.cycles());
    // The paper: ~20% for Jacobi vs ~3% for MM — Jacobi gains more.
    let jgain = 1.0 - jpref.cycles() as f64 / jbase.cycles() as f64;
    let mgain = 1.0 - pref.cycles() as f64 / base.cycles() as f64;
    assert!(
        jgain > mgain,
        "Jacobi's prefetch gain ({jgain:.3}) must exceed MM's ({mgain:.3})"
    );
}

/// Figure 4's core contrast at one pathological size: copying rescues
/// what tiling alone loses to conflicts.
#[test]
fn copy_eliminates_pathological_conflicts() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let n = 128; // column stride = 1KB = the whole scaled L1
    let nocopy = mflops_at(&mm_copy_variant(8, 16, 16, false), &kernel, n, &machine);
    let copy = mflops_at(&mm_copy_variant(8, 16, 16, true), &kernel, n, &machine);
    assert!(
        copy > 1.2 * nocopy,
        "copy {copy:.1} must clearly beat no-copy {nocopy:.1} at N={n}"
    );
    // And at a benign size the copy overhead must not be ruinous.
    let benign = 120;
    let nocopy_b = mflops_at(
        &mm_copy_variant(8, 16, 16, false),
        &kernel,
        benign,
        &machine,
    );
    let copy_b = mflops_at(&mm_copy_variant(8, 16, 16, true), &kernel, benign, &machine);
    assert!(
        copy_b > 0.8 * nocopy_b,
        "benign size: copy {copy_b:.1} vs no-copy {nocopy_b:.1}"
    );
}

/// The TLB blow-up the paper's mm2 row illustrates: big unbalanced
/// tiles touch far more pages than the TLB covers.
#[test]
fn bad_tiling_inflates_tlb_misses() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let n = 200;
    let good = counters_at(&mm_table_row(1, 4, 32, false), &kernel, n, &machine);
    let bad = counters_at(&mm_table_row(2, 64, 64, false), &kernel, n, &machine);
    assert!(
        bad.tlb_misses > 2 * good.tlb_misses,
        "mm2-like tiling must inflate TLB misses: {} vs {}",
        bad.tlb_misses,
        good.tlb_misses
    );
}

/// Sweep rendering used by the figures.
#[test]
fn sweep_csv_has_one_row_per_size() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let sizes = vec![16i64, 24, 32];
    let ys: Vec<f64> = sizes
        .iter()
        .map(|&n| mflops_at(&kernel.program, &kernel, n, &machine))
        .collect();
    let sweep = Sweep {
        sizes,
        series: vec![("naive".into(), ys)],
    };
    let csv = sweep.to_csv();
    assert_eq!(csv.lines().count(), 4);
    assert!(csv.starts_with("N,naive"));
}
