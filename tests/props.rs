//! Property-based tests (proptest) over the core data structures and
//! the transformation pipeline's semantic-preservation invariant.

use eco_analysis::NestInfo;
use eco_core::{derive_variants, generate, ParamValues};
use eco_exec::{interpret, measure, ArrayLayout, LayoutOptions, Params, Storage};
use eco_ir::{AffineExpr, VarId};
use eco_kernels::Kernel;
use eco_machine::{CacheDesc, CostModel, MachineDesc, TlbDesc};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn small_expr() -> impl Strategy<Value = AffineExpr> {
    (
        -20i64..20,
        prop::collection::vec((0u32..6, -5i64..5), 0..4),
    )
        .prop_map(|(c, terms)| {
            AffineExpr::new(c, terms.into_iter().map(|(v, k)| (VarId(v), k)))
        })
}

proptest! {
    /// Affine arithmetic agrees with pointwise evaluation.
    #[test]
    fn affine_add_mul_eval(a in small_expr(), b in small_expr(), k in -6i64..6,
                           env in prop::collection::vec(-50i64..50, 6)) {
        let lookup = |v: VarId| env[v.index()];
        let sum = a.clone() + b.clone();
        prop_assert_eq!(sum.eval(&lookup), a.eval(&lookup) + b.eval(&lookup));
        let prod = a.clone() * k;
        prop_assert_eq!(prod.eval(&lookup), a.eval(&lookup) * k);
        let diff = a.clone() - b.clone();
        prop_assert_eq!(diff.eval(&lookup), a.eval(&lookup) - b.eval(&lookup));
    }

    /// Substitution is evaluation composition.
    #[test]
    fn affine_subst_composes(a in small_expr(), r in small_expr(), v in 0u32..6,
                             env in prop::collection::vec(-50i64..50, 6)) {
        let lookup = |w: VarId| env[w.index()];
        let substituted = a.subst(VarId(v), &r);
        let mut env2 = env.clone();
        env2[v as usize] = r.eval(&lookup);
        let lookup2 = |w: VarId| env2[w.index()];
        prop_assert_eq!(substituted.eval(&lookup), a.eval(&lookup2));
    }

    /// Structural equality is semantic: normalized forms are canonical.
    #[test]
    fn affine_normalization_is_canonical(a in small_expr(), b in small_expr()) {
        let l = a.clone() + b.clone();
        let r = b + a;
        prop_assert_eq!(l, r);
    }
}

fn tiny_machine(l1_lines: usize, assoc: usize) -> MachineDesc {
    MachineDesc {
        name: "prop".into(),
        clock_mhz: 100,
        fp_registers: 32,
        caches: vec![CacheDesc {
            name: "L1".into(),
            capacity_bytes: l1_lines * 32,
            associativity: assoc,
            line_bytes: 32,
            miss_penalty_cycles: 10,
        }],
        tlb: TlbDesc {
            entries: 8,
            page_bytes: 256,
            miss_penalty_cycles: 30,
        },
        cost: CostModel::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator sanity: per-level misses never exceed demand accesses.
    #[test]
    fn misses_bounded_by_accesses(addrs in prop::collection::vec(0u64..4096, 1..300)) {
        use eco_cachesim::{AccessKind, MemoryHierarchy};
        let mut h = MemoryHierarchy::new(&tiny_machine(8, 2));
        for &a in &addrs {
            h.access(a * 8, AccessKind::Load);
        }
        let c = h.into_counters();
        prop_assert!(c.cache_misses[0] <= c.loads);
        prop_assert!(c.tlb_misses <= c.loads);
        prop_assert!(c.cycles() > 0);
    }

    /// The genuine LRU *stack property*: a fully-associative LRU cache
    /// with more lines never misses more than a smaller one on the same
    /// trace. (Note it does NOT hold across different set mappings —
    /// direct-mapped can beat fully-associative LRU on adversarial
    /// traces, which an earlier version of this property learned from a
    /// proptest counterexample.)
    #[test]
    fn lru_stack_property(addrs in prop::collection::vec(0u64..2048, 1..200)) {
        use eco_cachesim::{AccessKind, MemoryHierarchy};
        let small = tiny_machine(8, 8);   // fully associative, 8 lines
        let large = tiny_machine(32, 32); // fully associative, 32 lines
        let mut hs = MemoryHierarchy::new(&small);
        let mut hl = MemoryHierarchy::new(&large);
        for &a in &addrs {
            hs.access(a * 8, AccessKind::Load);
            hl.access(a * 8, AccessKind::Load);
        }
        prop_assert!(
            hl.counters().cache_misses[0] <= hs.counters().cache_misses[0],
            "{} > {}", hl.counters().cache_misses[0], hs.counters().cache_misses[0]
        );
    }
}

/// Random tile/unroll parameters for a random Matrix Multiply variant
/// always generate code that computes the same product (the repo's
/// central invariant).
#[test]
fn random_variant_parameters_preserve_semantics() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = (
        0..variants.len(),
        1u64..6,
        1u64..6,
        prop::collection::vec(1u64..40, 3),
        7i64..26,
    );
    for _ in 0..24 {
        let (vi, ui, uj, ts, n) = strategy
            .new_tree(&mut runner)
            .expect("tree")
            .current();
        let v = &variants[vi];
        let mut params = ParamValues::new();
        let names = v.param_names();
        let mut ti = ts.into_iter().cycle();
        for nm in &names {
            let val = if nm.starts_with('U') {
                if nm == "UI" {
                    ui
                } else {
                    uj
                }
            } else {
                ti.next().expect("cycle")
            };
            params.insert(nm.clone(), val);
        }
        let Ok(program) = generate(&kernel, &nest, v, &params, &machine) else {
            continue; // infeasible point: fine, the search skips these too
        };
        let run = |p: &eco_ir::Program| {
            let pr = Params::new().with(kernel.size, n);
            let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 1234);
            interpret(p, &pr, &layout, &mut st).unwrap_or_else(|e| {
                panic!("{} {:?} N={n}: {e}\n{p}", v.name, params)
            });
            st
        };
        let want = run(&kernel.program);
        let got = run(&program);
        let c = kernel.program.array_by_name("C").expect("C");
        assert!(
            want.max_abs_diff(&got, c) < 1e-9,
            "{} {:?} N={n} differs",
            v.name,
            params
        );
        // And the measured trace must execute without OOB accesses.
        let pr = Params::new().with(kernel.size, n);
        measure(&program, &pr, &machine, &LayoutOptions::default()).expect("trace ok");
    }
}
