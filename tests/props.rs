//! Property-based tests (proptest) over the core data structures and
//! the transformation pipeline's semantic-preservation invariant.

use eco_analysis::NestInfo;
use eco_core::{derive_variants, generate, ParamValues};
use eco_exec::{
    interpret, measure, measure_attributed_reference, measure_reference, ArrayLayout,
    ExecutablePlan, LayoutOptions, Params, Storage,
};
use eco_ir::{AffineExpr, VarId};
use eco_kernels::Kernel;
use eco_machine::{CacheDesc, CostModel, MachineDesc, TlbDesc};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn small_expr() -> impl Strategy<Value = AffineExpr> {
    (-20i64..20, prop::collection::vec((0u32..6, -5i64..5), 0..4))
        .prop_map(|(c, terms)| AffineExpr::new(c, terms.into_iter().map(|(v, k)| (VarId(v), k))))
}

proptest! {
    /// Affine arithmetic agrees with pointwise evaluation.
    #[test]
    fn affine_add_mul_eval(a in small_expr(), b in small_expr(), k in -6i64..6,
                           env in prop::collection::vec(-50i64..50, 6)) {
        let lookup = |v: VarId| env[v.index()];
        let sum = a.clone() + b.clone();
        prop_assert_eq!(sum.eval(&lookup), a.eval(&lookup) + b.eval(&lookup));
        let prod = a.clone() * k;
        prop_assert_eq!(prod.eval(&lookup), a.eval(&lookup) * k);
        let diff = a.clone() - b.clone();
        prop_assert_eq!(diff.eval(&lookup), a.eval(&lookup) - b.eval(&lookup));
    }

    /// Substitution is evaluation composition.
    #[test]
    fn affine_subst_composes(a in small_expr(), r in small_expr(), v in 0u32..6,
                             env in prop::collection::vec(-50i64..50, 6)) {
        let lookup = |w: VarId| env[w.index()];
        let substituted = a.subst(VarId(v), &r);
        let mut env2 = env.clone();
        env2[v as usize] = r.eval(&lookup);
        let lookup2 = |w: VarId| env2[w.index()];
        prop_assert_eq!(substituted.eval(&lookup), a.eval(&lookup2));
    }

    /// Structural equality is semantic: normalized forms are canonical.
    #[test]
    fn affine_normalization_is_canonical(a in small_expr(), b in small_expr()) {
        let l = a.clone() + b.clone();
        let r = b + a;
        prop_assert_eq!(l, r);
    }
}

fn tiny_machine(l1_lines: usize, assoc: usize) -> MachineDesc {
    MachineDesc {
        name: "prop".into(),
        clock_mhz: 100,
        fp_registers: 32,
        caches: vec![CacheDesc {
            name: "L1".into(),
            capacity_bytes: l1_lines * 32,
            associativity: assoc,
            line_bytes: 32,
            miss_penalty_cycles: 10,
        }],
        tlb: TlbDesc {
            entries: 8,
            page_bytes: 256,
            miss_penalty_cycles: 30,
        },
        cost: CostModel::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator sanity: per-level misses never exceed demand accesses.
    #[test]
    fn misses_bounded_by_accesses(addrs in prop::collection::vec(0u64..4096, 1..300)) {
        use eco_cachesim::{AccessKind, MemoryHierarchy};
        let mut h = MemoryHierarchy::new(&tiny_machine(8, 2));
        for &a in &addrs {
            h.access(a * 8, AccessKind::Load);
        }
        let c = h.into_counters();
        prop_assert!(c.cache_misses[0] <= c.loads);
        prop_assert!(c.tlb_misses <= c.loads);
        prop_assert!(c.cycles() > 0);
    }

    /// The genuine LRU *stack property*: a fully-associative LRU cache
    /// with more lines never misses more than a smaller one on the same
    /// trace. (Note it does NOT hold across different set mappings —
    /// direct-mapped can beat fully-associative LRU on adversarial
    /// traces, which an earlier version of this property learned from a
    /// proptest counterexample.)
    #[test]
    fn lru_stack_property(addrs in prop::collection::vec(0u64..2048, 1..200)) {
        use eco_cachesim::{AccessKind, MemoryHierarchy};
        let small = tiny_machine(8, 8);   // fully associative, 8 lines
        let large = tiny_machine(32, 32); // fully associative, 32 lines
        let mut hs = MemoryHierarchy::new(&small);
        let mut hl = MemoryHierarchy::new(&large);
        for &a in &addrs {
            hs.access(a * 8, AccessKind::Load);
            hl.access(a * 8, AccessKind::Load);
        }
        prop_assert!(
            hl.counters().cache_misses[0] <= hs.counters().cache_misses[0],
            "{} > {}", hl.counters().cache_misses[0], hs.counters().cache_misses[0]
        );
    }
}

/// Random tile/unroll parameters for a random Matrix Multiply variant
/// always generate code that computes the same product (the repo's
/// central invariant).
#[test]
fn random_variant_parameters_preserve_semantics() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = (
        0..variants.len(),
        1u64..6,
        1u64..6,
        prop::collection::vec(1u64..40, 3),
        7i64..26,
    );
    for _ in 0..24 {
        let (vi, ui, uj, ts, n) = strategy.new_tree(&mut runner).expect("tree").current();
        let v = &variants[vi];
        let mut params = ParamValues::new();
        let names = v.param_names();
        let mut ti = ts.into_iter().cycle();
        for nm in &names {
            let val = if nm.starts_with('U') {
                if nm == "UI" {
                    ui
                } else {
                    uj
                }
            } else {
                ti.next().expect("cycle")
            };
            params.insert(nm.clone(), val);
        }
        let Ok(program) = generate(&kernel, &nest, v, &params, &machine) else {
            continue; // infeasible point: fine, the search skips these too
        };
        let run = |p: &eco_ir::Program| {
            let pr = Params::new().with(kernel.size, n);
            let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 1234);
            interpret(p, &pr, &layout, &mut st)
                .unwrap_or_else(|e| panic!("{} {:?} N={n}: {e}\n{p}", v.name, params));
            st
        };
        let want = run(&kernel.program);
        let got = run(&program);
        let c = kernel.program.array_by_name("C").expect("C");
        assert!(
            want.max_abs_diff(&got, c) < 1e-9,
            "{} {:?} N={n} differs",
            v.name,
            params
        );
        // And the measured trace must execute without OOB accesses.
        let pr = Params::new().with(kernel.size, n);
        measure(&program, &pr, &machine, &LayoutOptions::default()).expect("trace ok");
    }
}

/// Differential property for the compiled execution pipeline
/// (DESIGN.md §4): across random kernels × derived variants × random
/// tile/unroll/size parameters, the lowered [`ExecutablePlan`] and the
/// tree-walking reference produce identical `Counters` (including
/// per-tag attribution) and bit-identical `f64` array contents.
#[test]
fn compiled_plan_matches_reference_on_random_variants() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = LayoutOptions::default();
    let kernels = Kernel::all();
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = (
        0..kernels.len(),
        0..16usize,
        1u64..6,
        1u64..6,
        prop::collection::vec(1u64..40, 3),
        7i64..26,
    );
    let mut checked = 0usize;
    for _ in 0..24 {
        let (ki, vi, ui, uj, ts, n) = strategy.new_tree(&mut runner).expect("tree").current();
        let kernel = &kernels[ki];
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let variants = derive_variants(&nest, &machine, &kernel.program);
        let v = &variants[vi % variants.len()];
        let mut params = ParamValues::new();
        let mut ti = ts.into_iter().cycle();
        for nm in &v.param_names() {
            let val = if nm.starts_with('U') {
                if nm == "UI" {
                    ui
                } else {
                    uj
                }
            } else {
                ti.next().expect("cycle")
            };
            params.insert(nm.clone(), val);
        }
        let Ok(program) = generate(kernel, &nest, v, &params, &machine) else {
            continue; // infeasible point: fine, the search skips these too
        };
        let pr = Params::new().with(kernel.size, n);
        let plan = ExecutablePlan::compile(&program).expect("compile");
        checked += 1;
        // Architectural parity: every counter, with and without per-tag
        // miss attribution.
        assert_eq!(
            plan.measure(&pr, &machine, &opts),
            measure_reference(&program, &pr, &machine, &opts),
            "{} {:?} N={n} measurement differs",
            v.name,
            params
        );
        assert_eq!(
            plan.measure_attributed(&pr, &machine, &opts),
            measure_attributed_reference(&program, &pr, &machine, &opts),
            "{} {:?} N={n} attributed measurement differs",
            v.name,
            params
        );
        // Numeric parity: bit-identical storage after execution.
        let layout = ArrayLayout::new(&program, &pr, &opts).expect("layout");
        let mut ref_st = Storage::seeded(&layout, 1234);
        let mut plan_st = Storage::seeded(&layout, 1234);
        let r1 = interpret(&program, &pr, &layout, &mut ref_st);
        let r2 = plan.interpret(&pr, &layout, &mut plan_st);
        assert_eq!(r1, r2, "{} {:?} N={n} outcome differs", v.name, params);
        if r1.is_err() {
            continue; // storage contents are unspecified after an error
        }
        for a in 0..layout.num_arrays() {
            let id = eco_ir::ArrayId(a as u32);
            let (x, y) = (ref_st.array(id), plan_st.array(id));
            assert_eq!(x.len(), y.len());
            for (i, (u, w)) in x.iter().zip(y).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    w.to_bits(),
                    "{} {:?} N={n} array {a} elem {i}: {u} vs {w}",
                    v.name,
                    params
                );
            }
        }
    }
    assert!(
        checked >= 8,
        "only {checked}/24 random points were feasible; the property is near-vacuous"
    );
}

/// The fast-forward exactness property is not vacuous: on the full-size
/// (unscaled) machine a tiled matmul's working set is provably
/// L1-resident, so the simulator fast-forwards the bulk of its accesses
/// — and the counters still match the per-access walked reference
/// exactly, with and without per-tag attribution.
#[test]
fn fast_forward_engages_and_matches_reference() {
    use eco_bench::mm_table_row;
    let machine = MachineDesc::sgi_r10000();
    let opts = LayoutOptions::default();
    let kernel = Kernel::matmul();
    let mut total = 0u64;
    let mut ff = 0u64;
    for (ti, tj, tk, n) in [(4u64, 16, 16, 128i64), (8, 32, 16, 96), (2, 8, 8, 64)] {
        let program = mm_table_row(ti, tj, tk, false);
        let pr = Params::new().with(kernel.size, n);
        let plan = ExecutablePlan::compile(&program).expect("compile");
        let (counters, stats) = plan
            .measure_with_stats(&pr, &machine, &opts)
            .expect("measure");
        assert_eq!(
            Ok(counters.clone()),
            measure_reference(&program, &pr, &machine, &opts),
            "tiles ({ti},{tj},{tk}) N={n}: fast-forwarded counters differ from the walked reference"
        );
        assert_eq!(
            plan.measure_attributed(&pr, &machine, &opts),
            measure_attributed_reference(&program, &pr, &machine, &opts),
            "tiles ({ti},{tj},{tk}) N={n}: attributed counters differ"
        );
        total += counters.loads + counters.stores + counters.prefetches;
        ff += stats.ff_accesses;
    }
    assert!(
        ff > total / 2,
        "fast-forward covered only {ff}/{total} accesses; the exactness property is near-vacuous"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The memo cache is transparent and the engine deterministic: a
    /// warm-cache parallel re-run of the whole staged search returns a
    /// `Tuned` byte-identical to a cold single-threaded run, the warm
    /// run performs zero new simulations, and the search statistics
    /// don't depend on the thread count.
    #[test]
    fn warm_cache_parallel_tuning_matches_cold_serial_run(search_n in 24i64..48) {
        use eco_core::{Optimizer, SearchOptions};
        use eco_exec::{Engine, EngineConfig, Evaluator};
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::matmul();
        let opts = SearchOptions::builder()
            .search_n(search_n)
            .max_variants(1)
            .build()
            .expect("valid options");

        let cold = Engine::with_config(machine.clone(), EngineConfig::new().threads(1))
            .expect("engine");
        let mut opt = Optimizer::new(machine.clone());
        opt.opts = opts;
        let a = opt.run_with(&kernel, &cold).expect("cold run");

        let warm = Engine::with_config(machine.clone(), EngineConfig::new().threads(4))
            .expect("engine");
        let _prime = opt.run_with(&kernel, &warm).expect("priming run");
        let evaluated_after_prime = warm.stats().evaluated;
        let b = opt.run_with(&kernel, &warm).expect("warm run");

        prop_assert_eq!(&a.variant.name, &b.variant.name);
        prop_assert_eq!(&a.params, &b.params);
        prop_assert_eq!(&a.prefetches, &b.prefetches);
        prop_assert_eq!(a.program.to_string(), b.program.to_string());
        prop_assert_eq!(a.counters.cycles(), b.counters.cycles());
        prop_assert_eq!(&a.stats, &b.stats);
        // the warm run was served entirely from the memo cache
        prop_assert_eq!(warm.stats().evaluated, evaluated_after_prime);
        prop_assert!(warm.stats().cache_hits > 0);
    }
}

/// Figure CSVs are byte-identical whether the sweep runs single-
/// threaded, multi-threaded, or entirely out of the memo cache.
#[test]
fn sweep_csv_identical_across_threads_and_cache_state() {
    use eco_bench::mflops_sweep;
    use eco_exec::{Engine, EngineConfig, Evaluator};
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let sizes = [16i64, 24, 32, 40];
    let ident = |_n: i64| kernel.program.clone();
    let series: [(&str, &dyn Fn(i64) -> eco_ir::Program); 1] = [("naive", &ident)];

    let serial =
        Engine::with_config(machine.clone(), EngineConfig::new().threads(1)).expect("engine");
    let parallel =
        Engine::with_config(machine.clone(), EngineConfig::new().threads(4)).expect("engine");
    let a = mflops_sweep(&serial, &kernel, &sizes, &series).to_csv();
    let b = mflops_sweep(&parallel, &kernel, &sizes, &series).to_csv();
    let warm = mflops_sweep(&parallel, &kernel, &sizes, &series).to_csv();
    assert_eq!(a, b, "parallel sweep must match the serial one");
    assert_eq!(a, warm, "memoized sweep must match the cold one");
    assert!(parallel.stats().cache_hits >= sizes.len() as u64);
}

/// §4.3 expectations on the search statistics: the guided search visits
/// a few dozen to a few hundred points, screens all derived variants
/// but fully searches only the shortlist, and executes every point it
/// counts (engine-side accounting agrees).
#[test]
fn search_stats_match_section_4_3_expectations() {
    use eco_core::{EngineConfig, SearchOptions, TuneRequest};
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(48)
        .max_variants(2)
        .build()
        .expect("valid options");
    let report = TuneRequest::new(Kernel::matmul(), machine.clone())
        .options(opts)
        .engine(EngineConfig::new())
        .run()
        .expect("optimize");
    let stats = &report.tuned.stats;
    assert!(
        (10..=500).contains(&stats.points),
        "guided MM search should cost tens-to-hundreds of points, got {}",
        stats.points
    );
    assert!(stats.variants_derived > 0);
    assert!(
        stats.variants_searched <= 2,
        "max_variants bounds the fully-searched shortlist"
    );
    assert!(stats.variants_searched <= stats.variants_derived);
    // every counted point was executed through the engine (memoized or not)
    assert!(report.engine.requested >= stats.points as u64);
    assert!(report.engine.evaluated + report.engine.cache_hits == report.engine.requested);
}
