//! Sweep-pipeline integration tests: the plan → execute → gather path
//! reproduces the serial figure runner byte-for-byte (CSV and run
//! manifest), a re-run against the same store skips every completed
//! shard and still gathers identical bytes, and the `repro plan` /
//! `repro shard` CLI round-trips a shard manifest through a worker
//! process.

use eco_bench::figures::{family_programs, figure_manifest, ProgramFor, RunOpts};
use eco_bench::sweep::{execute_shard, gather, run_sweep, SweepConfig};
use eco_bench::{mflops_sweep, Sweep};
use eco_core::events::Json;
use eco_core::sweep::{FamilySpec, SweepPlan, SweepSpec};
use eco_core::{Engine, EngineConfig};
use eco_ir::Program;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_store::ResultStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A figure-shaped spec small enough for debug-build workers: one
/// tuned family and one measure-only family over two sizes.
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        figure: "figtest".to_string(),
        kernel: Kernel::matmul(),
        machine: MachineDesc::sgi_r10000().scaled(32),
        search_n: 8,
        families: vec![
            FamilySpec::new("ECO", true),
            FamilySpec::new("Native", false),
        ],
        sizes: vec![8, 16],
    }
}

/// The serial reference for [`tiny_spec`]: every family's search and
/// the whole measurement batch on one engine, exactly like
/// `figures::run` but silent. Returns `(csv, manifest)`.
fn serial_reference(spec: &SweepSpec) -> (String, String) {
    let engine = Engine::with_config(spec.machine.clone(), EngineConfig::new()).expect("engine");
    let mut manifest = String::new();
    let mut families: Vec<(String, ProgramFor)> = Vec::new();
    for family in &spec.families {
        let (programs, tuned) =
            family_programs(&family.name, &spec.kernel, &engine, spec.search_n, false)
                .expect("family programs");
        if let Some(tuned) = tuned {
            manifest = figure_manifest(
                &spec.kernel,
                &engine,
                &EngineConfig::new().backend(engine.backend()),
                spec.search_n,
                &tuned,
            );
        }
        families.push((family.name.clone(), programs));
    }
    let series: Vec<(&str, &dyn Fn(i64) -> Program)> = families
        .iter()
        .map(|(name, f)| (name.as_str(), f.as_ref() as &dyn Fn(i64) -> Program))
        .collect();
    let sweep = mflops_sweep(&engine, &spec.kernel, &spec.sizes, &series);
    (sweep.to_csv(), manifest)
}

/// Executes every shard of `plan` in-process against a shared store
/// (tune stage first, like the orchestrator) and returns the results
/// keyed by shard fingerprint.
fn execute_plan(plan: &SweepPlan, store: &Path) -> BTreeMap<u64, Json> {
    let mut results = BTreeMap::new();
    for shard in plan.tune_shards().chain(plan.measure_shards()) {
        let config = EngineConfig::new().store(store.display().to_string());
        let result = execute_shard(shard, config).expect("shard executes");
        results.insert(shard.fingerprint(), result);
    }
    results
}

#[test]
fn sharded_execution_reproduces_the_serial_bytes() {
    let spec = tiny_spec();
    let (serial_csv, serial_manifest) = serial_reference(&spec);
    assert!(!serial_manifest.is_empty());

    let dir = scratch("bytes");
    let plan = SweepPlan::plan(&spec, 1).expect("plan");
    // One tune shard (ECO) plus one measure shard per (family, size).
    assert_eq!(plan.shards.len(), 1 + 2 * spec.sizes.len());
    let results = execute_plan(&plan, &dir.join("store"));
    let (sweep, manifest) = gather(&spec, &plan, &results).expect("gather");

    assert_eq!(sweep.to_csv(), serial_csv, "sharded CSV must match serial");
    assert_eq!(
        manifest, serial_manifest,
        "sharded manifest must match serial"
    );
}

#[test]
fn gather_refuses_incomplete_results() {
    let spec = tiny_spec();
    let dir = scratch("partial");
    let plan = SweepPlan::plan(&spec, 1).expect("plan");
    let mut results = execute_plan(&plan, &dir.join("store"));
    let dropped = *results.keys().next().expect("nonempty");
    results.remove(&dropped);
    let err = match gather(&spec, &plan, &results) {
        Ok(_) => panic!("gather accepted a missing shard"),
        Err(e) => e,
    };
    assert!(err.contains("0x"), "error names the missing shard: {err}");
}

fn sweep_config(store: &Path, sweep_dir: &Path) -> SweepConfig {
    SweepConfig {
        opts: RunOpts::default(),
        workers: 2,
        sizes_per_shard: 1,
        store: store.to_path_buf(),
        sweep_dir: sweep_dir.to_path_buf(),
        worker_exe: PathBuf::from(env!("CARGO_BIN_EXE_repro")),
        remote: None,
        verbose: false,
    }
}

#[test]
fn resumed_sweep_skips_completed_shards_and_matches() {
    let spec = tiny_spec();
    let dir = scratch("resume");
    let store = dir.join("store");

    let first = run_sweep(&spec, &sweep_config(&store, &dir.join("run1"))).expect("first sweep");
    assert_eq!(first.skipped, 0);
    assert_eq!(first.executed, first.planned);

    // Same store, fresh sweep dir: every shard's completion record is
    // already present, so nothing re-runs and the bytes are identical.
    let second = run_sweep(&spec, &sweep_config(&store, &dir.join("run2"))).expect("second sweep");
    assert_eq!(second.executed, 0);
    assert_eq!(second.skipped, second.planned);
    assert_eq!(second.sweep.to_csv(), first.sweep.to_csv());
    assert_eq!(second.manifest, first.manifest);

    // The orchestrator left its artifacts behind for `eco report`.
    assert!(dir.join("run1/plan.json").is_file());
    assert!(dir.join("run1/sweep.events.jsonl").is_file());
}

#[test]
fn plan_and_shard_cli_round_trip() {
    let dir = scratch("cli");
    let repro = env!("CARGO_BIN_EXE_repro");

    // `repro plan` writes a parseable plan artifact for a real figure.
    let plan_path = dir.join("plan.json");
    let out = Command::new(repro)
        .args(["plan", "fig5a", "--plan-out"])
        .arg(&plan_path)
        .output()
        .expect("repro plan runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&plan_path).expect("plan file");
    let doc = Json::parse(&text).expect("plan parses");
    let shards = match doc.get("shards") {
        Some(Json::Arr(items)) => items,
        other => panic!("plan has no shard list: {other:?}"),
    };
    assert!(!shards.is_empty());

    // `repro shard` executes one shard manifest and records completion
    // in the shared store, which a resumed orchestrator keys on.
    let spec = tiny_spec();
    let plan = SweepPlan::plan(&spec, 1).expect("plan");
    let shard = plan.measure_shards().next().expect("measure shard");
    let shard_path = dir.join("shard.json");
    std::fs::write(&shard_path, shard.to_json().render()).expect("shard file");
    let store = dir.join("store");
    let out = Command::new(repro)
        .arg("shard")
        .arg("--shard")
        .arg(&shard_path)
        .arg("--store")
        .arg(&store)
        .output()
        .expect("repro shard runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let store = ResultStore::open(&store).expect("store opens");
    let record = store
        .shard_complete(shard.fingerprint())
        .expect("completion record");
    assert_eq!(
        record.get("figure").and_then(Json::as_str),
        Some(spec.figure.as_str())
    );
}

#[test]
fn sweep_csv_shape_is_stable() {
    // Guard the gather-side CSV contract the goldens rely on: header
    // `N,<series...>`, one row per size, `{:.1}` formatting.
    let sweep = Sweep {
        sizes: vec![8, 16],
        series: vec![
            ("ECO".to_string(), vec![1.25, 2.0]),
            ("Native".to_string(), vec![0.5, 0.75]),
        ],
    };
    assert_eq!(sweep.to_csv(), "N,ECO,Native\n8,1.2,0.5\n16,2.0,0.8\n");
}
