//! Cross-crate integration tests: the full ECO pipeline (analysis →
//! variants → codegen → simulated measurement) on every kernel and both
//! machine models, checked for semantic correctness and the qualitative
//! relations the paper reports.

use eco_analysis::NestInfo;
use eco_baselines::{atlas_mm, native, vendor_mm};
use eco_core::{derive_variants, generate, Optimizer, SearchOptions, TuneRequest};
use eco_exec::{interpret, measure, ArrayLayout, LayoutOptions, Params, Storage};
use eco_ir::Program;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn assert_same_outputs(kernel: &Kernel, candidate: &Program, n: i64, label: &str) {
    let run = |p: &Program| {
        let pr = Params::new().with(kernel.size, n);
        let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::seeded(&layout, 271828);
        interpret(p, &pr, &layout, &mut st).unwrap_or_else(|e| panic!("{label}: {e}"));
        st
    };
    let want = run(&kernel.program);
    let got = run(candidate);
    for &o in &kernel.outputs {
        assert!(
            want.max_abs_diff(&got, o) < 1e-9,
            "{label}: output differs at N={n}"
        );
    }
}

#[test]
fn every_variant_of_every_kernel_generates_correct_code() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opt = Optimizer::new(machine.clone());
    for kernel in Kernel::all() {
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let variants = derive_variants(&nest, &machine, &kernel.program);
        assert!(!variants.is_empty(), "{}", kernel.name);
        for v in &variants {
            // back off unrolls until generation succeeds (register rings)
            let mut params = opt.initial_params(v);
            let program = loop {
                match generate(&kernel, &nest, v, &params, &machine) {
                    Ok(p) => break Some(p),
                    Err(_) => {
                        let Some((nm, val)) = params
                            .iter()
                            .filter(|(n, _)| n.starts_with('U'))
                            .max_by_key(|&(_, v)| *v)
                            .map(|(n, &v)| (n.clone(), v))
                        else {
                            break None;
                        };
                        if val < 2 {
                            break None;
                        }
                        params.insert(nm, val / 2);
                    }
                }
            };
            let Some(program) = program else {
                panic!("{} {}: no feasible parameters", kernel.name, v.name)
            };
            assert_same_outputs(
                &kernel,
                &program,
                21,
                &format!("{} {}", kernel.name, v.name),
            );
        }
    }
}

#[test]
fn tuned_matmul_is_correct_and_fast_on_both_machines() {
    for base in [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()] {
        let machine = base.scaled(32);
        let kernel = Kernel::matmul();
        let opts = SearchOptions::builder()
            .search_n(48)
            .max_variants(2)
            .build()
            .expect("options");
        let tuned = TuneRequest::new(kernel.clone(), machine.clone())
            .options(opts)
            .run()
            .expect("optimize")
            .tuned;
        assert_same_outputs(&kernel, &tuned.program, 29, &machine.name);
        let naive = measure(
            &kernel.program,
            &Params::new().with(kernel.size, 48),
            &machine,
            &LayoutOptions::default(),
        )
        .expect("naive");
        assert!(
            tuned.counters.cycles() * 3 < naive.cycles() * 2,
            "{}: tuned {} vs naive {}",
            machine.name,
            tuned.counters.cycles(),
            naive.cycles()
        );
    }
}

#[test]
fn eco_beats_native_on_average_for_matmul() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let opts = SearchOptions::builder()
        .search_n(56)
        .max_variants(2)
        .robustness_sizes(vec![64])
        .build()
        .expect("options");
    let eco = TuneRequest::new(kernel.clone(), machine.clone())
        .options(opts)
        .run()
        .expect("eco")
        .tuned;
    let nat = native(&kernel, &machine).expect("native");
    let mut eco_sum = 0.0;
    let mut nat_sum = 0.0;
    for n in [40i64, 56, 64, 80] {
        let run = |p: &Program| {
            measure(
                p,
                &Params::new().with(kernel.size, n),
                &machine,
                &LayoutOptions::default(),
            )
            .expect("measure")
            .mflops(machine.clock_mhz)
        };
        eco_sum += run(&eco.program);
        nat_sum += run(nat.for_size(n));
    }
    assert!(
        eco_sum > nat_sum,
        "ECO avg {eco_sum} must beat native avg {nat_sum}"
    );
}

#[test]
fn native_suffers_at_power_of_two_sizes() {
    // The paper: the native compiler "appears to suffer from severe
    // conflict misses for some matrix sizes because it does not apply
    // copying".
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nat = native(&kernel, &machine).expect("native");
    let run = |n: i64| {
        measure(
            nat.for_size(n),
            &Params::new().with(kernel.size, n),
            &machine,
            &LayoutOptions::default(),
        )
        .expect("measure")
        .mflops(machine.clock_mhz)
    };
    let good = run(80);
    let bad = run(64);
    assert!(
        bad * 2.0 < good,
        "pathological 64 ({bad}) should collapse vs 80 ({good})"
    );
}

#[test]
fn atlas_is_stable_but_eco_matches_or_beats_it() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let atlas = atlas_mm(&machine, 96).expect("atlas");
    let opts = SearchOptions::builder()
        .search_n(120)
        .max_variants(2)
        .robustness_sizes(vec![128])
        .build()
        .expect("options");
    let eco = TuneRequest::new(kernel.clone(), machine.clone())
        .options(opts)
        .run()
        .expect("eco")
        .tuned;
    let mut eco_avg = 0.0;
    let mut atlas_avg = 0.0;
    let sizes = [96i64, 128, 160, 192];
    for &n in &sizes {
        let run = |p: &Program| {
            measure(
                p,
                &Params::new().with(kernel.size, n),
                &machine,
                &LayoutOptions::default(),
            )
            .expect("measure")
            .mflops(machine.clock_mhz)
        };
        eco_avg += run(&eco.program) / sizes.len() as f64;
        atlas_avg += run(atlas.program.for_size(n)) / sizes.len() as f64;
    }
    assert!(
        eco_avg > 0.95 * atlas_avg,
        "ECO ({eco_avg:.1}) must at least match ATLAS ({atlas_avg:.1})"
    );
}

#[test]
fn eco_search_visits_fewer_points_than_atlas() {
    // §4.3: the ECO search is 2-4x cheaper than the ATLAS search.
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = SearchOptions::builder()
        .search_n(64)
        .max_variants(2)
        .build()
        .expect("options");
    let eco = TuneRequest::new(Kernel::matmul(), machine.clone())
        .options(opts)
        .run()
        .expect("eco")
        .tuned;
    let atlas = atlas_mm(&machine, 64).expect("atlas");
    assert!(
        eco.stats.points < atlas.points,
        "ECO {} vs ATLAS {}",
        eco.stats.points,
        atlas.points
    );
}

#[test]
fn vendor_and_atlas_are_correct_across_sizes() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let vendor = vendor_mm(&machine, 48).expect("vendor");
    let atlas = atlas_mm(&machine, 48).expect("atlas");
    for n in [11i64, 33, 64] {
        assert_same_outputs(&kernel, vendor.for_size(n), n, "vendor");
        assert_same_outputs(&kernel, atlas.program.for_size(n), n, "atlas");
    }
}

#[test]
fn tuned_jacobi_uses_prefetch_and_beats_native() {
    // §4.2 + Table 1: prefetching is a significant part of Jacobi's win.
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::jacobi3d();
    let opts = SearchOptions::builder()
        .search_n(36)
        .max_variants(3)
        .build()
        .expect("options");
    let eco = TuneRequest::new(kernel.clone(), machine.clone())
        .options(opts)
        .run()
        .expect("eco")
        .tuned;
    assert_same_outputs(&kernel, &eco.program, 19, "jacobi eco");
    let nat = native(&kernel, &machine).expect("native");
    let run = |p: &Program, n: i64| {
        measure(
            p,
            &Params::new().with(kernel.size, n),
            &machine,
            &LayoutOptions::default(),
        )
        .expect("measure")
        .mflops(machine.clock_mhz)
    };
    let mut eco_avg = 0.0;
    let mut nat_avg = 0.0;
    for n in [24i64, 36, 44] {
        eco_avg += run(&eco.program, n);
        nat_avg += run(nat.for_size(n), n);
    }
    assert!(eco_avg > nat_avg, "ECO {eco_avg} vs native {nat_avg}");
    assert!(
        !eco.prefetches.is_empty(),
        "Jacobi tuning should adopt prefetching"
    );
}

/// Both engine backends report the same `ExecError::OutOfBounds` —
/// array name, evaluated indices, and extents — when a program walks
/// one element past the end of an array. The compiled plan detects
/// this analytically (per-site valid-iteration intervals) where the
/// reference walker trips on the access itself, so the payloads must
/// be compared field for field.
#[test]
fn both_engine_backends_report_identical_out_of_bounds_errors() {
    use eco_exec::{Engine, EngineConfig, EvalJob, Evaluator, ExecBackend, ExecError};
    use eco_ir::{AffineExpr, ArrayRef, Loop, ScalarExpr, Stmt};
    let mut p = Program::new("oob_walk");
    let n = p.add_param("N");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::var(n)]);
    let b = p.add_array("B", vec![AffineExpr::var(n) + AffineExpr::constant(1)]);
    // DO I = 0, N: B[I] = A[I]. B has N+1 elements, A only N, so the
    // last iteration's load is the first (and only) faulting access.
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: AffineExpr::var(n).into(),
        step: 1,
        body: vec![Stmt::Store {
            target: ArrayRef::new(b, vec![AffineExpr::var(i)]),
            value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::var(i)])),
        }],
    }));
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let run = |backend: ExecBackend| {
        let engine = Engine::with_config(machine.clone(), EngineConfig::new().backend(backend))
            .expect("engine");
        engine.eval(EvalJob::new(p.clone(), Params::new().with(n, 7)).with_label("oob"))
    };
    let compiled = run(ExecBackend::Compiled);
    let reference = run(ExecBackend::Reference);
    assert_eq!(compiled, reference, "backends disagree on the error");
    let Err(ExecError::OutOfBounds {
        array,
        indices,
        extents,
    }) = compiled
    else {
        panic!("expected OutOfBounds, got {compiled:?}");
    };
    assert_eq!(array, "A");
    assert_eq!(indices, vec![7]);
    assert_eq!(extents, vec![7]);
}
