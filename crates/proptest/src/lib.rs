//! A small, dependency-free, **offline** stand-in for the `proptest`
//! crate, providing exactly the subset of its API this workspace uses.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the real `proptest` cannot be vendored. This crate keeps
//! the property-based tests (and their idiomatic `proptest!` syntax)
//! working with a deterministic, non-shrinking implementation:
//!
//! * [`strategy::Strategy`] — value generators with `prop_map`,
//!   implemented for integer ranges, tuples and collections;
//! * [`proptest!`] — the test macro, including
//!   `#![proptest_config(...)]` and `a in strategy` bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] — assertion forms;
//! * [`test_runner::TestRunner::deterministic`] plus
//!   [`strategy::ValueTree`] for the explicit-runner style.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the generated values via
//!   the panic message only;
//! * **fixed deterministic seeding** — every run explores the same
//!   cases, which suits this repo's bit-reproducibility requirements;
//! * far fewer combinators.

/// Pseudo-random source: splitmix64, deterministic and portable.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A new generator from `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod test_runner {
    use super::Rng;

    /// Run configuration (`ProptestConfig` in the real crate).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Drives value generation for the explicit-runner style.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        rng: Rng,
    }

    impl TestRunner {
        /// A runner with a fixed seed (all our runners are).
        pub fn deterministic() -> Self {
            TestRunner {
                rng: Rng::new(0xEC0_5EED),
            }
        }

        /// The runner's random source.
        pub fn rng_mut(&mut self) -> &mut Rng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::deterministic()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRunner;
    use super::Rng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// One generated value wrapped in a (non-shrinking) tree.
        ///
        /// # Errors
        ///
        /// Never fails; the `Result` mirrors the real API.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Single<Self::Value>, String> {
            Ok(Single(self.generate(runner.rng_mut())))
        }
    }

    /// A generated value plus (in the real crate) its shrink state.
    pub trait ValueTree {
        /// The generated type.
        type Value;

        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// The trivial [`ValueTree`]: a single value, no shrinking.
    #[derive(Debug, Clone)]
    pub struct Single<T>(pub T);

    impl<T: Clone> ValueTree for Single<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i32, i64, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::Rng;

    /// Anything usable as a length specification for [`vec()`]: a fixed
    /// `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut Rng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut Rng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut Rng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property (panics on failure here; the
/// real crate records and shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each function runs its body over generated
/// bindings (`name in strategy`). Supports an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$attr:meta])* fn $name:ident
        ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::deterministic();
                for _case in 0..config.cases {
                    let ($($arg,)+) = {
                        let rng = runner.rng_mut();
                        ($($crate::strategy::Strategy::generate(&($strat), rng),)+)
                    };
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{Strategy, ValueTree};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The `prop` path alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut r1 = crate::test_runner::TestRunner::deterministic();
        let mut r2 = crate::test_runner::TestRunner::deterministic();
        for _ in 0..1000 {
            let a = (-20i64..20).generate(r1.rng_mut());
            let b = (-20i64..20).generate(r2.rng_mut());
            assert_eq!(a, b);
            assert!((-20..20).contains(&a));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        for _ in 0..100 {
            let v = prop::collection::vec(0u64..10, 2..5).generate(runner.rng_mut());
            assert!((2..5).contains(&v.len()));
            let fixed = prop::collection::vec(0u64..10, 3usize).generate(runner.rng_mut());
            assert_eq!(fixed.len(), 3);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u32..4, 1i64..3).prop_map(|(a, b)| a as i64 + b);
        let mut runner = crate::test_runner::TestRunner::deterministic();
        for _ in 0..50 {
            let v = strat.generate(runner.rng_mut());
            assert!((1..6).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_and_asserts(x in 0i64..5, ys in prop::collection::vec(0u64..3, 1..4)) {
            prop_assert!((0..5).contains(&x));
            prop_assert_eq!(!ys.is_empty(), true);
        }
    }
}
