//! Machine descriptions for the ECO memory-hierarchy autotuner.
//!
//! This crate models the architectural information the paper's compiler
//! consumes (Table 2 of the paper): the register file, each cache level's
//! capacity / associativity / line size, the TLB, and a simple cycle cost
//! model used by the simulator in `eco-cachesim` to stand in for the
//! hardware performance counters (PAPI) used in the paper.
//!
//! Two presets reproduce the paper's platforms:
//!
//! * [`MachineDesc::sgi_r10000`] — SGI Octane R10000, 195 MHz, 32 FP
//!   registers, 32 KB 2-way L1, 1 MB 2-way L2, 64-entry TLB.
//! * [`MachineDesc::ultrasparc_iie`] — Sun UltraSparc IIe, 500 MHz, 32 FP
//!   registers, 16 KB direct-mapped L1, 256 KB 4-way L2, 64-entry TLB.
//!
//! Because simulating the paper's full problem sizes (up to N = 3500) is
//! infeasible, [`MachineDesc::scaled`] produces a geometry-preserving
//! shrunken machine: capacities and page size divide by the factor while
//! associativities, line sizes and the register file stay fixed, so every
//! working-set regime (fits-in-L1, fits-in-L2, TLB-coverage exceeded,
//! power-of-two conflict alignment) appears at proportionally smaller
//! problem sizes. See DESIGN.md §2.
//!
//! # Examples
//!
//! ```
//! use eco_machine::MachineDesc;
//!
//! let sgi = MachineDesc::sgi_r10000();
//! assert_eq!(sgi.caches.len(), 2);
//! assert_eq!(sgi.caches[0].capacity_bytes, 32 * 1024);
//!
//! let small = sgi.scaled(32);
//! assert_eq!(small.caches[0].capacity_bytes, 1024);
//! assert_eq!(small.caches[0].associativity, 2);
//! ```

use std::fmt;

/// Description of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheDesc {
    /// Human-readable name, e.g. `"L1"`.
    pub name: String,
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Set associativity (1 = direct mapped).
    pub associativity: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Extra cycles paid when an access misses this level and hits the
    /// next one (or memory, for the last level).
    pub miss_penalty_cycles: u64,
}

/// Precomputed set-indexing geometry of one cache level: everything the
/// simulator's hot loop needs to map an address to a set, derived once
/// from a [`CacheDesc`] instead of re-deriving shifts and masks per
/// lookup. Produced by [`CacheDesc::geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// `log2(line_bytes)`: shift that maps an address to a line number.
    pub line_bits: u32,
    /// Number of sets (power of two).
    pub sets: usize,
    /// `sets - 1`: mask that maps a line number to its set index.
    pub set_mask: u64,
    /// Ways per set.
    pub ways: usize,
    /// Total lines (`sets * ways`).
    pub lines: usize,
}

impl CacheDesc {
    /// Number of lines in the cache.
    ///
    /// ```
    /// use eco_machine::CacheDesc;
    /// let l1 = CacheDesc { name: "L1".into(), capacity_bytes: 1024,
    ///     associativity: 2, line_bytes: 32, miss_penalty_cycles: 10 };
    /// assert_eq!(l1.num_lines(), 32);
    /// assert_eq!(l1.num_sets(), 16);
    /// ```
    pub fn num_lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets (`lines / associativity`).
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.associativity
    }

    /// The precomputed set-indexing geometry ([`CacheGeom`]) of this
    /// level.
    ///
    /// # Panics
    ///
    /// Panics when the set count or the line size is not a power of two
    /// (the same legality conditions the simulator asserts).
    pub fn geometry(&self) -> CacheGeom {
        let sets = self.num_sets();
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheGeom {
            line_bits: self.line_bytes.trailing_zeros(),
            sets,
            set_mask: sets as u64 - 1,
            ways: self.associativity,
            lines: sets * self.associativity,
        }
    }

    /// Capacity in 8-byte double-precision words, the unit the paper's
    /// footprint constraints are expressed in.
    pub fn capacity_doubles(&self) -> usize {
        self.capacity_bytes / 8
    }

    /// The "effective" capacity used by the paper's conflict-avoidance
    /// heuristic (§3.1.1): full capacity for a direct-mapped cache, and
    /// `(n-1)/n` of capacity for an n-way set-associative cache.
    pub fn effective_capacity_bytes(&self) -> usize {
        if self.associativity <= 1 {
            self.capacity_bytes
        } else {
            self.capacity_bytes * (self.associativity - 1) / self.associativity
        }
    }
}

/// Description of the translation lookaside buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TlbDesc {
    /// Number of entries (modelled fully associative, as on the R10000).
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Extra cycles per TLB miss (software/hardware refill cost).
    pub miss_penalty_cycles: u64,
}

impl TlbDesc {
    /// Bytes of memory covered by a full TLB.
    pub fn coverage_bytes(&self) -> usize {
        self.entries * self.page_bytes
    }
}

/// Cycle cost model for the non-memory parts of execution.
///
/// The simulator charges `flop_cycles_x1000 / 1000` cycles per floating
/// point operation (fixed-point to keep the type `Eq`/hashable),
/// `mem_issue_cycles_x1000` per load or store issued, and
/// `prefetch_issue_cycles_x1000` per software prefetch instruction; memory
/// stalls come from the cache model on top of this.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Milli-cycles per floating-point operation (500 = 2 flops/cycle).
    pub flop_cycles_x1000: u64,
    /// Issue cost per load or store, in milli-cycles.
    pub mem_issue_cycles_x1000: u64,
    /// Issue cost per software-prefetch instruction, in milli-cycles.
    pub prefetch_issue_cycles_x1000: u64,
    /// Per-iteration loop overhead (branch + index update), milli-cycles.
    pub loop_overhead_cycles_x1000: u64,
    /// Bus occupancy per line fetched from main memory, in milli-cycles.
    /// Charged whether or not the latency was hidden by prefetch — this is
    /// the bandwidth limit that makes Jacobi memory-bound in §4.2.
    pub memory_bandwidth_cycles_per_line_x1000: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated to a ~2-flop/cycle superscalar FPU that overlaps
        // load issue with computation (R10000-like).
        CostModel {
            flop_cycles_x1000: 500,
            mem_issue_cycles_x1000: 250,
            prefetch_issue_cycles_x1000: 250,
            loop_overhead_cycles_x1000: 1000,
            memory_bandwidth_cycles_per_line_x1000: 40_000,
        }
    }
}

/// A level of the memory hierarchy, ordered from the fastest (registers)
/// outward. The variant-derivation algorithm of the paper (Fig. 3) walks
/// these levels in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoryLevel {
    /// The floating-point register file (level 0 in the paper).
    Register,
    /// A cache level, by index into [`MachineDesc::caches`] (0 = L1).
    Cache(usize),
}

impl fmt::Display for MemoryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryLevel::Register => write!(f, "Reg"),
            MemoryLevel::Cache(i) => write!(f, "L{}", i + 1),
        }
    }
}

/// Full description of a target machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineDesc {
    /// Human-readable name, e.g. `"SGI R10000"`.
    pub name: String,
    /// Clock rate in MHz, used to convert cycles to MFLOPS.
    pub clock_mhz: u64,
    /// Number of floating-point registers usable for scalar replacement.
    pub fp_registers: usize,
    /// Cache levels, innermost (L1) first.
    pub caches: Vec<CacheDesc>,
    /// The TLB.
    pub tlb: TlbDesc,
    /// Cost-model parameters.
    pub cost: CostModel,
}

impl MachineDesc {
    /// The SGI Octane R10000 configuration of the paper's Table 2.
    ///
    /// ```
    /// let m = eco_machine::MachineDesc::sgi_r10000();
    /// assert_eq!(m.clock_mhz, 195);
    /// assert_eq!(m.fp_registers, 32);
    /// ```
    pub fn sgi_r10000() -> Self {
        MachineDesc {
            name: "SGI R10000".to_string(),
            clock_mhz: 195,
            fp_registers: 32,
            caches: vec![
                CacheDesc {
                    name: "L1".to_string(),
                    capacity_bytes: 32 * 1024,
                    associativity: 2,
                    line_bytes: 32,
                    miss_penalty_cycles: 10,
                },
                CacheDesc {
                    name: "L2".to_string(),
                    capacity_bytes: 1024 * 1024,
                    associativity: 2,
                    line_bytes: 128,
                    miss_penalty_cycles: 80,
                },
            ],
            tlb: TlbDesc {
                entries: 64,
                page_bytes: 4096,
                miss_penalty_cycles: 60,
            },
            cost: CostModel::default(),
        }
    }

    /// The Sun UltraSparc IIe configuration of the paper's Table 2.
    ///
    /// ```
    /// let m = eco_machine::MachineDesc::ultrasparc_iie();
    /// assert_eq!(m.caches[0].associativity, 1); // direct-mapped L1
    /// assert_eq!(m.caches[1].associativity, 4);
    /// ```
    pub fn ultrasparc_iie() -> Self {
        MachineDesc {
            name: "Sun UltraSparc IIe".to_string(),
            clock_mhz: 500,
            fp_registers: 32,
            caches: vec![
                CacheDesc {
                    name: "L1".to_string(),
                    capacity_bytes: 16 * 1024,
                    associativity: 1,
                    line_bytes: 32,
                    miss_penalty_cycles: 8,
                },
                CacheDesc {
                    name: "L2".to_string(),
                    capacity_bytes: 256 * 1024,
                    associativity: 4,
                    line_bytes: 64,
                    miss_penalty_cycles: 100,
                },
            ],
            tlb: TlbDesc {
                entries: 64,
                page_bytes: 4096,
                miss_penalty_cycles: 50,
            },
            cost: CostModel::default(),
        }
    }

    /// A geometry-preserving scaled-down machine: cache capacities and the
    /// page size divide by `factor`; associativity, line sizes, penalties
    /// and the register file are unchanged. Working-set regime boundaries
    /// move to problem sizes smaller by `sqrt(factor)` for 2-D data.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is 0, or so large that a cache would drop below
    /// one line per set or the page below one cache line.
    pub fn scaled(&self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        let mut m = self.clone();
        m.name = format!("{} (1/{} scale)", self.name, factor);
        for c in &mut m.caches {
            assert!(
                c.capacity_bytes / factor >= c.line_bytes * c.associativity,
                "scale factor {factor} leaves {} with less than one set",
                c.name
            );
            c.capacity_bytes /= factor;
        }
        assert!(
            m.tlb.page_bytes / factor >= m.caches[0].line_bytes,
            "scale factor {factor} shrinks pages below a cache line"
        );
        m.tlb.page_bytes /= factor;
        m
    }

    /// Capacity, in double-precision words, of a memory level
    /// (`Register` → number of FP registers).
    pub fn capacity_doubles(&self, level: MemoryLevel) -> usize {
        match level {
            MemoryLevel::Register => self.fp_registers,
            MemoryLevel::Cache(i) => self.caches[i].capacity_doubles(),
        }
    }

    /// All memory levels of this machine in the order the paper's
    /// algorithm visits them: registers first, then each cache.
    pub fn levels(&self) -> Vec<MemoryLevel> {
        let mut v = vec![MemoryLevel::Register];
        v.extend((0..self.caches.len()).map(MemoryLevel::Cache));
        v
    }

    /// Theoretical peak MFLOPS implied by the cost model
    /// (`clock / flop_cost`).
    pub fn peak_mflops(&self) -> f64 {
        self.clock_mhz as f64 * 1000.0 / self.cost.flop_cycles_x1000 as f64
    }
}

impl fmt::Display for MachineDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} MHz: {} FP regs",
            self.name, self.clock_mhz, self.fp_registers
        )?;
        for c in &self.caches {
            let size = if c.capacity_bytes >= 1024 && c.capacity_bytes % 1024 == 0 {
                format!("{}KB", c.capacity_bytes / 1024)
            } else {
                format!("{}B", c.capacity_bytes)
            };
            write!(
                f,
                ", {} {size} {}-way/{}B",
                c.name, c.associativity, c.line_bytes
            )?;
        }
        write!(f, ", TLB {}x{}B", self.tlb.entries, self.tlb.page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgi_matches_table2() {
        let m = MachineDesc::sgi_r10000();
        assert_eq!(m.clock_mhz, 195);
        assert_eq!(m.fp_registers, 32);
        assert_eq!(m.caches[0].capacity_bytes, 32 * 1024);
        assert_eq!(m.caches[0].associativity, 2);
        assert_eq!(m.caches[1].capacity_bytes, 1024 * 1024);
        assert_eq!(m.caches[1].associativity, 2);
        assert_eq!(m.tlb.entries, 64);
    }

    #[test]
    fn sun_matches_table2() {
        let m = MachineDesc::ultrasparc_iie();
        assert_eq!(m.clock_mhz, 500);
        assert_eq!(m.caches[0].capacity_bytes, 16 * 1024);
        assert_eq!(m.caches[0].associativity, 1);
        assert_eq!(m.caches[1].capacity_bytes, 256 * 1024);
        assert_eq!(m.caches[1].associativity, 4);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheDesc {
            name: "L1".into(),
            capacity_bytes: 32 * 1024,
            associativity: 2,
            line_bytes: 32,
            miss_penalty_cycles: 10,
        };
        assert_eq!(c.num_lines(), 1024);
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.capacity_doubles(), 4096);
        assert_eq!(c.effective_capacity_bytes(), 16 * 1024);
    }

    #[test]
    fn direct_mapped_effective_capacity_is_full() {
        let m = MachineDesc::ultrasparc_iie();
        assert_eq!(
            m.caches[0].effective_capacity_bytes(),
            m.caches[0].capacity_bytes
        );
        // 4-way L2 keeps 3/4.
        assert_eq!(
            m.caches[1].effective_capacity_bytes(),
            m.caches[1].capacity_bytes * 3 / 4
        );
    }

    #[test]
    fn scaling_preserves_shape() {
        let m = MachineDesc::sgi_r10000();
        let s = m.scaled(32);
        assert_eq!(s.caches[0].capacity_bytes, 1024);
        assert_eq!(s.caches[0].associativity, 2);
        assert_eq!(s.caches[0].line_bytes, 32);
        assert_eq!(s.caches[1].capacity_bytes, 32 * 1024);
        assert_eq!(s.tlb.page_bytes, 128);
        assert_eq!(s.tlb.entries, 64);
        assert_eq!(s.fp_registers, 32);
        // coverage ratio TLB/L2 preserved
        assert_eq!(
            m.tlb.coverage_bytes() * s.caches[1].capacity_bytes,
            s.tlb.coverage_bytes() * m.caches[1].capacity_bytes
        );
    }

    #[test]
    #[should_panic(expected = "less than one set")]
    fn overscaling_panics() {
        MachineDesc::sgi_r10000().scaled(1 << 20);
    }

    #[test]
    fn levels_order() {
        let m = MachineDesc::sgi_r10000();
        assert_eq!(
            m.levels(),
            vec![
                MemoryLevel::Register,
                MemoryLevel::Cache(0),
                MemoryLevel::Cache(1)
            ]
        );
        assert!(MemoryLevel::Register < MemoryLevel::Cache(0));
    }

    #[test]
    fn capacity_doubles_by_level() {
        let m = MachineDesc::sgi_r10000();
        assert_eq!(m.capacity_doubles(MemoryLevel::Register), 32);
        assert_eq!(m.capacity_doubles(MemoryLevel::Cache(0)), 4096);
    }

    #[test]
    fn peak_mflops_sgi() {
        // 195 MHz * 2 flops/cycle = 390 MFLOPS, as quoted in §4.1.
        let m = MachineDesc::sgi_r10000();
        assert!((m.peak_mflops() - 390.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        let s = MachineDesc::sgi_r10000().to_string();
        assert!(s.contains("SGI"));
        assert!(s.contains("TLB"));
        assert!(MemoryLevel::Register.to_string() == "Reg");
        assert_eq!(MemoryLevel::Cache(1).to_string(), "L2");
    }
}
