//! Supplementary baseline tests on the second machine model and for
//! the extension kernels.

use eco_baselines::{atlas_mm, model_only, native, vendor_mm};
use eco_exec::{interpret, ArrayLayout, LayoutOptions, Params, Storage};
use eco_ir::Program;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn assert_correct(program: &Program, kernel: &Kernel, n: i64) {
    let run = |p: &Program| {
        let pr = Params::new().with(kernel.size, n);
        let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::seeded(&layout, 4242);
        interpret(p, &pr, &layout, &mut st).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        st
    };
    let want = run(&kernel.program);
    let got = run(program);
    for &o in &kernel.outputs {
        assert!(
            want.max_abs_diff(&got, o) < 1e-9,
            "{} wrong at N={n}",
            program.name
        );
    }
}

#[test]
fn all_baselines_correct_on_the_sun_model() {
    let machine = MachineDesc::ultrasparc_iie().scaled(32);
    let mm = Kernel::matmul();
    assert_correct(native(&mm, &machine).expect("native").for_size(23), &mm, 23);
    assert_correct(
        model_only(&mm, &machine).expect("model").for_size(23),
        &mm,
        23,
    );
    let atlas = atlas_mm(&machine, 32).expect("atlas");
    assert_correct(atlas.program.for_size(23), &mm, 23);
    let vendor = vendor_mm(&machine, 32).expect("vendor");
    assert_correct(vendor.for_size(64), &mm, 23);
}

#[test]
fn native_handles_extension_kernels() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    for kernel in [Kernel::syrk(), Kernel::matmul_transposed()] {
        let b = native(&kernel, &machine).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert_correct(b.for_size(15), &kernel, 15);
    }
}

#[test]
fn model_only_handles_extension_kernels() {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    for kernel in [
        Kernel::syrk(),
        Kernel::matmul_transposed(),
        Kernel::stencil5(),
    ] {
        let b = model_only(&kernel, &machine).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert_correct(b.for_size(17), &kernel, 17);
    }
}

#[test]
fn atlas_direct_mapped_l1_still_tunes() {
    // The Sun's direct-mapped L1 exercises the n=1 effective-capacity
    // branch throughout the grid.
    let machine = MachineDesc::ultrasparc_iie().scaled(32);
    let r = atlas_mm(&machine, 24).expect("atlas");
    assert!(r.points > 10);
    assert!(r.nb >= 4);
}
