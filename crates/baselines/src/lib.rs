//! Comparator implementations for the paper's evaluation (§4):
//!
//! * [`native`] — a *native-compiler-like* optimizer: purely model-driven
//!   (no empirical search), first-variant loop order, model-derived tile
//!   and unroll parameters, **no copy optimization and no prefetching**.
//!   This reproduces the paper's characterization of MIPSpro / Sun
//!   Workshop: good average behaviour, severe conflict misses at unlucky
//!   array sizes (nothing eliminates cache conflicts), and TLB trouble at
//!   large sizes.
//! * [`model_only`] — the Yotov-et-al question ("is search necessary?"):
//!   the *best* ECO variant (copies included) with purely model-derived
//!   parameter values and no search.
//! * [`atlas_mm`] — an ATLAS-like pure empirical search for Matrix
//!   Multiply: a fixed code shape (single-level NB×NB blocking, jik
//!   order, mu×nu register tile, operand copying for large problems
//!   only) tuned by sweeping a large parameter grid with no model
//!   guidance beyond the L1-capacity bound on NB.
//! * [`vendor_mm`] — a hand-tuned vendor-BLAS-like Matrix Multiply: the
//!   fully blocked, both-operands-packed v2 code shape with parameters
//!   from a small manual sweep, which keeps it close to ECO on average
//!   as the paper reports for SCSL/SunPerf.

use eco_analysis::NestInfo;
use eco_core::{derive_variants, generate, EcoError, Optimizer, ParamValues, Variant};
use eco_exec::{Engine, EvalJob, Evaluator, Params};
use eco_ir::Program;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_transform::{
    copy_in, insert_prefetch, scalar_replace, tile_nest, unroll_and_jam, CopyDim, CopySpec,
    LoopSel, TileSpec,
};

/// A baseline's generated code, possibly size-dependent (ATLAS applies
/// copying only above a size threshold).
#[derive(Debug, Clone)]
pub enum BaselineProgram {
    /// One program for every problem size.
    Fixed(Program),
    /// Different code below/above a size threshold.
    SizeDependent {
        /// Code for `n < threshold`.
        small: Program,
        /// Code for `n >= threshold`.
        large: Program,
        /// The switch-over problem size.
        threshold: i64,
    },
}

impl BaselineProgram {
    /// The program used at problem size `n`.
    pub fn for_size(&self, n: i64) -> &Program {
        match self {
            BaselineProgram::Fixed(p) => p,
            BaselineProgram::SizeDependent {
                small,
                large,
                threshold,
            } => {
                if n < *threshold {
                    small
                } else {
                    large
                }
            }
        }
    }
}

/// Generates a variant at model-derived parameters, backing off unroll
/// factors on register pressure (no measurements involved).
fn generate_with_backoff(
    kernel: &Kernel,
    nest: &NestInfo,
    variant: &Variant,
    machine: &MachineDesc,
) -> Result<(Program, ParamValues), EcoError> {
    let opt = Optimizer::new(machine.clone());
    let mut params = opt.initial_params(variant);
    for _ in 0..8 {
        match generate(kernel, nest, variant, &params, machine) {
            Ok(p) => return Ok((p, params)),
            Err(_) => {
                let Some((nm, val)) = params
                    .iter()
                    .filter(|(n, _)| n.starts_with('U'))
                    .max_by_key(|&(_, v)| *v)
                    .map(|(n, &v)| (n.clone(), v))
                else {
                    break;
                };
                if val < 2 {
                    break;
                }
                params.insert(nm, val / 2);
            }
        }
    }
    generate(kernel, nest, variant, &params, machine).map(|p| (p, params))
}

/// The native-compiler-like baseline: first derived variant, copies
/// stripped, model parameters, no prefetch, no search.
///
/// # Errors
///
/// Fails if the kernel is not analyzable or code generation fails.
pub fn native(kernel: &Kernel, machine: &MachineDesc) -> Result<BaselineProgram, EcoError> {
    let nest = NestInfo::from_program(&kernel.program)?;
    let mut variants = derive_variants(&nest, machine, &kernel.program);
    if variants.is_empty() {
        return Err(EcoError::NoVariants);
    }
    // strip all copy plans: native compilers of the era did not copy
    for v in &mut variants {
        for l in &mut v.levels {
            l.copy = None;
        }
    }
    let v = variants.swap_remove(0);
    let (mut program, _) = generate_with_backoff(kernel, &nest, &v, machine)?;
    program.name = format!("{}_native", kernel.name);
    Ok(BaselineProgram::Fixed(program))
}

/// The model-only baseline (the Yotov-style question): the most
/// aggressive ECO variant (most copies, then most tiled loops) at purely
/// model-derived parameters.
///
/// # Errors
///
/// Fails if the kernel is not analyzable or code generation fails.
pub fn model_only(kernel: &Kernel, machine: &MachineDesc) -> Result<BaselineProgram, EcoError> {
    let nest = NestInfo::from_program(&kernel.program)?;
    let variants = derive_variants(&nest, machine, &kernel.program);
    let v = variants
        .into_iter()
        .max_by_key(|v| {
            (
                v.levels.iter().filter(|l| l.copy.is_some()).count(),
                v.levels.iter().map(|l| l.tiles.len()).sum::<usize>(),
            )
        })
        .ok_or(EcoError::NoVariants)?;
    let (mut program, _) = generate_with_backoff(kernel, &nest, &v, machine)?;
    program.name = format!("{}_model", kernel.name);
    Ok(BaselineProgram::Fixed(program))
}

/// The result of the ATLAS-like search.
#[derive(Debug, Clone)]
pub struct AtlasResult {
    /// The tuned implementation (no copy below `threshold`).
    pub program: BaselineProgram,
    /// Search points executed (compare §4.3: the ATLAS search is
    /// several times larger than ECO's).
    pub points: usize,
    /// Chosen block size.
    pub nb: u64,
    /// Chosen register tile.
    pub mu_nu: (u64, u64),
}

/// Builds the ATLAS code shape for Matrix Multiply: jik loop order,
/// NB×NB×NB blocking, mu×nu register tile, optional packing of both
/// operands.
fn atlas_shape(
    kernel: &Kernel,
    machine: &MachineDesc,
    nb: u64,
    mu: u64,
    nu: u64,
    pack: bool,
) -> Result<Program, EcoError> {
    let p = &kernel.program;
    let (kv, jv, iv) = (
        p.var_by_name("K").expect("K"),
        p.var_by_name("J").expect("J"),
        p.var_by_name("I").expect("I"),
    );
    let tiles = [
        TileSpec { var: jv, tile: nb },
        TileSpec { var: iv, tile: nb },
        TileSpec { var: kv, tile: nb },
    ];
    // ATLAS's structure: per j-panel (JJ), pack the B panel per k-block
    // (KK), pack the A block per i-block (II), then the on-chip multiply.
    let order = [
        LoopSel::Control(jv),
        LoopSel::Control(kv),
        LoopSel::Control(iv),
        LoopSel::Point(jv),
        LoopSel::Point(iv),
        LoopSel::Point(kv),
    ];
    let (mut program, controls) = tile_nest(p, &tiles, &order)?;
    // controls are returned in `tiles` order: J, I, K.
    let (jj, ii, kk) = (controls[0], controls[1], controls[2]);
    if mu > 1 {
        program = unroll_and_jam(&program, iv, mu)?;
    }
    if nu > 1 {
        program = unroll_and_jam(&program, jv, nu)?;
    }
    program = scalar_replace(&program, kv, Some(machine.fp_registers))?;
    if pack {
        let a = program.array_by_name("A").expect("A");
        let b = program.array_by_name("B").expect("B");
        use eco_ir::AffineExpr;
        // B panel packed once per (JJ, KK); A block packed per II.
        program = copy_in(
            &program,
            &CopySpec {
                at: kk,
                array: b,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: nb,
                    },
                    CopyDim {
                        lo: AffineExpr::var(jj),
                        extent: nb,
                    },
                ],
                buffer_name: "PB".into(),
            },
        )?;
        program = copy_in(
            &program,
            &CopySpec {
                at: ii,
                array: a,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(ii),
                        extent: nb,
                    },
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: nb,
                    },
                ],
                buffer_name: "PA".into(),
            },
        )?;
    }
    program.name = format!(
        "mm_atlas_nb{nb}_{mu}x{nu}{}",
        if pack { "_pack" } else { "" }
    );
    Ok(program)
}

/// Runs the ATLAS-like pure empirical search for Matrix Multiply on
/// `machine`, measuring candidates at problem size `search_n` on a
/// private default [`Engine`].
///
/// # Errors
///
/// Fails if no candidate in the grid could be generated and measured.
pub fn atlas_mm(machine: &MachineDesc, search_n: i64) -> Result<AtlasResult, EcoError> {
    atlas_mm_with(&Engine::new(machine.clone()), search_n)
}

/// Like [`atlas_mm`], but against a caller-supplied [`Evaluator`]: the
/// whole candidate grid goes out as one batch, so the engine can
/// deduplicate repeats and run the rest in parallel. The winner is the
/// first minimum in grid-scan order, exactly like the serial sweep.
///
/// # Errors
///
/// Fails if no candidate in the grid could be generated and measured.
pub fn atlas_mm_with(engine: &dyn Evaluator, search_n: i64) -> Result<AtlasResult, EcoError> {
    let machine = engine.machine();
    let kernel = Kernel::matmul();
    // NB grid bounded only by the L1-capacity model (NB^2 <= L1 eff.);
    // everything else is brute force, ATLAS-style.
    // NB bounded by the last-level capacity heuristic (ATLAS's
    // CacheEdge): NB^2 <= effective L2 capacity.
    let l2_doubles = (machine
        .caches
        .last()
        .expect("at least one cache")
        .effective_capacity_bytes()
        / 8) as u64;
    let nb_max = ((l2_doubles as f64).sqrt() as u64).max(4);
    let mut nbs: Vec<u64> = Vec::new();
    let mut nb = 4;
    while nb <= nb_max {
        nbs.push(nb);
        nb += if nb < 16 { 2 } else { 4 };
    }
    let reg_tiles: &[(u64, u64)] = &[
        (1, 1),
        (2, 1),
        (2, 2),
        (4, 2),
        (2, 4),
        (4, 4),
        (6, 4),
        (4, 6),
        (8, 4),
    ];
    // Generate the whole grid, then measure it as a single batch.
    let mut configs: Vec<(u64, (u64, u64))> = Vec::new();
    let mut jobs: Vec<EvalJob> = Vec::new();
    for &nb in &nbs {
        for &(mu, nu) in reg_tiles {
            let Ok(program) = atlas_shape(&kernel, machine, nb, mu, nu, true) else {
                continue;
            };
            configs.push((nb, (mu, nu)));
            jobs.push(
                EvalJob::new(program, Params::new().with(kernel.size, search_n))
                    .with_label("atlas/grid"),
            );
        }
    }
    let results = engine.eval_batch(&jobs);
    let mut points = 0;
    let mut best: Option<(u64, (u64, u64), u64)> = None;
    for (&(nb, mu_nu), r) in configs.iter().zip(&results) {
        let Ok(c) = r else {
            continue;
        };
        points += 1;
        let cycles = c.cycles();
        if best.is_none_or(|(_, _, b)| cycles < b) {
            best = Some((nb, mu_nu, cycles));
        }
    }
    let (nb, mu_nu, _) = best.ok_or(EcoError::NoVariants)?;
    let large = atlas_shape(&kernel, machine, nb, mu_nu.0, mu_nu.1, true)?;
    let small = atlas_shape(&kernel, machine, nb, mu_nu.0, mu_nu.1, false)?;
    Ok(AtlasResult {
        program: BaselineProgram::SizeDependent {
            small,
            large,
            // ATLAS skips copying while the whole problem is cache-sized.
            threshold: (nb * 3) as i64,
        },
        points,
        nb,
        mu_nu,
    })
}

/// The hand-tuned vendor-BLAS-like Matrix Multiply: the fully blocked,
/// both-operands-packed v2 code shape with parameters from a small
/// *manual* empirical sweep at `tune_n` — the paper notes the vendor
/// BLAS "can be considered a manual empirical search" taking days of
/// programmer time.
///
/// # Errors
///
/// Fails if no grid point generates and measures successfully.
pub fn vendor_mm(machine: &MachineDesc, tune_n: i64) -> Result<BaselineProgram, EcoError> {
    vendor_mm_with(&Engine::new(machine.clone()), tune_n)
}

/// Like [`vendor_mm`], but against a caller-supplied [`Evaluator`]; the
/// manual sweep's grid is measured as one batch.
///
/// # Errors
///
/// Fails if no grid point generates and measures successfully.
pub fn vendor_mm_with(engine: &dyn Evaluator, tune_n: i64) -> Result<BaselineProgram, EcoError> {
    let machine = engine.machine();
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program)?;
    let variants = derive_variants(&nest, machine, &kernel.program);
    // The full v2 shape (three levels, both operands packed) — vendor
    // GEMMs of the era were heavily hand-blocked and packed.
    let v = variants
        .into_iter()
        .find(|v| {
            v.levels.len() == 3
                && v.levels[1].copy.is_some()
                && v.levels[2].copy.is_some()
                && !v.levels[1].tiles.is_empty()
        })
        .ok_or(EcoError::NoVariants)?;
    let mut grid: Vec<ParamValues> = Vec::new();
    let mut jobs: Vec<EvalJob> = Vec::new();
    for ti in [8u64, 16, 32] {
        for tk in [8u64, 16, 32, 64] {
            for tj in [16u64, 32, 64] {
                let mut params = ParamValues::new();
                params.insert("UI".into(), 4);
                params.insert("UJ".into(), 4);
                params.insert("TI".into(), ti);
                params.insert("TK".into(), tk);
                params.insert("TJ".into(), tj);
                let Ok(program) = generate(&kernel, &nest, &v, &params, machine) else {
                    continue;
                };
                grid.push(params);
                jobs.push(
                    EvalJob::new(program, Params::new().with(kernel.size, tune_n))
                        .with_label("vendor/grid"),
                );
            }
        }
    }
    let results = engine.eval_batch(&jobs);
    let mut best: Option<(&ParamValues, u64)> = None;
    for (params, r) in grid.iter().zip(&results) {
        let Ok(c) = r else {
            continue;
        };
        if best.as_ref().is_none_or(|&(_, b)| c.cycles() < b) {
            best = Some((params, c.cycles()));
        }
    }
    let (params, _) = best.ok_or(EcoError::NoVariants)?;
    let params = params.clone();
    let mut program = generate(&kernel, &nest, &v, &params, machine)?;
    // prefetch the packed panels, as hand-tuned kernels do
    for buf in ["P", "Q"] {
        if let Some(b) = program.array_by_name(buf) {
            if let Ok(p2) = insert_prefetch(&program, v.register_carrier(), b, 2) {
                program = p2;
            }
        }
    }
    program.name = "mm_vendor".into();
    Ok(BaselineProgram::Fixed(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_exec::{interpret, ArrayLayout, LayoutOptions, Storage};

    fn assert_correct(program: &Program, kernel: &Kernel, n: i64) {
        let run = |p: &Program| {
            let pr = Params::new().with(kernel.size, n);
            let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 31);
            interpret(p, &pr, &layout, &mut st).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            st
        };
        let want = run(&kernel.program);
        let got = run(program);
        for &o in &kernel.outputs {
            let name = &kernel.program.array(o).name;
            let a = kernel.program.array_by_name(name).expect("out");
            assert!(
                want.max_abs_diff(&got, a) < 1e-9,
                "{} wrong at N={n}",
                program.name
            );
        }
    }

    #[test]
    fn native_is_correct_for_all_kernels() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        for kernel in Kernel::all() {
            let b = native(&kernel, &machine).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert_correct(b.for_size(17), &kernel, 17);
        }
    }

    #[test]
    fn model_only_is_correct_for_paper_kernels() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        for kernel in [Kernel::matmul(), Kernel::jacobi3d()] {
            let b =
                model_only(&kernel, &machine).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert_correct(b.for_size(19), &kernel, 19);
        }
    }

    #[test]
    fn native_never_copies() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let b = native(&Kernel::matmul(), &machine).expect("native");
        let p = b.for_size(100);
        assert!(p.arrays.iter().all(|a| a.kind == eco_ir::ArrayKind::Data));
    }

    #[test]
    fn atlas_shape_is_correct_both_packed_and_not() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::matmul();
        for pack in [false, true] {
            let p = atlas_shape(&kernel, &machine, 6, 2, 2, pack).expect("shape");
            assert_correct(&p, &kernel, 17);
        }
    }

    #[test]
    fn atlas_search_finds_a_configuration() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let r = atlas_mm(&machine, 20).expect("atlas");
        assert!(r.points > 20, "ATLAS's grid must be large: {}", r.points);
        assert!(r.nb >= 4);
        assert_correct(r.program.for_size(100), &Kernel::matmul(), 17);
        assert_correct(r.program.for_size(1), &Kernel::matmul(), 17);
        // size-dependent: small version has no copy buffers
        let small = r.program.for_size(1);
        assert!(small
            .arrays
            .iter()
            .all(|a| a.kind == eco_ir::ArrayKind::Data));
        let large = r.program.for_size(1000);
        assert!(large
            .arrays
            .iter()
            .any(|a| a.kind == eco_ir::ArrayKind::CopyBuffer));
    }

    #[test]
    fn vendor_mm_is_correct_and_packs_both_operands() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let b = vendor_mm(&machine, 40).expect("vendor");
        let p = b.for_size(64);
        assert_correct(p, &Kernel::matmul(), 21);
        let buffers = p
            .arrays
            .iter()
            .filter(|a| a.kind == eco_ir::ArrayKind::CopyBuffer)
            .count();
        assert_eq!(buffers, 2, "both operands packed");
    }
}
