//! In-process service metrics: counters, gauges and fixed-bucket
//! histograms behind a registry with deterministic, Prometheus-text
//! compatible exposition.
//!
//! Zero dependencies (the container is offline) and near-zero cost on
//! hot paths: instrumented subsystems resolve their handles
//! ([`Counter`] / [`Gauge`] / [`Histogram`] `Arc`s) once at
//! construction, so recording is one or a few relaxed atomic
//! operations — no locks, no allocation, nothing measurable when no
//! scraper is attached. The registry mutex is only taken at
//! registration and at [`Registry::render`] time.
//!
//! Metrics are *operational* telemetry and deliberately live outside
//! the determinism boundary: they never enter run manifests, golden
//! CSVs or event streams, so enabling or scraping them cannot change
//! any committed byte (the same contract `EngineStats::store_hits`
//! already documents).
//!
//! The exposition format is the Prometheus text format:
//!
//! ```text
//! # HELP eco_serve_requests_total Requests handled, by op.
//! # TYPE eco_serve_requests_total counter
//! eco_serve_requests_total{op="ping"} 3
//! # TYPE eco_engine_eval_duration_us histogram
//! eco_engine_eval_duration_us_bucket{le="100"} 2
//! eco_engine_eval_duration_us_bucket{le="+Inf"} 5
//! eco_engine_eval_duration_us_sum 12345
//! eco_engine_eval_duration_us_count 5
//! ```
//!
//! Families are rendered sorted by name and label sets sorted within a
//! family, so the same registry state always renders the same bytes.
//! [`parse_exposition`] reads the format back (for `eco top`, tests
//! and CI invariant checks) and [`Exposition::quantile`] estimates
//! histogram quantiles from the cumulative buckets.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter. All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket bounds in microseconds: 100µs to 1s.
pub const LATENCY_US_BOUNDS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// A fixed-bucket histogram over `u64` observations (microseconds for
/// every latency metric in this workspace). One relaxed atomic add per
/// bucket/sum/count on [`observe`](Self::observe).
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds (inclusive) of the finite buckets, ascending.
    bounds: Vec<u64>,
    /// Per-bucket counts (`bounds.len() + 1`, the last is overflow).
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts, one per finite bound plus `+Inf`.
    fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Family {
    help: String,
    /// One metric per rendered label set (sorted keys ⇒ deterministic).
    metrics: BTreeMap<String, Metric>,
}

/// A namespace of metric families. Most code uses the process-wide
/// [`Registry::global`]; the `eco serve` daemon additionally keeps a
/// per-server registry so its request counters are isolated per
/// instance (and exactly assertable under test).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set as it appears in a sample line; labels are
/// sorted by key so equal sets render equal.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every subsystem records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        get: impl FnOnce(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            metrics: BTreeMap::new(),
        });
        let metric = family.metrics.entry(label_key(labels)).or_insert_with(make);
        get(metric)
            .unwrap_or_else(|| panic!("metric {name} already registered as a {}", metric.kind()))
    }

    /// The counter `name{labels}`, registering it on first sight.
    /// Re-registration returns the same handle.
    ///
    /// # Panics
    ///
    /// Panics if `name{labels}` is already registered as another kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge `name{labels}`, registering it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if `name{labels}` is already registered as another kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram `name{labels}` with finite bucket `bounds`,
    /// registering it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if `name{labels}` is already registered as another kind,
    /// or if `bounds` is not strictly ascending.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new(bounds))),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders every family in the Prometheus text exposition format,
    /// deterministically (families by name, label sets sorted).
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = family
                .metrics
                .values()
                .next()
                .map_or("counter", Metric::kind);
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", family.help);
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, metric) in &family.metrics {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let cum = h.cumulative();
                        for (i, bound) in h.bounds.iter().enumerate() {
                            let le = bucket_label(labels, &bound.to_string());
                            let _ = writeln!(out, "{name}_bucket{le} {}", cum[i]);
                        }
                        let le = bucket_label(labels, "+Inf");
                        let _ = writeln!(out, "{name}_bucket{le} {}", cum[h.bounds.len()]);
                        let _ = writeln!(out, "{name}_sum{labels} {}", h.sum());
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// Splices an `le="..."` label into an already-rendered label set.
fn bucket_label(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

// ---------------------------------------------------------------------
// Exposition parsing (for `eco top`, tests, and CI invariants)
// ---------------------------------------------------------------------

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (histogram samples keep their `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in sorted order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

/// A parsed exposition: samples plus the `# TYPE` declarations.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample, in document order.
    pub samples: Vec<Sample>,
    /// `name → kind` from `# TYPE` lines.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// The value of the sample matching `name` and exactly `labels`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| s.value)
    }

    /// The sum of every sample named exactly `name`, across all label
    /// sets (e.g. total requests over all ops). 0.0 when absent.
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Estimates the `q`-quantile (0..=1) of histogram `name` with
    /// the given non-`le` labels, from its cumulative `_bucket`
    /// samples: the upper bound of the first bucket covering the
    /// target rank (the mean for the overflow bucket). `None` when
    /// the histogram is absent or empty.
    pub fn quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        want.sort();
        let bucket_name = format!("{name}_bucket");
        let mut buckets: Vec<(f64, f64)> = Vec::new(); // (le, cumulative)
        for s in self.samples.iter().filter(|s| s.name == bucket_name) {
            let mut le = None;
            let mut rest = Vec::new();
            for (k, v) in &s.labels {
                if k == "le" {
                    le = Some(v.clone());
                } else {
                    rest.push((k.clone(), v.clone()));
                }
            }
            if rest != want {
                continue;
            }
            let bound = match le.as_deref() {
                Some("+Inf") => f64::INFINITY,
                Some(text) => text.parse().ok()?,
                None => continue,
            };
            buckets.push((bound, s.value));
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite-or-inf bounds"));
        let total = buckets.last().map(|&(_, c)| c)?;
        if total <= 0.0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total;
        for &(bound, cum) in &buckets {
            if cum >= target {
                if bound.is_infinite() {
                    // Overflow bucket: fall back to the mean.
                    let sum = self.value(&format!("{name}_sum"), labels)?;
                    return Some(sum / total);
                }
                return Some(bound);
            }
        }
        None
    }
}

/// Parses a Prometheus text exposition (the subset [`Registry::render`]
/// emits: `# HELP`/`# TYPE` comments and `name{labels} value` samples).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let kind = it
                .next()
                .ok_or(format!("line {}: TYPE without kind", no + 1))?;
            out.types.insert(name.to_string(), kind.trim().to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        out.samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}", no + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value in {line:?}"))?;
    let value: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("bad value in {line:?}"))?;
    let (name, labels) = match name_labels.find('{') {
        Some(open) => {
            let body = name_labels[open..]
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or_else(|| format!("unclosed labels in {line:?}"))?;
            (&name_labels[..open], parse_labels(body)?)
        }
        None => (name_labels, Vec::new()),
    };
    let mut labels = labels;
    labels.sort();
    Ok(Sample {
        name: name.trim().to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {body:?}"))?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value in {body:?}"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| format!("dangling escape in {body:?}"))?;
                    value.push(esc);
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {body:?}"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_render_deterministically() {
        let r = Registry::new();
        let ping = r.counter(
            "eco_serve_requests_total",
            "Requests by op.",
            &[("op", "ping")],
        );
        let tune = r.counter(
            "eco_serve_requests_total",
            "Requests by op.",
            &[("op", "tune")],
        );
        let inflight = r.gauge("eco_serve_inflight", "In-flight requests.", &[]);
        let lat = r.histogram("eco_lat_us", "Latency.", &[], &[10, 100]);
        ping.inc();
        ping.inc();
        tune.add(3);
        inflight.set(2);
        lat.observe(5);
        lat.observe(50);
        lat.observe(5_000);
        let text = r.render();
        assert_eq!(text, r.render(), "same state, same bytes");
        let expected = "\
# HELP eco_lat_us Latency.
# TYPE eco_lat_us histogram
eco_lat_us_bucket{le=\"10\"} 1
eco_lat_us_bucket{le=\"100\"} 2
eco_lat_us_bucket{le=\"+Inf\"} 3
eco_lat_us_sum 5055
eco_lat_us_count 3
# HELP eco_serve_inflight In-flight requests.
# TYPE eco_serve_inflight gauge
eco_serve_inflight 2
# HELP eco_serve_requests_total Requests by op.
# TYPE eco_serve_requests_total counter
eco_serve_requests_total{op=\"ping\"} 2
eco_serve_requests_total{op=\"tune\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn reregistration_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("c_total", "h", &[("k", "v")]);
        let b = r.counter("c_total", "h", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
        // Label order does not matter.
        let c = r.counter("multi_total", "h", &[("a", "1"), ("b", "2")]);
        let d = r.counter("multi_total", "h", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "h", &[]);
        let _ = r.gauge("x_total", "h", &[]);
    }

    #[test]
    fn exposition_round_trips_and_queries() {
        let r = Registry::new();
        r.counter("req_total", "Requests.", &[("op", "a b\"c")])
            .add(7);
        let h = r.histogram("lat_us", "", &[("op", "x")], &[100, 1000]);
        for v in [50, 60, 70, 500, 5000] {
            h.observe(v);
        }
        let parsed = parse_exposition(&r.render()).expect("parses");
        assert_eq!(parsed.value("req_total", &[("op", "a b\"c")]), Some(7.0));
        assert_eq!(parsed.total("req_total"), 7.0);
        assert_eq!(
            parsed.types.get("lat_us").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(parsed.value("lat_us_count", &[("op", "x")]), Some(5.0));
        assert_eq!(parsed.value("lat_us_sum", &[("op", "x")]), Some(5680.0));
        // p50 of {50,60,70,500,5000} lands in the first bucket (≤100).
        assert_eq!(parsed.quantile("lat_us", &[("op", "x")], 0.5), Some(100.0));
        assert_eq!(parsed.quantile("lat_us", &[("op", "x")], 0.8), Some(1000.0));
        // p100 hits the overflow bucket → mean estimate.
        assert_eq!(
            parsed.quantile("lat_us", &[("op", "x")], 1.0),
            Some(5680.0 / 5.0)
        );
        assert_eq!(parsed.quantile("lat_us", &[("op", "y")], 0.5), None);
    }

    #[test]
    fn malformed_expositions_are_rejected_with_line_numbers() {
        // A scrape cut off mid-histogram (connection dropped): the
        // truncated bucket line has no value, and the error names it.
        let truncated = "\
# TYPE lat_us histogram
lat_us_bucket{le=\"10\"} 1
lat_us_bucket{le=\"+In";
        let err = parse_exposition(truncated).expect_err("truncated");
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("no value"), "{err}");

        // Non-numeric values fail, naming the offending line.
        let err = parse_exposition("req_total 7\nbad_total x\n").expect_err("non-numeric");
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("bad value"), "{err}");
        let err = parse_exposition("req_total{op=\"a\"} NaN-ish").expect_err("non-numeric");
        assert!(err.contains("bad value"), "{err}");

        // Broken label syntax: unclosed braces, unquoted and
        // unterminated values, all rejected rather than misparsed.
        for bad in [
            "req_total{op=\"a\" 1",
            "req_total{op=a} 1",
            "req_total{op=\"a} 1",
            "req_total{op} 1",
        ] {
            assert!(parse_exposition(bad).is_err(), "accepted {bad:?}");
        }

        // A TYPE comment missing its kind is malformed; other comments
        // are skipped.
        assert!(parse_exposition("# TYPE lonely").is_err());
        assert!(parse_exposition("# HELP x h\n")
            .expect("comments ok")
            .samples
            .is_empty());
    }

    #[test]
    fn duplicate_sample_names_accumulate_in_document_order() {
        // Prometheus forbids duplicate series, but a concatenation of
        // two registries (the daemon's `metrics` op appends the
        // process-wide registry to the per-server one) can repeat a
        // name. Pin the lenient semantics the dashboard relies on:
        // both samples survive, `value` returns the first exact label
        // match, `total` sums across every occurrence.
        let text = "\
req_total{op=\"a\"} 1
req_total{op=\"a\"} 2
req_total{op=\"b\"} 4
";
        let exp = parse_exposition(text).expect("parses");
        assert_eq!(exp.samples.len(), 3);
        assert_eq!(exp.value("req_total", &[("op", "a")]), Some(1.0));
        assert_eq!(exp.total("req_total"), 7.0);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = Registry::new();
        let c = r.counter("n_total", "h", &[]);
        let h = r.histogram("hh", "h", &[], &[10]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 20);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(std::ptr::eq(a, b));
    }
}
