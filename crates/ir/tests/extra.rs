//! Supplementary IR tests: printer precedence, bound edge cases,
//! traversal helpers.

use eco_ir::{pretty, AffineExpr, ArrayRef, Bound, Cond, Loop, Program, ScalarExpr, Stmt, VarId};

fn v(i: u32) -> VarId {
    VarId(i)
}

#[test]
fn max_bound_evaluates() {
    let b = Bound::Max(vec![AffineExpr::constant(3), AffineExpr::var(v(0))]);
    assert_eq!(b.eval(&|_| 1), 3);
    assert_eq!(b.eval(&|_| 9), 9);
    let s = b.subst(v(0), &AffineExpr::constant(5));
    assert_eq!(s.eval(&|_| 0), 5);
    assert_eq!(b.shifted(2).eval(&|_| 1), 5);
}

#[test]
fn bound_alternatives_cover_all_shapes() {
    let a = Bound::Affine(AffineExpr::constant(1));
    assert_eq!(a.alternatives().len(), 1);
    let m = Bound::Min(vec![AffineExpr::constant(1), AffineExpr::constant(2)]);
    assert_eq!(m.alternatives().len(), 2);
    assert!(a.as_affine().is_some());
    assert!(m.as_affine().is_none());
}

#[test]
fn printer_parenthesizes_by_precedence() {
    let mut p = Program::new("prec");
    let a = p.add_array("A", vec![AffineExpr::constant(4)]);
    let e0 = || ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::constant(0)]));
    // (x + x) * x needs parens; x + x*x does not.
    p.body.push(Stmt::Store {
        target: ArrayRef::new(a, vec![AffineExpr::constant(1)]),
        value: ScalarExpr::mul(ScalarExpr::add(e0(), e0()), e0()),
    });
    p.body.push(Stmt::Store {
        target: ArrayRef::new(a, vec![AffineExpr::constant(2)]),
        value: ScalarExpr::add(e0(), ScalarExpr::mul(e0(), e0())),
    });
    // x - (x - x) needs parens on the right.
    p.body.push(Stmt::Store {
        target: ArrayRef::new(a, vec![AffineExpr::constant(3)]),
        value: ScalarExpr::sub(e0(), ScalarExpr::sub(e0(), e0())),
    });
    let s = p.to_string();
    assert!(s.contains("(A[0] + A[0])*A[0]"), "{s}");
    assert!(s.contains("A[2] = A[0] + A[0]*A[0]"), "{s}");
    assert!(s.contains("A[3] = A[0] - (A[0] - A[0])"), "{s}");
}

#[test]
fn affine_display_signs() {
    let mut p = Program::new("t");
    let n = p.add_param("N");
    let i = p.add_loop_var("I");
    let e = AffineExpr::var(i) * -2 + AffineExpr::var(n) - AffineExpr::constant(3);
    let s = pretty::affine_to_string(&p, &e);
    assert_eq!(s, "N - 2*I - 3");
    let neg = AffineExpr::var(i) * -1;
    assert_eq!(pretty::affine_to_string(&p, &neg), "-I");
    assert_eq!(pretty::affine_to_string(&p, &AffineExpr::constant(0)), "0");
}

#[test]
fn for_each_stmt_visits_nested_structure() {
    let mut p = Program::new("t");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::constant(8)]);
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: 7.into(),
        step: 1,
        body: vec![Stmt::If {
            cond: Cond::le(AffineExpr::var(i), AffineExpr::constant(3)),
            then: vec![Stmt::Store {
                target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Const(0.0),
            }],
        }],
    }));
    let mut kinds = Vec::new();
    p.for_each_stmt(&mut |s| {
        kinds.push(match s {
            Stmt::For(_) => "for",
            Stmt::If { .. } => "if",
            Stmt::Store { .. } => "store",
            Stmt::SetTemp { .. } => "settemp",
            Stmt::Prefetch { .. } => "prefetch",
        });
    });
    assert_eq!(kinds, vec!["for", "if", "store"]);
}

#[test]
fn cond_display_is_nonempty() {
    let c = Cond::le(AffineExpr::constant(1), AffineExpr::constant(2));
    assert!(!c.to_string().is_empty());
}

#[test]
fn validate_rejects_out_of_range_temp() {
    let mut p = Program::new("t");
    p.body.push(Stmt::SetTemp {
        temp: eco_ir::TempId(0),
        value: ScalarExpr::Const(1.0),
    });
    assert!(p.validate().is_err());
}
