//! The loop-nest program IR.
//!
//! A [`Program`] declares integer variables (loop indices and symbolic
//! parameters such as the problem size `N`), column-major `f64` arrays,
//! scalar temporaries (the registers produced by scalar replacement), and
//! a body of statements: counted loops, guarded blocks, array stores,
//! temporary assignments, and software prefetches.
//!
//! The IR is deliberately close to the pseudo-Fortran of the paper's
//! Figures 1 and 2; the pretty-printer in [`crate::pretty`] renders it in
//! that style.

use crate::expr::{AffineExpr, Bound, Cond, VarId};

/// Identifier of an array; indexes [`Program::arrays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Index into the program's array table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a scalar temporary; indexes [`Program::temps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TempId(pub u32);

impl TempId {
    /// Index into the program's temporary table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of integer variable a [`VarId`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A loop index, bound by some `For` in the body.
    Loop,
    /// A symbolic parameter (problem size), bound by the execution
    /// environment.
    Param,
}

/// Declaration of an integer variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarDecl {
    /// Source-level name (`"I"`, `"N"`, ...).
    pub name: String,
    /// Loop index or parameter.
    pub kind: VarKind,
}

/// What kind of storage an array is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Original program data.
    Data,
    /// A compiler-introduced contiguous copy buffer (the `P`/`Q` arrays
    /// of the paper's Figure 1).
    CopyBuffer,
}

/// Declaration of a column-major `f64` array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Extent of each dimension, leftmost dimension contiguous
    /// (Fortran layout). May reference parameters.
    pub dims: Vec<AffineExpr>,
    /// Data or copy buffer.
    pub kind: ArrayKind,
}

/// A subscripted reference `A[e1, e2, ...]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The array referenced.
    pub array: ArrayId,
    /// One affine subscript per dimension, 0-based.
    pub idx: Vec<AffineExpr>,
}

impl ArrayRef {
    /// Builds a reference from subscript expressions.
    pub fn new(array: ArrayId, idx: Vec<AffineExpr>) -> Self {
        ArrayRef { array, idx }
    }

    /// Substitutes `replacement` for `v` in every subscript.
    pub fn subst(&self, v: VarId, replacement: &AffineExpr) -> ArrayRef {
        ArrayRef {
            array: self.array,
            idx: self.idx.iter().map(|e| e.subst(v, replacement)).collect(),
        }
    }

    /// True if `v` appears in any subscript.
    pub fn uses(&self, v: VarId) -> bool {
        self.idx.iter().any(|e| e.uses(v))
    }
}

/// A floating-point value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A literal constant.
    Const(f64),
    /// A load from an array element.
    Load(ArrayRef),
    /// A read of a scalar temporary (register).
    Temp(TempId),
    /// Addition (1 flop).
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Subtraction (1 flop).
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication (1 flop).
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// `lhs + rhs`.
    ///
    /// A static constructor by design (builds a tree node; `self` would
    /// be misleading for a non-arithmetic type), hence the lint allow.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Add(Box::new(lhs), Box::new(rhs))
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Sub(Box::new(lhs), Box::new(rhs))
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Mul(Box::new(lhs), Box::new(rhs))
    }

    /// Number of floating-point operations in the expression.
    pub fn flops(&self) -> u64 {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Load(_) | ScalarExpr::Temp(_) => 0,
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                1 + a.flops() + b.flops()
            }
        }
    }

    /// Visits every array load in evaluation order.
    pub fn for_each_load(&self, f: &mut impl FnMut(&ArrayRef)) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Temp(_) => {}
            ScalarExpr::Load(r) => f(r),
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                a.for_each_load(f);
                b.for_each_load(f);
            }
        }
    }

    /// Rewrites every array load with `f`; `None` keeps the load.
    pub fn map_loads(&mut self, f: &mut impl FnMut(&ArrayRef) -> Option<ScalarExpr>) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Temp(_) => {}
            ScalarExpr::Load(r) => {
                if let Some(repl) = f(r) {
                    *self = repl;
                }
            }
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                a.map_loads(f);
                b.map_loads(f);
            }
        }
    }

    /// Substitutes `replacement` for `v` in every subscript expression.
    pub fn subst_var(&mut self, v: VarId, replacement: &AffineExpr) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Temp(_) => {}
            ScalarExpr::Load(r) => *r = r.subst(v, replacement),
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                a.subst_var(v, replacement);
                b.subst_var(v, replacement);
            }
        }
    }
}

/// A counted loop `DO var = lo, hi, step` (inclusive bounds, positive
/// step, Fortran-style).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// The loop index variable.
    pub var: VarId,
    /// Lower bound.
    pub lo: Bound,
    /// Upper bound (inclusive).
    pub hi: Bound,
    /// Step; must be positive.
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A counted loop.
    For(Loop),
    /// A guarded block `IF cond THEN body` (produced by unroll cleanup).
    If {
        /// The guard condition.
        cond: Cond,
        /// Statements executed when the guard holds.
        then: Vec<Stmt>,
    },
    /// An array store `target = value`.
    Store {
        /// The element stored to.
        target: ArrayRef,
        /// The value stored.
        value: ScalarExpr,
    },
    /// A register assignment `temp = value`.
    SetTemp {
        /// The temporary written.
        temp: TempId,
        /// The value assigned.
        value: ScalarExpr,
    },
    /// A software prefetch of the line containing `target`.
    Prefetch {
        /// The element whose line is prefetched. Out-of-bounds prefetches
        /// are legal and ignored at execution time.
        target: ArrayRef,
    },
}

impl Stmt {
    /// Substitutes `replacement` for `v` everywhere in the statement
    /// (bounds, guards, subscripts). Loops that *bind* `v` shadow it, so
    /// their bodies are left alone (bounds are still rewritten).
    pub fn subst_var(&mut self, v: VarId, replacement: &AffineExpr) {
        match self {
            Stmt::For(l) => {
                l.lo = l.lo.subst(v, replacement);
                l.hi = l.hi.subst(v, replacement);
                if l.var != v {
                    for s in &mut l.body {
                        s.subst_var(v, replacement);
                    }
                }
            }
            Stmt::If { cond, then } => {
                *cond = cond.subst(v, replacement);
                for s in then {
                    s.subst_var(v, replacement);
                }
            }
            Stmt::Store { target, value } => {
                *target = target.subst(v, replacement);
                value.subst_var(v, replacement);
            }
            Stmt::SetTemp { value, .. } => value.subst_var(v, replacement),
            Stmt::Prefetch { target } => *target = target.subst(v, replacement),
        }
    }

    /// Visits every array reference in the statement tree.
    /// The flag passed to `f` is `true` for writes.
    pub fn for_each_ref(&self, f: &mut impl FnMut(&ArrayRef, bool)) {
        match self {
            Stmt::For(l) => {
                for s in &l.body {
                    s.for_each_ref(f);
                }
            }
            Stmt::If { then, .. } => {
                for s in then {
                    s.for_each_ref(f);
                }
            }
            Stmt::Store { target, value } => {
                value.for_each_load(&mut |r| f(r, false));
                f(target, true);
            }
            Stmt::SetTemp { value, .. } => value.for_each_load(&mut |r| f(r, false)),
            Stmt::Prefetch { target } => f(target, false),
        }
    }

    /// Visits every statement in the tree, depth-first, including `self`.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For(l) => {
                for s in &l.body {
                    s.for_each_stmt(f);
                }
            }
            Stmt::If { then, .. } => {
                for s in then {
                    s.for_each_stmt(f);
                }
            }
            _ => {}
        }
    }
}

/// A whole program: declarations plus a statement body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name (used by the pretty-printer).
    pub name: String,
    /// Integer variable declarations, indexed by [`VarId`].
    pub vars: Vec<VarDecl>,
    /// Array declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Scalar temporary names, indexed by [`TempId`].
    pub temps: Vec<String>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// One level of a perfect loop nest, as returned by
/// [`Program::perfect_nest`].
#[derive(Debug, Clone, PartialEq)]
pub struct NestLoop {
    /// Loop variable.
    pub var: VarId,
    /// Lower bound.
    pub lo: Bound,
    /// Upper bound (inclusive).
    pub hi: Bound,
    /// Step.
    pub step: i64,
}

impl Program {
    /// An empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a symbolic parameter and returns its id.
    pub fn add_param(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(VarDecl {
            name: name.into(),
            kind: VarKind::Param,
        });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declares a loop variable and returns its id.
    pub fn add_loop_var(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(VarDecl {
            name: name.into(),
            kind: VarKind::Loop,
        });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declares a loop variable with a name not already in use
    /// (`hint`, `hint2`, `hint3`, ...).
    pub fn fresh_loop_var(&mut self, hint: &str) -> VarId {
        let mut name = hint.to_string();
        let mut n = 1;
        while self.vars.iter().any(|v| v.name == name) {
            n += 1;
            name = format!("{hint}{n}");
        }
        self.add_loop_var(name)
    }

    /// Declares a data array and returns its id.
    pub fn add_array(&mut self, name: impl Into<String>, dims: Vec<AffineExpr>) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims,
            kind: ArrayKind::Data,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Declares a compiler-introduced copy buffer and returns its id.
    pub fn add_copy_buffer(&mut self, name: impl Into<String>, dims: Vec<AffineExpr>) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims,
            kind: ArrayKind::CopyBuffer,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Declares a scalar temporary with a unique name based on `hint`.
    pub fn add_temp(&mut self, hint: &str) -> TempId {
        let mut name = hint.to_string();
        let mut n = 1;
        while self.temps.iter().any(|t| t == &name) {
            n += 1;
            name = format!("{hint}_{n}");
        }
        self.temps.push(name);
        TempId(self.temps.len() as u32 - 1)
    }

    /// The declaration of variable `v`.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// The declaration of array `a`.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.index()]
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// All parameter ids, in declaration order.
    pub fn params(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == VarKind::Param)
            .map(|(i, _)| VarId(i as u32))
    }

    /// Visits every statement in the program, depth-first.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.body {
            s.for_each_stmt(f);
        }
    }

    /// Visits every array reference in the program.
    /// The flag passed to `f` is `true` for writes.
    pub fn for_each_ref(&self, f: &mut impl FnMut(&ArrayRef, bool)) {
        for s in &self.body {
            s.for_each_ref(f);
        }
    }

    /// If the whole body is one perfect loop nest (each loop's body is a
    /// single loop, down to an innermost loop whose body contains no
    /// loops), returns the nest levels outermost-first and the innermost
    /// body.
    pub fn perfect_nest(&self) -> Option<(Vec<NestLoop>, &[Stmt])> {
        let mut loops = Vec::new();
        let mut stmts: &[Stmt] = &self.body;
        loop {
            match stmts {
                [Stmt::For(l)] => {
                    loops.push(NestLoop {
                        var: l.var,
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                    });
                    if l.body.iter().any(|s| matches!(s, Stmt::For(_))) {
                        stmts = &l.body;
                    } else {
                        return Some((loops, &l.body));
                    }
                }
                _ => return None,
            }
        }
    }

    /// Finds the (unique) loop with index variable `v`, if any.
    pub fn find_loop(&self, v: VarId) -> Option<&Loop> {
        fn search(stmts: &[Stmt], v: VarId) -> Option<&Loop> {
            for s in stmts {
                match s {
                    Stmt::For(l) => {
                        if l.var == v {
                            return Some(l);
                        }
                        if let Some(found) = search(&l.body, v) {
                            return Some(found);
                        }
                    }
                    Stmt::If { then, .. } => {
                        if let Some(found) = search(then, v) {
                            return Some(found);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        search(&self.body, v)
    }

    /// Checks structural well-formedness: all ids in range, subscript
    /// ranks match declarations, loop steps positive, each loop variable
    /// is declared as [`VarKind::Loop`] and binds at most one loop.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_loop_vars = Vec::new();
        let mut check_ref = |r: &ArrayRef| -> Result<(), String> {
            let decl = self
                .arrays
                .get(r.array.index())
                .ok_or_else(|| format!("array id {:?} out of range", r.array))?;
            if r.idx.len() != decl.dims.len() {
                return Err(format!(
                    "reference to {} has {} subscripts, array has rank {}",
                    decl.name,
                    r.idx.len(),
                    decl.dims.len()
                ));
            }
            for e in &r.idx {
                for v in e.vars() {
                    if v.index() >= self.vars.len() {
                        return Err(format!("variable id {v:?} out of range"));
                    }
                }
            }
            Ok(())
        };
        fn walk(
            p: &Program,
            stmts: &[Stmt],
            seen: &mut Vec<VarId>,
            check_ref: &mut impl FnMut(&ArrayRef) -> Result<(), String>,
        ) -> Result<(), String> {
            for s in stmts {
                match s {
                    Stmt::For(l) => {
                        if l.step <= 0 {
                            return Err(format!(
                                "loop {} has non-positive step {}",
                                p.var(l.var).name,
                                l.step
                            ));
                        }
                        if p.var(l.var).kind != VarKind::Loop {
                            return Err(format!(
                                "loop binds {} which is not a loop variable",
                                p.var(l.var).name
                            ));
                        }
                        if seen.contains(&l.var) {
                            return Err(format!("loop variable {} bound twice", p.var(l.var).name));
                        }
                        seen.push(l.var);
                        walk(p, &l.body, seen, check_ref)?;
                    }
                    Stmt::If { then, .. } => walk(p, then, seen, check_ref)?,
                    Stmt::Store { target, value } => {
                        check_ref(target)?;
                        let mut err = None;
                        value.for_each_load(&mut |r| {
                            if err.is_none() {
                                err = check_ref(r).err();
                            }
                        });
                        if let Some(e) = err {
                            return Err(e);
                        }
                    }
                    Stmt::SetTemp { temp, value } => {
                        if temp.index() >= p.temps.len() {
                            return Err(format!("temp id {temp:?} out of range"));
                        }
                        let mut err = None;
                        value.for_each_load(&mut |r| {
                            if err.is_none() {
                                err = check_ref(r).err();
                            }
                        });
                        if let Some(e) = err {
                            return Err(e);
                        }
                    }
                    Stmt::Prefetch { target } => check_ref(target)?,
                }
            }
            Ok(())
        }
        walk(self, &self.body, &mut seen_loop_vars, &mut check_ref)
    }
}
