//! Loop-nest intermediate representation for the ECO reproduction.
//!
//! This crate plays the role SUIF played in the paper: an explicit,
//! transformable representation of dense-matrix loop nests. It provides:
//!
//! * [`AffineExpr`] / [`Bound`] — affine subscripts and (min/max) loop
//!   bounds;
//! * [`Program`] — declarations plus a statement tree of counted loops
//!   ([`Loop`]), guards, array stores, register assignments and software
//!   prefetches;
//! * a Fortran-flavoured pretty printer ([`pretty`]) mirroring the
//!   paper's Figures 1–2.
//!
//! Programs are built through the builder methods on [`Program`];
//! `eco-kernels` constructs Matrix Multiply and Jacobi, `eco-transform`
//! rewrites them, `eco-exec` interprets them (both numerically, for
//! correctness checking, and as an address-trace generator feeding the
//! cache simulator).
//!
//! # Examples
//!
//! Build `DO I = 0, N-1: A[I] = A[I] + 1` and print it:
//!
//! ```
//! use eco_ir::{AffineExpr, Program, Stmt, Loop, ArrayRef, ScalarExpr};
//!
//! let mut p = Program::new("incr");
//! let n = p.add_param("N");
//! let i = p.add_loop_var("I");
//! let a = p.add_array("A", vec![AffineExpr::var(n)]);
//! let elem = ArrayRef::new(a, vec![AffineExpr::var(i)]);
//! p.body.push(Stmt::For(Loop {
//!     var: i,
//!     lo: 0.into(),
//!     hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
//!     step: 1,
//!     body: vec![Stmt::Store {
//!         target: elem.clone(),
//!         value: ScalarExpr::add(ScalarExpr::Load(elem), ScalarExpr::Const(1.0)),
//!     }],
//! }));
//! assert!(p.validate().is_ok());
//! assert!(p.to_string().contains("DO I = 0, N - 1"));
//! ```

mod expr;
pub mod pretty;
mod program;

pub use expr::{AffineExpr, Bound, Cond, VarId};
pub use program::{
    ArrayDecl, ArrayId, ArrayKind, ArrayRef, Loop, NestLoop, Program, ScalarExpr, Stmt, TempId,
    VarDecl, VarKind,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the naive matrix-multiply nest of Figure 1(a) for tests.
    fn mm() -> Program {
        let mut p = Program::new("mm");
        let n = p.add_param("N");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let b = p.add_array("B", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let c = p.add_array("C", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let c_ref = ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let hi = AffineExpr::var(n) - AffineExpr::constant(1);
        let body = Stmt::Store {
            target: c_ref.clone(),
            value: ScalarExpr::add(
                ScalarExpr::Load(c_ref),
                ScalarExpr::mul(
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(i), AffineExpr::var(k)],
                    )),
                    ScalarExpr::Load(ArrayRef::new(
                        b,
                        vec![AffineExpr::var(k), AffineExpr::var(j)],
                    )),
                ),
            ),
        };
        let mk = |var, inner: Vec<Stmt>| {
            Stmt::For(Loop {
                var,
                lo: 0.into(),
                hi: hi.clone().into(),
                step: 1,
                body: inner,
            })
        };
        let nest = mk(k, vec![mk(j, vec![mk(i, vec![body])])]);
        p.body.push(nest);
        p
    }

    #[test]
    fn mm_validates() {
        assert!(mm().validate().is_ok());
    }

    #[test]
    fn mm_is_perfect_nest() {
        let p = mm();
        let (loops, body) = p.perfect_nest().expect("perfect");
        assert_eq!(loops.len(), 3);
        assert_eq!(p.var(loops[0].var).name, "K");
        assert_eq!(p.var(loops[2].var).name, "I");
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn mm_prints_like_figure_1a() {
        let s = mm().to_string();
        assert!(s.contains("DO K = 0, N - 1"), "{s}");
        assert!(s.contains("C[I,J] = C[I,J] + A[I,K]*B[K,J]"), "{s}");
    }

    #[test]
    fn find_loop_by_var() {
        let p = mm();
        let j = p.var_by_name("J").expect("J exists");
        let l = p.find_loop(j).expect("loop found");
        assert_eq!(l.var, j);
        assert_eq!(l.body.len(), 1);
        let n = p.var_by_name("N").expect("N exists");
        assert!(p.find_loop(n).is_none());
    }

    #[test]
    fn ref_counting() {
        let p = mm();
        let mut reads = 0;
        let mut writes = 0;
        p.for_each_ref(&mut |_, w| {
            if w {
                writes += 1;
            } else {
                reads += 1;
            }
        });
        assert_eq!(reads, 3);
        assert_eq!(writes, 1);
    }

    #[test]
    fn flop_count_of_mm_body() {
        let p = mm();
        let (_, body) = p.perfect_nest().expect("perfect");
        match &body[0] {
            Stmt::Store { value, .. } => assert_eq!(value.flops(), 2),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_rank_mismatch() {
        let mut p = Program::new("bad");
        let n = p.add_param("N");
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        p.body.push(Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::constant(0)]),
            value: ScalarExpr::Const(0.0),
        });
        let err = p.validate().expect_err("should fail");
        assert!(err.contains("rank"), "{err}");
    }

    #[test]
    fn validate_rejects_rebound_loop_var() {
        let mut p = Program::new("bad");
        let i = p.add_loop_var("I");
        let inner = Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 1.into(),
            step: 1,
            body: vec![],
        });
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 1.into(),
            step: 1,
            body: vec![inner],
        }));
        let err = p.validate().expect_err("should fail");
        assert!(err.contains("bound twice"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_step() {
        let mut p = Program::new("bad");
        let i = p.add_loop_var("I");
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 1.into(),
            step: 0,
            body: vec![],
        }));
        assert!(p.validate().is_err());
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut p = Program::new("t");
        p.add_loop_var("I");
        let v2 = p.fresh_loop_var("I");
        assert_eq!(p.var(v2).name, "I2");
        p.add_temp("r");
        let t2 = p.add_temp("r");
        assert_eq!(p.temps[t2.index()], "r_2");
    }

    #[test]
    fn subst_var_shadows_rebinding_loop() {
        // Substituting for a var does not descend into a loop that
        // rebinds it.
        let mut p = Program::new("t");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(10)]);
        let mut outer = Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: AffineExpr::var(i).into(), // bound mentions i (weird but legal for the test)
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Const(0.0),
            }],
        });
        outer.subst_var(i, &AffineExpr::constant(7));
        match &outer {
            Stmt::For(l) => {
                assert_eq!(l.hi, Bound::constant(7)); // bound rewritten
                match &l.body[0] {
                    Stmt::Store { target, .. } => {
                        assert!(target.uses(i), "body shadowed, ref untouched")
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pretty_prints_min_bound_and_prefetch() {
        let mut p = Program::new("t");
        let n = p.add_param("N");
        let jj = p.add_loop_var("JJ");
        let j = p.add_loop_var("J");
        let a = p.add_array("A", vec![AffineExpr::var(n)]);
        p.body.push(Stmt::For(Loop {
            var: jj,
            lo: 0.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 16,
            body: vec![Stmt::For(Loop {
                var: j,
                lo: AffineExpr::var(jj).into(),
                hi: Bound::min_of(vec![
                    AffineExpr::var(jj) + AffineExpr::constant(15),
                    AffineExpr::var(n) - AffineExpr::constant(1),
                ]),
                step: 1,
                body: vec![Stmt::Prefetch {
                    target: ArrayRef::new(a, vec![AffineExpr::var(j) + AffineExpr::constant(8)]),
                }],
            })],
        }));
        let s = p.to_string();
        assert!(s.contains("DO JJ = 0, N - 1, 16"), "{s}");
        assert!(s.contains("min(JJ + 15, N - 1)"), "{s}");
        assert!(s.contains("PREFETCH A[J + 8]"), "{s}");
    }
}
