//! Affine integer expressions over loop variables and symbolic parameters.
//!
//! Every subscript, loop bound and prefetch target in the IR is an
//! [`AffineExpr`]: an integer constant plus a sum of `coefficient * var`
//! terms. Loop upper bounds produced by tiling additionally need
//! `min(...)` forms, which [`Bound`] provides.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Identifier of an integer variable (loop index or symbolic parameter).
///
/// `VarId`s index into [`crate::Program::vars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The index of this variable in its program's variable table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An affine integer expression: `c0 + sum(ci * vi)`.
///
/// Terms are kept sorted by variable and free of zero coefficients, so
/// structural equality coincides with mathematical equality.
///
/// # Examples
///
/// ```
/// use eco_ir::{AffineExpr, VarId};
/// let i = VarId(0);
/// let e = AffineExpr::var(i) * 2 + AffineExpr::constant(3);
/// assert_eq!(e.coeff(i), 2);
/// assert_eq!(e.eval(&|_| 5), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AffineExpr {
    constant: i64,
    /// Sorted `(var, coeff)` pairs with nonzero coefficients.
    terms: Vec<(VarId, i64)>,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            constant: c,
            terms: Vec::new(),
        }
    }

    /// The expression `v`.
    pub fn var(v: VarId) -> Self {
        AffineExpr {
            constant: 0,
            terms: vec![(v, 1)],
        }
    }

    /// Builds `c0 + sum(ci * vi)` from parts.
    pub fn new(constant: i64, terms: impl IntoIterator<Item = (VarId, i64)>) -> Self {
        let mut map: BTreeMap<VarId, i64> = BTreeMap::new();
        for (v, c) in terms {
            *map.entry(v).or_insert(0) += c;
        }
        AffineExpr {
            constant,
            terms: map.into_iter().filter(|&(_, c)| c != 0).collect(),
        }
    }

    /// The constant part `c0`.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms
            .binary_search_by_key(&v, |&(w, _)| w)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// The `(var, coeff)` terms, sorted by variable.
    pub fn terms(&self) -> &[(VarId, i64)] {
        &self.terms
    }

    /// True if the expression has no variable terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `Some(c)` if the expression is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.constant)
    }

    /// True if `v` appears with a nonzero coefficient.
    pub fn uses(&self, v: VarId) -> bool {
        self.coeff(v) != 0
    }

    /// The set of variables appearing in the expression.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// Evaluates under an environment mapping variables to values.
    pub fn eval(&self, env: &impl Fn(VarId) -> i64) -> i64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * env(v)).sum::<i64>()
    }

    /// Evaluates under a dense environment indexed by [`VarId::index`].
    /// Same result as [`AffineExpr::eval`] but without closure dispatch
    /// — this is the form the compiled execution plan uses on its hot
    /// paths.
    #[inline]
    pub fn eval_slice(&self, env: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * env[v.index()];
        }
        acc
    }

    /// Substitutes `replacement` for `v`, i.e. computes
    /// `self[v := replacement]`.
    ///
    /// ```
    /// use eco_ir::{AffineExpr, VarId};
    /// let (i, ii) = (VarId(0), VarId(1));
    /// // i + 1 with i := ii + 4  ==>  ii + 5
    /// let e = AffineExpr::var(i) + AffineExpr::constant(1);
    /// let r = e.subst(i, &(AffineExpr::var(ii) + AffineExpr::constant(4)));
    /// assert_eq!(r, AffineExpr::var(ii) + AffineExpr::constant(5));
    /// ```
    pub fn subst(&self, v: VarId, replacement: &AffineExpr) -> AffineExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = AffineExpr {
            constant: self.constant,
            terms: self
                .terms
                .iter()
                .copied()
                .filter(|&(w, _)| w != v)
                .collect(),
        };
        out = out + replacement.clone() * c;
        out
    }

    /// Adds `delta` to the constant part.
    pub fn shifted(&self, delta: i64) -> AffineExpr {
        let mut e = self.clone();
        e.constant += delta;
        e
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: AffineExpr) -> AffineExpr {
        let mut map: BTreeMap<VarId, i64> = self.terms.into_iter().collect();
        for (v, c) in rhs.terms {
            *map.entry(v).or_insert(0) += c;
        }
        AffineExpr {
            constant: self.constant + rhs.constant,
            terms: map.into_iter().filter(|&(_, c)| c != 0).collect(),
        }
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(self) -> AffineExpr {
        self * -1
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(self, k: i64) -> AffineExpr {
        if k == 0 {
            return AffineExpr::constant(0);
        }
        AffineExpr {
            constant: self.constant * k,
            terms: self.terms.into_iter().map(|(v, c)| (v, c * k)).collect(),
        }
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::constant(c)
    }
}

impl From<VarId> for AffineExpr {
    fn from(v: VarId) -> Self {
        AffineExpr::var(v)
    }
}

/// A loop bound: a single affine expression, or the min/max of several
/// (tiled loops have `min(JJ + TJ - 1, N - 1)` upper bounds).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Bound {
    /// A plain affine bound.
    Affine(AffineExpr),
    /// `min` of the alternatives (used for upper bounds of tile tails).
    Min(Vec<AffineExpr>),
    /// `max` of the alternatives (used for lower bounds, if ever needed).
    Max(Vec<AffineExpr>),
}

impl Bound {
    /// A constant bound.
    pub fn constant(c: i64) -> Self {
        Bound::Affine(AffineExpr::constant(c))
    }

    /// A single-variable bound.
    pub fn var(v: VarId) -> Self {
        Bound::Affine(AffineExpr::var(v))
    }

    /// `min` of the given expressions; collapses to `Affine` for one.
    /// Duplicates are dropped; insertion order is otherwise preserved.
    pub fn min_of(exprs: Vec<AffineExpr>) -> Self {
        let mut seen: Vec<AffineExpr> = Vec::new();
        for e in exprs {
            if !seen.contains(&e) {
                seen.push(e);
            }
        }
        let mut exprs = seen;
        if exprs.len() == 1 {
            Bound::Affine(exprs.pop().expect("one element"))
        } else {
            Bound::Min(exprs)
        }
    }

    /// Evaluates the bound under `env`.
    ///
    /// # Panics
    ///
    /// Panics if a `Min`/`Max` bound has no alternatives.
    pub fn eval(&self, env: &impl Fn(VarId) -> i64) -> i64 {
        match self {
            Bound::Affine(e) => e.eval(env),
            Bound::Min(es) => es.iter().map(|e| e.eval(env)).min().expect("nonempty min"),
            Bound::Max(es) => es.iter().map(|e| e.eval(env)).max().expect("nonempty max"),
        }
    }

    /// Evaluates the bound under a dense environment indexed by
    /// [`VarId::index`] (see [`AffineExpr::eval_slice`]).
    ///
    /// # Panics
    ///
    /// Panics if a `Min`/`Max` bound has no alternatives.
    #[inline]
    pub fn eval_slice(&self, env: &[i64]) -> i64 {
        match self {
            Bound::Affine(e) => e.eval_slice(env),
            Bound::Min(es) => es
                .iter()
                .map(|e| e.eval_slice(env))
                .min()
                .expect("nonempty min"),
            Bound::Max(es) => es
                .iter()
                .map(|e| e.eval_slice(env))
                .max()
                .expect("nonempty max"),
        }
    }

    /// Substitutes `replacement` for `v` in every alternative.
    pub fn subst(&self, v: VarId, replacement: &AffineExpr) -> Bound {
        match self {
            Bound::Affine(e) => Bound::Affine(e.subst(v, replacement)),
            Bound::Min(es) => Bound::Min(es.iter().map(|e| e.subst(v, replacement)).collect()),
            Bound::Max(es) => Bound::Max(es.iter().map(|e| e.subst(v, replacement)).collect()),
        }
    }

    /// Adds `delta` to every alternative.
    pub fn shifted(&self, delta: i64) -> Bound {
        match self {
            Bound::Affine(e) => Bound::Affine(e.shifted(delta)),
            Bound::Min(es) => Bound::Min(es.iter().map(|e| e.shifted(delta)).collect()),
            Bound::Max(es) => Bound::Max(es.iter().map(|e| e.shifted(delta)).collect()),
        }
    }

    /// The affine expression if the bound is a plain one.
    pub fn as_affine(&self) -> Option<&AffineExpr> {
        match self {
            Bound::Affine(e) => Some(e),
            _ => None,
        }
    }

    /// All affine alternatives of the bound.
    pub fn alternatives(&self) -> &[AffineExpr] {
        match self {
            Bound::Affine(e) => std::slice::from_ref(e),
            Bound::Min(es) | Bound::Max(es) => es,
        }
    }

    /// True if `v` appears anywhere in the bound.
    pub fn uses(&self, v: VarId) -> bool {
        self.alternatives().iter().any(|e| e.uses(v))
    }
}

impl From<AffineExpr> for Bound {
    fn from(e: AffineExpr) -> Self {
        Bound::Affine(e)
    }
}

impl From<i64> for Bound {
    fn from(c: i64) -> Self {
        Bound::constant(c)
    }
}

impl From<VarId> for Bound {
    fn from(v: VarId) -> Self {
        Bound::var(v)
    }
}

/// A guard condition `lhs <= rhs` used by unroll cleanup code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: AffineExpr,
    /// Right-hand side (may be a `min`/`max` bound).
    pub rhs: Bound,
}

impl Cond {
    /// The condition `lhs <= rhs`.
    pub fn le(lhs: AffineExpr, rhs: impl Into<Bound>) -> Self {
        Cond {
            lhs,
            rhs: rhs.into(),
        }
    }

    /// Evaluates the condition under `env`.
    pub fn eval(&self, env: &impl Fn(VarId) -> i64) -> bool {
        self.lhs.eval(env) <= self.rhs.eval(env)
    }

    /// Evaluates the condition under a dense environment indexed by
    /// [`VarId::index`] (see [`AffineExpr::eval_slice`]).
    #[inline]
    pub fn eval_slice(&self, env: &[i64]) -> bool {
        self.lhs.eval_slice(env) <= self.rhs.eval_slice(env)
    }

    /// Substitutes `replacement` for `v` on both sides.
    pub fn subst(&self, v: VarId, replacement: &AffineExpr) -> Cond {
        Cond {
            lhs: self.lhs.subst(v, replacement),
            rhs: self.rhs.subst(v, replacement),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} <= {:?}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn construction_normalizes() {
        let e = AffineExpr::new(1, vec![(v(1), 2), (v(0), 3), (v(1), -2)]);
        assert_eq!(e.coeff(v(1)), 0);
        assert_eq!(e.coeff(v(0)), 3);
        assert_eq!(e.constant_part(), 1);
        assert_eq!(e.terms().len(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = AffineExpr::var(v(0)) * 2 + AffineExpr::constant(5);
        let b = AffineExpr::var(v(0)) - AffineExpr::constant(1);
        let s = a.clone() + b.clone();
        assert_eq!(s.coeff(v(0)), 3);
        assert_eq!(s.constant_part(), 4);
        let d = a - b;
        assert_eq!(d.coeff(v(0)), 1);
        assert_eq!(d.constant_part(), 6);
    }

    #[test]
    #[allow(clippy::erasing_op)] // multiplying by zero is the point
    fn mul_by_zero_clears() {
        let a = AffineExpr::var(v(0)) + AffineExpr::constant(7);
        assert_eq!(a * 0, AffineExpr::constant(0));
    }

    #[test]
    fn eval_and_subst() {
        // e = 2*i + 3*j + 1
        let e = AffineExpr::new(1, vec![(v(0), 2), (v(1), 3)]);
        assert_eq!(e.eval(&|x| if x == v(0) { 10 } else { 100 }), 321);
        // i := k + 4  =>  2k + 3j + 9
        let r = e.subst(v(0), &(AffineExpr::var(v(2)) + AffineExpr::constant(4)));
        assert_eq!(r.coeff(v(2)), 2);
        assert_eq!(r.coeff(v(1)), 3);
        assert_eq!(r.constant_part(), 9);
        // substituting an absent var is identity
        assert_eq!(e.subst(v(5), &AffineExpr::constant(9)), e);
    }

    #[test]
    fn subst_self_referential() {
        // i := i + 1 (loop shift)
        let e = AffineExpr::var(v(0)) * 3;
        let r = e.subst(v(0), &(AffineExpr::var(v(0)) + AffineExpr::constant(1)));
        assert_eq!(r.coeff(v(0)), 3);
        assert_eq!(r.constant_part(), 3);
    }

    #[test]
    fn bounds_eval() {
        let b = Bound::min_of(vec![
            AffineExpr::var(v(0)) + AffineExpr::constant(15),
            AffineExpr::var(v(1)),
        ]);
        let env = |x: VarId| if x == v(0) { 0 } else { 10 };
        assert_eq!(b.eval(&env), 10);
        let env2 = |x: VarId| if x == v(0) { 0 } else { 100 };
        assert_eq!(b.eval(&env2), 15);
    }

    #[test]
    fn min_of_one_collapses() {
        let b = Bound::min_of(vec![AffineExpr::constant(4)]);
        assert!(matches!(b, Bound::Affine(_)));
        let b2 = Bound::min_of(vec![AffineExpr::constant(4), AffineExpr::constant(4)]);
        assert!(matches!(b2, Bound::Affine(_)));
    }

    #[test]
    fn bound_uses_and_subst() {
        let b = Bound::min_of(vec![
            AffineExpr::var(v(0)) + AffineExpr::constant(15),
            AffineExpr::var(v(1)),
        ]);
        assert!(b.uses(v(0)));
        assert!(!b.uses(v(7)));
        let s = b.subst(v(0), &AffineExpr::constant(1));
        assert!(!s.uses(v(0)));
        assert_eq!(s.eval(&|_| 99), 16);
    }

    #[test]
    fn cond_eval() {
        let c = Cond::le(AffineExpr::var(v(0)), AffineExpr::constant(5));
        assert!(c.eval(&|_| 5));
        assert!(!c.eval(&|_| 6));
        let c2 = c.subst(v(0), &AffineExpr::constant(3));
        assert!(c2.eval(&|_| 1000));
    }

    #[test]
    fn conversions() {
        let _: AffineExpr = 4i64.into();
        let _: AffineExpr = v(3).into();
        let _: Bound = 4i64.into();
        let _: Bound = v(3).into();
        let b: Bound = AffineExpr::constant(2).into();
        assert_eq!(b.eval(&|_| 0), 2);
    }
}
