//! Fortran-flavoured pretty-printing of IR programs.
//!
//! The output mirrors the style of the paper's Figures 1 and 2:
//!
//! ```text
//! PROGRAM mm
//!   PARAM N
//!   REAL A[N,N], B[N,N], C[N,N]
//!   DO K = 0, N-1
//!     DO J = 0, N-1
//!       DO I = 0, N-1
//!         C[I,J] = C[I,J] + A[I,K]*B[K,J]
//! ```

use crate::expr::{AffineExpr, Bound};
use crate::program::{ArrayRef, Program, ScalarExpr, Stmt};
use std::fmt::Write as _;

/// Renders an affine expression using the program's variable names.
pub fn affine_to_string(p: &Program, e: &AffineExpr) -> String {
    let mut out = String::new();
    let mut first = true;
    for &(v, c) in e.terms() {
        let name = &p.var(v).name;
        if first {
            match c {
                1 => out.push_str(name),
                -1 => {
                    let _ = write!(out, "-{name}");
                }
                _ => {
                    let _ = write!(out, "{c}*{name}");
                }
            }
            first = false;
        } else {
            let (sign, mag) = if c < 0 { ('-', -c) } else { ('+', c) };
            if mag == 1 {
                let _ = write!(out, " {sign} {name}");
            } else {
                let _ = write!(out, " {sign} {mag}*{name}");
            }
        }
    }
    let c0 = e.constant_part();
    if first {
        let _ = write!(out, "{c0}");
    } else if c0 > 0 {
        let _ = write!(out, " + {c0}");
    } else if c0 < 0 {
        let _ = write!(out, " - {}", -c0);
    }
    out
}

/// Renders a bound, using `min(...)`/`max(...)` where needed.
pub fn bound_to_string(p: &Program, b: &Bound) -> String {
    match b {
        Bound::Affine(e) => affine_to_string(p, e),
        Bound::Min(es) => format!(
            "min({})",
            es.iter()
                .map(|e| affine_to_string(p, e))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Bound::Max(es) => format!(
            "max({})",
            es.iter()
                .map(|e| affine_to_string(p, e))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Renders an array reference `A[i,j]`.
pub fn ref_to_string(p: &Program, r: &ArrayRef) -> String {
    format!(
        "{}[{}]",
        p.array(r.array).name,
        r.idx
            .iter()
            .map(|e| affine_to_string(p, e))
            .collect::<Vec<_>>()
            .join(",")
    )
}

fn scalar_to_string(p: &Program, e: &ScalarExpr, parent_prec: u8) -> String {
    let (s, prec) = match e {
        ScalarExpr::Const(c) => (format!("{c}"), 3),
        ScalarExpr::Load(r) => (ref_to_string(p, r), 3),
        ScalarExpr::Temp(t) => (p.temps[t.index()].clone(), 3),
        ScalarExpr::Add(a, b) => (
            format!(
                "{} + {}",
                scalar_to_string(p, a, 1),
                scalar_to_string(p, b, 1)
            ),
            1,
        ),
        ScalarExpr::Sub(a, b) => (
            format!(
                "{} - {}",
                scalar_to_string(p, a, 1),
                scalar_to_string(p, b, 2)
            ),
            1,
        ),
        ScalarExpr::Mul(a, b) => (
            format!(
                "{}*{}",
                scalar_to_string(p, a, 2),
                scalar_to_string(p, b, 2)
            ),
            2,
        ),
    };
    if prec < parent_prec {
        format!("({s})")
    } else {
        s
    }
}

fn print_stmts(p: &Program, stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::For(l) => {
                let _ = writeln!(
                    out,
                    "{pad}DO {} = {}, {}{}",
                    p.var(l.var).name,
                    bound_to_string(p, &l.lo),
                    bound_to_string(p, &l.hi),
                    if l.step != 1 {
                        format!(", {}", l.step)
                    } else {
                        String::new()
                    }
                );
                print_stmts(p, &l.body, indent + 1, out);
            }
            Stmt::If { cond, then } => {
                let _ = writeln!(
                    out,
                    "{pad}IF ({} <= {}) THEN",
                    affine_to_string(p, &cond.lhs),
                    bound_to_string(p, &cond.rhs),
                );
                print_stmts(p, then, indent + 1, out);
            }
            Stmt::Store { target, value } => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {}",
                    ref_to_string(p, target),
                    scalar_to_string(p, value, 0)
                );
            }
            Stmt::SetTemp { temp, value } => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {}",
                    p.temps[temp.index()],
                    scalar_to_string(p, value, 0)
                );
            }
            Stmt::Prefetch { target } => {
                let _ = writeln!(out, "{pad}PREFETCH {}", ref_to_string(p, target));
            }
        }
    }
}

/// Renders a whole program in the paper's pseudo-Fortran style.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", p.name);
    let params: Vec<_> = p.params().map(|v| p.var(v).name.clone()).collect();
    if !params.is_empty() {
        let _ = writeln!(out, "  PARAM {}", params.join(", "));
    }
    for a in &p.arrays {
        let dims = a
            .dims
            .iter()
            .map(|e| affine_to_string(p, e))
            .collect::<Vec<_>>()
            .join(",");
        let kw = match a.kind {
            crate::program::ArrayKind::Data => "REAL",
            crate::program::ArrayKind::CopyBuffer => "NEW",
        };
        let _ = writeln!(out, "  {kw} {}[{dims}]", a.name);
    }
    print_stmts(p, &p.body, 1, &mut out);
    out
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&program_to_string(self))
    }
}
