//! Scalar replacement: mapping reused array elements to registers.
//!
//! Two flavours, both driven from the innermost loop (where the paper's
//! register-level reuse lives after unroll-and-jam):
//!
//! * **Invariant replacement** — a reference whose subscripts do not use
//!   the innermost variable (`C[I..I+UI-1, J..J+UJ-1]` inside the `K`
//!   loop of Figure 1(b)) is loaded into a scalar before the loop,
//!   used/updated in registers inside, and stored back after.
//! * **Rotating replacement** — a group of read-only references that
//!   differ only by constant offsets along the innermost direction
//!   (`B[I-1,…], B[I+1,…]` inside Jacobi's `I` loop, Figure 2(b)) shares
//!   a ring of scalars: one new element is loaded per iteration and the
//!   ring is shifted, reproducing Carr–Kennedy register pipelining.
//!
//! Both respect the residue guards introduced by unroll-and-jam:
//! hoisted loads/stores are wrapped in the same guard conditions their
//! uses live under.

use crate::error::TransformError;
use eco_ir::{AffineExpr, ArrayRef, Cond, Loop, Program, ScalarExpr, Stmt, TempId, VarId};

/// One distinct reference occurrence context inside the innermost body.
#[derive(Debug, Clone)]
struct Occ {
    guards: Vec<Cond>,
    r: ArrayRef,
    reads: u32,
    writes: u32,
    ambiguous: bool, // appears under more than one guard context
}

/// Applies scalar replacement inside the loop binding `innermost`.
///
/// `register_limit`, when given, bounds the number of scalar
/// temporaries introduced; exceeding it returns
/// [`TransformError::RegisterPressure`], which the empirical search
/// interprets as "this unroll factor spills" (the paper's §3.1.1 uses
/// the search to find the largest unroll factors that do not cause
/// register pressure).
///
/// # Errors
///
/// Fails if the loop is missing or contains nested loops, or on
/// register pressure.
pub fn scalar_replace(
    program: &Program,
    innermost: VarId,
    register_limit: Option<usize>,
) -> Result<Program, TransformError> {
    let mut out = program.clone();
    let l = out
        .find_loop(innermost)
        .ok_or_else(|| TransformError::LoopNotFound(program.var(innermost).name.clone()))?
        .clone();
    let mut has_inner = false;
    for s in &l.body {
        s.for_each_stmt(&mut |st| has_inner |= matches!(st, Stmt::For(_)));
    }
    if has_inner {
        return Err(TransformError::Invalid(
            "scalar replacement expects the innermost loop".into(),
        ));
    }

    // ---- collect distinct references with their guard contexts ----
    let mut occs: Vec<Occ> = Vec::new();
    collect(&l.body, &mut Vec::new(), &mut occs);

    // ---- plan invariant replacements ----
    struct Invariant {
        guards: Vec<Cond>,
        r: ArrayRef,
        temp: TempId,
        writes: bool,
    }
    let mut invariants: Vec<Invariant> = Vec::new();
    for o in &occs {
        if o.ambiguous || o.r.uses(innermost) {
            continue;
        }
        if o.guards
            .iter()
            .any(|c| c.lhs.uses(innermost) || c.rhs.uses(innermost))
        {
            continue;
        }
        let name = format!("r{}", out.array(o.r.array).name.to_lowercase());
        let temp = out.add_temp(&name);
        invariants.push(Invariant {
            guards: o.guards.clone(),
            r: o.r.clone(),
            temp,
            writes: o.writes > 0,
        });
    }

    // ---- plan rotating replacements ----
    struct Ring {
        guards: Vec<Cond>,
        /// subscripts with the rotating dimension's constant zeroed
        base: ArrayRef,
        dim: usize,
        /// (offset, member ref) pairs present in the body
        members: Vec<(i64, ArrayRef)>,
        /// ring temps for offsets cmin..=cmax, in order
        temps: Vec<TempId>,
        cmin: i64,
        cmax: i64,
    }
    let mut rings: Vec<Ring> = Vec::new();
    if l.step == 1 {
        for o in &occs {
            if o.ambiguous || o.writes > 0 || !o.r.uses(innermost) {
                continue;
            }
            // innermost must appear in exactly one dim, with coefficient 1
            let dims: Vec<usize> = (0..o.r.idx.len())
                .filter(|&d| o.r.idx[d].uses(innermost))
                .collect();
            if dims.len() != 1 || o.r.idx[dims[0]].coeff(innermost) != 1 {
                continue;
            }
            let d = dims[0];
            let c = o.r.idx[d].constant_part();
            let mut base = o.r.clone();
            base.idx[d] = base.idx[d].clone().shifted(-c);
            if let Some(ring) = rings
                .iter_mut()
                .find(|g| g.dim == d && g.base == base && g.guards == o.guards)
            {
                ring.members.push((c, o.r.clone()));
            } else {
                rings.push(Ring {
                    guards: o.guards.clone(),
                    base,
                    dim: d,
                    members: vec![(c, o.r.clone())],
                    temps: Vec::new(),
                    cmin: 0,
                    cmax: 0,
                });
            }
        }
    }
    // Keep only rings with real cross-iteration sharing.
    rings.retain(|g| g.members.len() > 1);
    // Rotating requires an affine lower bound for the preload addresses.
    let lo_affine = l.lo.as_affine().cloned();
    if lo_affine.is_none() {
        rings.clear();
    }
    for g in &mut rings {
        g.cmin = g.members.iter().map(|&(c, _)| c).min().expect("nonempty");
        g.cmax = g.members.iter().map(|&(c, _)| c).max().expect("nonempty");
        let arr = out.array(g.base.array).name.to_lowercase();
        for off in g.cmin..=g.cmax {
            let t = out.add_temp(&format!("s{arr}{}", off - g.cmin));
            g.temps.push(t);
        }
    }

    // ---- register pressure ----
    let needed: usize = invariants.len() + rings.iter().map(|g| g.temps.len()).sum::<usize>();
    if let Some(limit) = register_limit {
        if needed > limit {
            return Err(TransformError::RegisterPressure {
                needed,
                available: limit,
            });
        }
    }
    if invariants.is_empty() && rings.is_empty() {
        return Ok(out); // nothing to do
    }

    // ---- rewrite the loop body ----
    let member_at = |g: &Ring, off: i64| -> ArrayRef {
        let mut r = g.base.clone();
        r.idx[g.dim] = r.idx[g.dim].clone().shifted(off);
        r
    };
    let mut replace_load = |r: &ArrayRef| -> Option<ScalarExpr> {
        for inv in &invariants {
            if &inv.r == r {
                return Some(ScalarExpr::Temp(inv.temp));
            }
        }
        for g in &rings {
            for &(c, ref m) in &g.members {
                if m == r {
                    return Some(ScalarExpr::Temp(g.temps[(c - g.cmin) as usize]));
                }
            }
        }
        None
    };
    let mut new_body = l.body.clone();
    rewrite_stmts(&mut new_body, &mut |s| match s {
        Stmt::Store { target, value } => {
            value.map_loads(&mut replace_load);
            if let Some(inv) = invariants.iter().find(|inv| inv.r == *target) {
                let mut v = ScalarExpr::Const(0.0);
                std::mem::swap(&mut v, value);
                *s = Stmt::SetTemp {
                    temp: inv.temp,
                    value: v,
                };
            }
        }
        Stmt::SetTemp { value, .. } => value.map_loads(&mut replace_load),
        _ => {}
    });

    // Per guard context: prepend the ring's new-element load, append its
    // rotation.
    for g in &rings {
        let lead = member_at(g, g.cmax);
        let load = Stmt::SetTemp {
            temp: g.temps[(g.cmax - g.cmin) as usize],
            value: ScalarExpr::Load(lead),
        };
        let mut rotates = Vec::new();
        for off in g.cmin..g.cmax {
            rotates.push(Stmt::SetTemp {
                temp: g.temps[(off - g.cmin) as usize],
                value: ScalarExpr::Temp(g.temps[(off - g.cmin + 1) as usize]),
            });
        }
        insert_in_context(&mut new_body, &g.guards, load, rotates);
    }

    // ---- preheader and postbody ----
    let mut pre: Vec<Stmt> = Vec::new();
    let mut post: Vec<Stmt> = Vec::new();
    for inv in &invariants {
        pre.push(guard(
            &inv.guards,
            vec![Stmt::SetTemp {
                temp: inv.temp,
                value: ScalarExpr::Load(inv.r.clone()),
            }],
        ));
        if inv.writes {
            post.push(guard(
                &inv.guards,
                vec![Stmt::Store {
                    target: inv.r.clone(),
                    value: ScalarExpr::Temp(inv.temp),
                }],
            ));
        }
    }
    let lo = lo_affine.unwrap_or_else(|| AffineExpr::constant(0));
    for g in &rings {
        let mut loads = Vec::new();
        for off in g.cmin..g.cmax {
            let mut r = member_at(g, off);
            // at u = lo the body loads element lo + cmax; preload the rest
            for e in &mut r.idx {
                *e = e.subst(innermost, &lo);
            }
            loads.push(Stmt::SetTemp {
                temp: g.temps[(off - g.cmin) as usize],
                value: ScalarExpr::Load(r),
            });
        }
        // Only preload if the loop will run at all.
        pre.push(guard(
            &g.guards,
            vec![Stmt::If {
                cond: Cond::le(lo.clone(), l.hi.clone()),
                then: loads,
            }],
        ));
    }

    // ---- splice: pre; loop'; post  in place of the original loop ----
    let mut replacement = pre;
    replacement.push(Stmt::For(Loop {
        var: l.var,
        lo: l.lo.clone(),
        hi: l.hi.clone(),
        step: l.step,
        body: new_body,
    }));
    replacement.extend(post);
    let replaced = splice_loop(&mut out.body, innermost, replacement);
    debug_assert!(replaced);
    Ok(out)
}

fn collect(stmts: &[Stmt], guards: &mut Vec<Cond>, occs: &mut Vec<Occ>) {
    let note = |occs: &mut Vec<Occ>, guards: &[Cond], r: &ArrayRef, write: bool| {
        if let Some(o) = occs.iter_mut().find(|o| &o.r == r) {
            if o.guards != guards {
                o.ambiguous = true;
            }
            if write {
                o.writes += 1;
            } else {
                o.reads += 1;
            }
        } else {
            occs.push(Occ {
                guards: guards.to_vec(),
                r: r.clone(),
                reads: u32::from(!write),
                writes: u32::from(write),
                ambiguous: false,
            });
        }
    };
    for s in stmts {
        match s {
            Stmt::Store { target, value } => {
                value.for_each_load(&mut |r| note(occs, guards, r, false));
                note(occs, guards, target, true);
            }
            Stmt::SetTemp { value, .. } => {
                value.for_each_load(&mut |r| note(occs, guards, r, false));
            }
            Stmt::If { cond, then } => {
                guards.push(cond.clone());
                collect(then, guards, occs);
                guards.pop();
            }
            Stmt::Prefetch { .. } => {}
            Stmt::For(_) => {}
        }
    }
}

fn rewrite_stmts(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in stmts {
        if let Stmt::If { then, .. } = s {
            rewrite_stmts(then, f);
        } else {
            f(s);
        }
    }
}

/// Wraps `body` in the given guard conditions (innermost-last).
fn guard(guards: &[Cond], body: Vec<Stmt>) -> Stmt {
    let mut cur = body;
    for c in guards.iter().rev() {
        cur = vec![Stmt::If {
            cond: c.clone(),
            then: cur,
        }];
    }
    match cur.len() {
        1 => cur.pop().expect("one element"),
        _ => Stmt::If {
            cond: Cond::le(AffineExpr::constant(0), AffineExpr::constant(0)),
            then: cur,
        },
    }
}

/// Inserts `first` at the start and `last` at the end of the statement
/// list reached by following `guards` from `stmts`.
fn insert_in_context(stmts: &mut Vec<Stmt>, guards: &[Cond], first: Stmt, last: Vec<Stmt>) {
    if guards.is_empty() {
        stmts.insert(0, first);
        stmts.extend(last);
        return;
    }
    for s in stmts.iter_mut() {
        if let Stmt::If { cond, then } = s {
            if cond == &guards[0] {
                insert_in_context(then, &guards[1..], first, last);
                return;
            }
        }
    }
    // Context not found (should not happen): fall back to guarding anew.
    stmts.insert(0, guard(guards, vec![first]));
    let l = guard(guards, last);
    stmts.push(l);
}

/// Replaces the loop binding `target` with `replacement` statements.
// clippy suggests match guards here, but guards cannot borrow mutably
#[allow(clippy::collapsible_match)]
fn splice_loop(stmts: &mut Vec<Stmt>, target: VarId, replacement: Vec<Stmt>) -> bool {
    for i in 0..stmts.len() {
        match &mut stmts[i] {
            Stmt::For(l) if l.var == target => {
                stmts.splice(i..=i, replacement);
                return true;
            }
            Stmt::For(l) => {
                if splice_loop(&mut l.body, target, replacement.clone()) {
                    return true;
                }
            }
            Stmt::If { then, .. } => {
                if splice_loop(then, target, replacement.clone()) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}
