//! Transformation errors.

use std::error::Error;
use std::fmt;

/// Errors raised by the transformation passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The program body is not the expected perfect loop nest.
    NotPerfectNest,
    /// The requested loop order violates a data dependence.
    IllegalOrder(String),
    /// A named loop does not exist in the program.
    LoopNotFound(String),
    /// The pass requires a unit-step loop.
    UnsupportedStep {
        /// The loop's name.
        loop_name: String,
        /// Its actual step.
        step: i64,
    },
    /// Scalar replacement would need more registers than available.
    RegisterPressure {
        /// Registers the replacement would need.
        needed: usize,
        /// Registers available.
        available: usize,
    },
    /// A tile size or unroll factor is invalid (zero).
    BadParameter(String),
    /// Anything else (with a human-readable reason).
    Invalid(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotPerfectNest => {
                write!(f, "program is not a single perfect loop nest")
            }
            TransformError::IllegalOrder(why) => write!(f, "illegal loop order: {why}"),
            TransformError::LoopNotFound(name) => write!(f, "no loop named {name}"),
            TransformError::UnsupportedStep { loop_name, step } => {
                write!(f, "loop {loop_name} has unsupported step {step}")
            }
            TransformError::RegisterPressure { needed, available } => {
                write!(f, "needs {needed} registers, only {available} available")
            }
            TransformError::BadParameter(why) => write!(f, "bad parameter: {why}"),
            TransformError::Invalid(why) => write!(f, "invalid transformation: {why}"),
        }
    }
}

impl Error for TransformError {}
