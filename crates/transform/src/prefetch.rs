//! Software-prefetch insertion.
//!
//! The search phase adds prefetches one data structure at a time
//! (§3.2): [`insert_prefetch`] prefetches, `distance` iterations of the
//! innermost loop ahead, one representative reference per *line group*
//! (references that differ only by small constants in the contiguous
//! dimension share a cache line and need a single prefetch).

use crate::error::TransformError;
use eco_ir::{AffineExpr, ArrayId, ArrayRef, Program, Stmt, VarId};

/// Inserts prefetches for `array` into the body of the loop binding
/// `innermost`, `distance` iterations ahead.
///
/// Only references whose subscripts use the innermost variable are
/// prefetched (an invariant reference is already resident). One prefetch
/// is emitted per line group, at the top of the loop body; out-of-range
/// prefetch targets are dropped at execution time, so no edge guards are
/// needed.
///
/// # Errors
///
/// Fails if the loop is missing, `distance` is zero, or the array has no
/// prefetchable references in the loop.
pub fn insert_prefetch(
    program: &Program,
    innermost: VarId,
    array: ArrayId,
    distance: i64,
) -> Result<Program, TransformError> {
    if distance <= 0 {
        return Err(TransformError::BadParameter(format!(
            "prefetch distance {distance} must be positive"
        )));
    }
    let mut out = program.clone();
    let loop_ref = out
        .find_loop(innermost)
        .ok_or_else(|| TransformError::LoopNotFound(program.var(innermost).name.clone()))?;

    // Gather distinct refs to `array` in the body that vary with the loop.
    let mut refs: Vec<ArrayRef> = Vec::new();
    for s in &loop_ref.body {
        s.for_each_ref(&mut |r, _| {
            if r.array == array && r.uses(innermost) && !refs.contains(r) {
                refs.push(r.clone());
            }
        });
    }
    if refs.is_empty() {
        return Err(TransformError::Invalid(format!(
            "array {} has no prefetchable references in loop {}",
            program.array(array).name,
            program.var(innermost).name
        )));
    }

    // Line groups: same subscripts once the leading-dimension constant is
    // dropped; prefetch the smallest-offset member of each group.
    let mut groups: Vec<ArrayRef> = Vec::new();
    let key = |r: &ArrayRef| -> Vec<AffineExpr> {
        let mut k: Vec<AffineExpr> = r.idx.clone();
        if !k.is_empty() {
            let c = k[0].constant_part();
            k[0] = k[0].clone().shifted(-c);
        }
        k
    };
    refs.sort_by_key(|r| r.idx.first().map_or(0, |e| e.constant_part()));
    for r in refs {
        if !groups.iter().any(|g| key(g) == key(&r)) {
            groups.push(r);
        }
    }

    // Shift each representative `distance` iterations ahead and prepend.
    let ahead = AffineExpr::var(innermost) + AffineExpr::constant(distance * loop_ref.step);
    let mut prefetches: Vec<Stmt> = groups
        .into_iter()
        .map(|r| Stmt::Prefetch {
            target: r.subst(innermost, &ahead),
        })
        .collect();

    // Re-find mutably and splice.
    // clippy suggests match guards here, but guards cannot borrow mutably
    #[allow(clippy::collapsible_match)]
    fn prepend(stmts: &mut [Stmt], target: VarId, add: &mut Vec<Stmt>) -> bool {
        for s in stmts {
            match s {
                Stmt::For(l) if l.var == target => {
                    for (i, p) in add.drain(..).enumerate() {
                        l.body.insert(i, p);
                    }
                    return true;
                }
                Stmt::For(l) => {
                    if prepend(&mut l.body, target, add) {
                        return true;
                    }
                }
                Stmt::If { then, .. } => {
                    if prepend(then, target, add) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    let ok = prepend(&mut out.body, innermost, &mut prefetches);
    debug_assert!(ok);
    Ok(out)
}

/// Removes every prefetch of `array` from the program (the search backs
/// out prefetching when it does not pay off).
pub fn remove_prefetch(program: &Program, array: ArrayId) -> Program {
    fn strip(stmts: &mut Vec<Stmt>, array: ArrayId) {
        stmts.retain(|s| !matches!(s, Stmt::Prefetch { target } if target.array == array));
        for s in stmts {
            match s {
                Stmt::For(l) => strip(&mut l.body, array),
                Stmt::If { then, .. } => strip(then, array),
                _ => {}
            }
        }
    }
    let mut out = program.clone();
    strip(&mut out.body, array);
    out
}
