//! Copy optimization: copying a reused data tile into a contiguous
//! buffer to eliminate cache conflict misses (the `P`/`Q` arrays of the
//! paper's Figure 1(b,c)).

use crate::error::TransformError;
use eco_ir::{AffineExpr, ArrayId, ArrayRef, Bound, Loop, Program, ScalarExpr, Stmt, VarId};

/// One dimension of the copied region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyDim {
    /// Lower corner of the region in this dimension (an expression over
    /// the loop variables in scope at the copy point, e.g. `KK`).
    pub lo: AffineExpr,
    /// Region extent (the tile size); the buffer dimension.
    pub extent: u64,
}

/// A copy-optimization request: copy
/// `array[lo0 .. lo0+e0-1, lo1 .. lo1+e1-1, ...]` into a fresh
/// contiguous buffer at the top of the body of loop `at`, and retarget
/// all references to `array` inside that loop to the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopySpec {
    /// The loop whose body receives the copy code (a tile-controlling
    /// loop: the copy re-executes per tile).
    pub at: VarId,
    /// The array to copy from.
    pub array: ArrayId,
    /// The region, one entry per array dimension.
    pub region: Vec<CopyDim>,
    /// Name for the buffer (`"P"`, `"Q"`, ...).
    pub buffer_name: String,
}

/// Applies a copy optimization.
///
/// The copy loops clip at the array edges (`min` bounds), matching the
/// paper's partial edge tiles. References are retargeted by subtracting
/// the region's lower corner from each subscript; the caller must ensure
/// every reference to `array` inside loop `at` stays within the region
/// (the ECO driver derives regions from the footprint of the retained
/// references, which guarantees it; the numeric-equivalence test suite
/// verifies it).
///
/// # Errors
///
/// Fails if the loop is missing, the region rank does not match the
/// array, or an extent is zero.
pub fn copy_in(program: &Program, spec: &CopySpec) -> Result<Program, TransformError> {
    let mut out = program.clone();
    let decl = out.arrays.get(spec.array.index()).ok_or_else(|| {
        TransformError::Invalid(format!("array id {:?} out of range", spec.array))
    })?;
    if decl.dims.len() != spec.region.len() {
        return Err(TransformError::Invalid(format!(
            "region rank {} does not match array {} rank {}",
            spec.region.len(),
            decl.name,
            decl.dims.len()
        )));
    }
    if spec.region.iter().any(|d| d.extent == 0) {
        return Err(TransformError::BadParameter("copy extent 0".into()));
    }
    let array_dims = decl.dims.clone();
    let buffer = out.add_copy_buffer(
        spec.buffer_name.clone(),
        spec.region
            .iter()
            .map(|d| AffineExpr::constant(d.extent as i64))
            .collect(),
    );

    // Copy loops: DO c_d = 0, min(extent-1, dim_hi - lo_d)
    let cvars: Vec<VarId> = (0..spec.region.len())
        .map(|d| out.fresh_loop_var(&format!("{}{}", spec.buffer_name.to_lowercase(), d)))
        .collect();
    let src = ArrayRef::new(
        spec.array,
        spec.region
            .iter()
            .zip(&cvars)
            .map(|(dim, &cv)| dim.lo.clone() + AffineExpr::var(cv))
            .collect(),
    );
    let dst = ArrayRef::new(
        buffer,
        cvars.iter().map(|&cv| AffineExpr::var(cv)).collect(),
    );
    let mut copy_stmt = Stmt::Store {
        target: dst,
        value: ScalarExpr::Load(src),
    };
    for d in (0..spec.region.len()).rev() {
        let clip = array_dims[d].clone() - AffineExpr::constant(1) - spec.region[d].lo.clone();
        copy_stmt = Stmt::For(Loop {
            var: cvars[d],
            lo: 0.into(),
            hi: Bound::min_of(vec![
                AffineExpr::constant(spec.region[d].extent as i64 - 1),
                clip,
            ]),
            step: 1,
            body: vec![copy_stmt],
        });
    }

    // Find the target loop, prepend the copy, retarget inner references.
    let found = locate_and_rewrite(&mut out.body, spec, copy_stmt, buffer);
    if !found {
        return Err(TransformError::LoopNotFound(
            program.var(spec.at).name.clone(),
        ));
    }
    Ok(out)
}

// clippy suggests match guards here, but guards cannot borrow mutably
#[allow(clippy::collapsible_match)]
fn locate_and_rewrite(
    stmts: &mut [Stmt],
    spec: &CopySpec,
    copy_stmt: Stmt,
    buffer: ArrayId,
) -> bool {
    for s in stmts.iter_mut() {
        match s {
            Stmt::For(l) if l.var == spec.at => {
                retarget(&mut l.body, spec, buffer);
                l.body.insert(0, copy_stmt);
                return true;
            }
            Stmt::For(l) => {
                if locate_and_rewrite(&mut l.body, spec, copy_stmt.clone(), buffer) {
                    return true;
                }
            }
            Stmt::If { then, .. } => {
                if locate_and_rewrite(then, spec, copy_stmt.clone(), buffer) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn retarget(stmts: &mut [Stmt], spec: &CopySpec, buffer: ArrayId) {
    let translate = |r: &ArrayRef| -> ArrayRef {
        ArrayRef::new(
            buffer,
            r.idx
                .iter()
                .zip(&spec.region)
                .map(|(e, dim)| e.clone() - dim.lo.clone())
                .collect(),
        )
    };
    for s in stmts {
        match s {
            Stmt::For(l) => retarget(&mut l.body, spec, buffer),
            Stmt::If { then, .. } => retarget(then, spec, buffer),
            Stmt::Store { target, value } => {
                value.map_loads(&mut |r| {
                    (r.array == spec.array).then(|| ScalarExpr::Load(translate(r)))
                });
                if target.array == spec.array {
                    *target = translate(target);
                }
            }
            Stmt::SetTemp { value, .. } => {
                value.map_loads(&mut |r| {
                    (r.array == spec.array).then(|| ScalarExpr::Load(translate(r)))
                });
            }
            Stmt::Prefetch { target } => {
                if target.array == spec.array {
                    *target = translate(target);
                }
            }
        }
    }
}
