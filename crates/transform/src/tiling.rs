//! Loop permutation and tiling (strip-mine + interchange), expressed as
//! one nest-rebuilding pass.
//!
//! The paper's Phase 1 decides, per variant, a `LoopOrder` that mixes
//! *tile controlling loops* (`KK`, `JJ`, `II` in Figure 1) with *point
//! loops*; [`tile_nest`] takes that order and reconstructs the nest,
//! after checking data-dependence legality of the underlying point-loop
//! permutation and the structural sanity of the control placement.

use crate::error::TransformError;
use eco_analysis::dependence::{dependences, permutation_is_legal};
use eco_analysis::NestInfo;
use eco_ir::{AffineExpr, Bound, Loop, Program, Stmt, VarId};

/// One position in the target loop order of [`tile_nest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopSel {
    /// The point loop of the original variable.
    Point(VarId),
    /// The tile-controlling loop of the original variable (which must
    /// also appear as `Point` later in the order).
    Control(VarId),
}

/// A tiling request for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileSpec {
    /// The original loop variable.
    pub var: VarId,
    /// The tile size (trip count of the point loop within a tile).
    pub tile: u64,
}

/// Rebuilds the program's perfect nest in the given `order`, tiling the
/// loops listed in `tiles`.
///
/// Every original loop must appear exactly once as [`LoopSel::Point`];
/// a loop with a [`TileSpec`] must also appear exactly once as
/// [`LoopSel::Control`], somewhere before its point loop. Control
/// variables are created fresh, named by doubling the original name
/// (`I` → `II`).
///
/// Returns the transformed program and the control variable created for
/// each tiled loop (in `tiles` order).
///
/// # Errors
///
/// Fails if the program is not a perfect nest, the order is malformed,
/// any original loop bound depends on another loop variable, a tile size
/// is zero, or the point-loop permutation violates a dependence.
pub fn tile_nest(
    program: &Program,
    tiles: &[TileSpec],
    order: &[LoopSel],
) -> Result<(Program, Vec<VarId>), TransformError> {
    let nest = NestInfo::from_program(program).map_err(|_| TransformError::NotPerfectNest)?;
    let orig_vars = nest.loop_vars();

    for t in tiles {
        if t.tile == 0 {
            return Err(TransformError::BadParameter(format!(
                "tile size 0 for loop {}",
                program.var(t.var).name
            )));
        }
        if !orig_vars.contains(&t.var) {
            return Err(TransformError::LoopNotFound(
                program.var(t.var).name.clone(),
            ));
        }
    }

    // The point permutation implied by `order`.
    let point_order: Vec<VarId> = order
        .iter()
        .filter_map(|s| match s {
            LoopSel::Point(v) => Some(*v),
            LoopSel::Control(_) => None,
        })
        .collect();
    {
        let mut sorted = point_order.clone();
        sorted.sort();
        let mut orig = orig_vars.clone();
        orig.sort();
        if sorted != orig {
            return Err(TransformError::IllegalOrder(
                "order must contain each original loop exactly once as Point".into(),
            ));
        }
    }
    for t in tiles {
        let c = order
            .iter()
            .position(|s| *s == LoopSel::Control(t.var))
            .ok_or_else(|| {
                TransformError::IllegalOrder(format!(
                    "tiled loop {} has no Control position",
                    program.var(t.var).name
                ))
            })?;
        let p = order
            .iter()
            .position(|s| *s == LoopSel::Point(t.var))
            .ok_or_else(|| {
                TransformError::IllegalOrder(format!(
                    "tiled loop {} has no Point position",
                    program.var(t.var).name
                ))
            })?;
        if c >= p {
            return Err(TransformError::IllegalOrder(format!(
                "control loop of {} must precede its point loop",
                program.var(t.var).name
            )));
        }
    }
    for s in order {
        if let LoopSel::Control(v) = s {
            if !tiles.iter().any(|t| t.var == *v) {
                return Err(TransformError::IllegalOrder(format!(
                    "Control({}) appears but the loop is not tiled",
                    program.var(*v).name
                )));
            }
        }
    }

    // Original loop bounds must be nest-invariant for the rebuild to be
    // meaning-preserving.
    for l in &nest.loops {
        for alt in l.lo.alternatives().iter().chain(l.hi.alternatives()) {
            if alt.vars().any(|v| orig_vars.contains(&v)) {
                return Err(TransformError::Invalid(format!(
                    "bound of loop {} depends on another loop variable",
                    program.var(l.var).name
                )));
            }
        }
        if l.step != 1 {
            return Err(TransformError::UnsupportedStep {
                loop_name: program.var(l.var).name.clone(),
                step: l.step,
            });
        }
    }

    // Dependence legality of the point permutation.
    let deps = dependences(&nest);
    if !permutation_is_legal(&nest, &deps, &point_order) {
        return Err(TransformError::IllegalOrder(
            "point-loop permutation violates a data dependence".into(),
        ));
    }

    // Rebuild.
    let mut out = program.clone();
    let (_, body) = program
        .perfect_nest()
        .ok_or(TransformError::NotPerfectNest)?;
    let innermost_body: Vec<Stmt> = body.to_vec();
    let bound_of = |v: VarId| -> (&Bound, &Bound) {
        let l = nest.loops.iter().find(|l| l.var == v).expect("orig loop");
        (&l.lo, &l.hi)
    };
    let mut control_vars = Vec::with_capacity(tiles.len());
    let mut control_of = Vec::new();
    for t in tiles {
        let name = program.var(t.var).name.repeat(2);
        let cv = out.fresh_loop_var(&name);
        control_vars.push(cv);
        control_of.push((t.var, cv, t.tile));
    }
    let mut current = innermost_body;
    for sel in order.iter().rev() {
        let l = match *sel {
            LoopSel::Point(v) => {
                let (lo, hi) = bound_of(v);
                if let Some(&(_, cv, tile)) = control_of.iter().find(|&&(pv, _, _)| pv == v) {
                    // point loop inside a tile: v = cv .. min(cv+T-1, hi)
                    let mut alts =
                        vec![AffineExpr::var(cv) + AffineExpr::constant(tile as i64 - 1)];
                    alts.extend(hi.alternatives().iter().cloned());
                    Loop {
                        var: v,
                        lo: Bound::var(cv),
                        hi: Bound::min_of(alts),
                        step: 1,
                        body: current,
                    }
                } else {
                    Loop {
                        var: v,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        step: 1,
                        body: current,
                    }
                }
            }
            LoopSel::Control(v) => {
                let (lo, hi) = bound_of(v);
                let &(_, cv, tile) =
                    control_of
                        .iter()
                        .find(|&&(pv, _, _)| pv == v)
                        .ok_or_else(|| {
                            TransformError::IllegalOrder(format!(
                                "Control({}) appears but the loop is not tiled",
                                program.var(v).name
                            ))
                        })?;
                Loop {
                    var: cv,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: tile as i64,
                    body: current,
                }
            }
        };
        current = vec![Stmt::For(l)];
    }
    out.body = current;
    Ok((out, control_vars))
}

/// Permutes the loops of a perfect nest into `order` (a special case of
/// [`tile_nest`] with no tiling).
///
/// # Errors
///
/// Same conditions as [`tile_nest`].
pub fn permute(program: &Program, order: &[VarId]) -> Result<Program, TransformError> {
    let sels: Vec<LoopSel> = order.iter().map(|&v| LoopSel::Point(v)).collect();
    tile_nest(program, &[], &sels).map(|(p, _)| p)
}
