//! Array padding: growing an array's leading dimension so that columns
//! no longer map to the same cache sets at pathological problem sizes.
//!
//! The paper's §4.2 observes that its Jacobi code (where copying is too
//! expensive to be profitable) still suffers conflict misses at unlucky
//! sizes, and that "manual experiments show that array padding can be
//! used to stabilize this behavior" — this pass implements that
//! experiment as a first-class transformation.

use crate::error::TransformError;
use eco_ir::{AffineExpr, ArrayId, Program};

/// Grows the leading (contiguous) dimension of `array` by `pad`
/// elements. References are unchanged — the extra elements are simply
/// never touched — so semantics are trivially preserved while every
/// column moves `pad * 8` bytes relative to its neighbour.
///
/// # Errors
///
/// Fails if the array id is out of range or the array has rank 0.
pub fn pad_leading_dimension(
    program: &Program,
    array: ArrayId,
    pad: u64,
) -> Result<Program, TransformError> {
    let mut out = program.clone();
    let decl = out
        .arrays
        .get_mut(array.index())
        .ok_or_else(|| TransformError::Invalid(format!("array id {array:?} out of range")))?;
    let Some(first) = decl.dims.first_mut() else {
        return Err(TransformError::Invalid(format!(
            "array {} has rank 0",
            decl.name
        )));
    };
    *first = first.clone() + AffineExpr::constant(pad as i64);
    Ok(out)
}

/// Pads the leading dimension of every data array (the whole-program
/// form a compiler would apply).
///
/// # Errors
///
/// Fails if any array has rank 0.
pub fn pad_all_arrays(program: &Program, pad: u64) -> Result<Program, TransformError> {
    let mut out = program.clone();
    for i in 0..out.arrays.len() {
        out = pad_leading_dimension(&out, ArrayId(i as u32), pad)?;
    }
    Ok(out)
}
