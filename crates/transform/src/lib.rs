//! Loop-transformation engine for the ECO reproduction.
//!
//! Every transformation the paper's Phase 1/Phase 2 pipeline applies is
//! implemented as a pass over `eco-ir` programs:
//!
//! * [`tile_nest`] / [`permute`] — loop permutation and tiling
//!   (strip-mine + interchange), dependence-checked;
//! * [`unroll_and_jam`] — register tiling with residue guards;
//! * [`scalar_replace`] — invariant and rotating (Carr–Kennedy) register
//!   promotion, with register-pressure detection;
//! * [`copy_in`] — copying reused data tiles to contiguous buffers;
//! * [`insert_prefetch`] / [`remove_prefetch`] — software prefetching;
//! * [`pad_leading_dimension`] — array padding (the stabilizing
//!   experiment of the paper's §4.2).
//!
//! All passes are *semantics-preserving*; the test suite verifies each
//! (and their composition into the paper's Figure 1(c) code shape) by
//! interpreting original and transformed programs on identical inputs.
//!
//! # Examples
//!
//! Tile Matrix Multiply's `K` and `J` loops (the v1 shape of Table 4):
//!
//! ```
//! use eco_kernels::Kernel;
//! use eco_transform::{tile_nest, LoopSel, TileSpec};
//!
//! # fn main() -> Result<(), eco_transform::TransformError> {
//! let k = Kernel::matmul();
//! let p = &k.program;
//! let (kv, jv, iv) = (
//!     p.var_by_name("K").unwrap(),
//!     p.var_by_name("J").unwrap(),
//!     p.var_by_name("I").unwrap(),
//! );
//! let (tiled, controls) = tile_nest(
//!     p,
//!     &[TileSpec { var: kv, tile: 64 }, TileSpec { var: jv, tile: 32 }],
//!     &[
//!         LoopSel::Control(kv),
//!         LoopSel::Control(jv),
//!         LoopSel::Point(iv),
//!         LoopSel::Point(jv),
//!         LoopSel::Point(kv),
//!     ],
//! )?;
//! assert_eq!(controls.len(), 2);
//! assert!(tiled.to_string().contains("DO KK = 0, N - 1, 64"));
//! # Ok(())
//! # }
//! ```

mod copy;
mod error;
mod pad;
mod prefetch;
mod scalar;
mod tiling;
mod unroll;

pub use copy::{copy_in, CopyDim, CopySpec};
pub use error::TransformError;
pub use pad::{pad_all_arrays, pad_leading_dimension};
pub use prefetch::{insert_prefetch, remove_prefetch};
pub use scalar::scalar_replace;
pub use tiling::{permute, tile_nest, LoopSel, TileSpec};
pub use unroll::unroll_and_jam;

#[cfg(test)]
mod tests {
    use super::*;
    use eco_exec::{interpret, measure, ArrayLayout, LayoutOptions, Params, Storage};
    use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt, VarId};
    use eco_kernels::Kernel;
    use eco_machine::MachineDesc;

    /// Interprets `reference` and `transformed` on identical seeded data
    /// and asserts the output arrays match.
    fn assert_equiv(reference: &Program, transformed: &Program, n: i64, outputs: &[&str]) {
        let run = |p: &Program| -> Storage {
            let params = Params::new().with_named(p, "N", n).expect("N");
            let layout = ArrayLayout::new(p, &params, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 12345);
            // Copy buffers must start zeroed but shared data arrays get
            // identical seeds because declaration order of the original
            // arrays is preserved by every pass.
            interpret(p, &params, &layout, &mut st).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            st
        };
        let want = run(reference);
        let got = run(transformed);
        for name in outputs {
            let a = reference.array_by_name(name).expect("output array");
            let diff = want.max_abs_diff(&got, a);
            assert!(
                diff < 1e-9,
                "output {name} differs by {diff} at N={n}\n--- transformed:\n{transformed}"
            );
        }
    }

    fn mm_vars(p: &Program) -> (VarId, VarId, VarId) {
        (
            p.var_by_name("K").expect("K"),
            p.var_by_name("J").expect("J"),
            p.var_by_name("I").expect("I"),
        )
    }

    #[test]
    fn permute_all_mm_orders_are_equivalent() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        for order in [
            [i, j, k],
            [i, k, j],
            [j, i, k],
            [j, k, i],
            [k, i, j],
            [k, j, i],
        ] {
            let permuted = permute(p, &order).expect("legal");
            assert_equiv(p, &permuted, 9, &["C"]);
        }
    }

    /// `A[I,J] = A[I-1,J+1] + 1` under an `(I, J)` nest: flow dependence
    /// with distance `(I:1, J:-1)`, legal as written (leading +1) but
    /// reversed by any order that consults `J` before `I`.
    fn skew_program() -> (Program, VarId, VarId) {
        let mut p = Program::new("skew");
        let n = p.add_param("N");
        let j = p.add_loop_var("J");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let hi = AffineExpr::var(n) - AffineExpr::constant(2);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 1.into(),
            hi: hi.clone().into(),
            step: 1,
            body: vec![Stmt::For(Loop {
                var: j,
                lo: 1.into(),
                hi: hi.into(),
                step: 1,
                body: vec![Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::var(i), AffineExpr::var(j)]),
                    value: ScalarExpr::add(
                        ScalarExpr::Load(ArrayRef::new(
                            a,
                            vec![
                                AffineExpr::var(i) - AffineExpr::constant(1),
                                AffineExpr::var(j) + AffineExpr::constant(1),
                            ],
                        )),
                        ScalarExpr::Const(1.0),
                    ),
                }],
            })],
        }));
        (p, i, j)
    }

    #[test]
    fn permute_rejects_dependence_violation() {
        let (p, i, j) = skew_program();
        assert!(permute(&p, &[i, j]).is_ok(), "identity must stay legal");
        let err = permute(&p, &[j, i]).expect_err("must be illegal");
        assert!(matches!(err, TransformError::IllegalOrder(_)), "{err}");
    }

    #[test]
    fn unroll_and_jam_rejects_dependence_reversal() {
        let (p, i, j) = skew_program();
        // Jamming I lands its copies inside J: the (1, -1) skew runs
        // backwards along J between copies.
        let err = unroll_and_jam(&p, i, 2).expect_err("must be illegal");
        assert!(matches!(err, TransformError::IllegalOrder(_)), "{err}");
        // Unrolling the already-innermost loop reorders nothing.
        let u = unroll_and_jam(&p, j, 2).expect("legal");
        assert_equiv(&p, &u, 9, &["A"]);
    }

    #[test]
    fn unroll_and_jam_legality_sees_through_tile_controls() {
        // Tile I: the fresh II control never appears in a subscript, so
        // every dependence carries an Any distance on it. A naive
        // lexicographic test would reject both unrolls below; the sign
        // enumeration keeps only causal assignments, proving J legal
        // while still rejecting I (whose (1, -1) skew truly reverses).
        let (p, i, j) = skew_program();
        let (tiled, _) = tile_nest(
            &p,
            &[TileSpec { var: i, tile: 4 }],
            &[LoopSel::Control(i), LoopSel::Point(i), LoopSel::Point(j)],
        )
        .expect("tile");
        let u = unroll_and_jam(&tiled, j, 2).expect("legal despite Any on II");
        assert_equiv(&p, &u, 11, &["A"]);
        let err = unroll_and_jam(&tiled, i, 2).expect_err("skew reversal");
        assert!(matches!(err, TransformError::IllegalOrder(_)), "{err}");
    }

    #[test]
    fn tile_mm_like_v1_is_equivalent() {
        // Figure 1(b) loop structure: KK, JJ, I, J, K.
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let (tiled, _) = tile_nest(
            p,
            &[TileSpec { var: k, tile: 5 }, TileSpec { var: j, tile: 3 }],
            &[
                LoopSel::Control(k),
                LoopSel::Control(j),
                LoopSel::Point(i),
                LoopSel::Point(j),
                LoopSel::Point(k),
            ],
        )
        .expect("tile");
        // 11 not divisible by 5 or 3: edge tiles exercised.
        assert_equiv(p, &tiled, 11, &["C"]);
        let s = tiled.to_string();
        assert!(s.contains("DO KK = 0, N - 1, 5"), "{s}");
        assert!(s.contains("min(KK + 4, N - 1)"), "{s}");
    }

    #[test]
    fn tile_mm_like_v2_is_equivalent() {
        // Figure 1(c): KK, JJ, II, J, I, K with all three loops tiled.
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let (tiled, controls) = tile_nest(
            p,
            &[
                TileSpec { var: k, tile: 4 },
                TileSpec { var: j, tile: 6 },
                TileSpec { var: i, tile: 5 },
            ],
            &[
                LoopSel::Control(k),
                LoopSel::Control(j),
                LoopSel::Control(i),
                LoopSel::Point(j),
                LoopSel::Point(i),
                LoopSel::Point(k),
            ],
        )
        .expect("tile");
        assert_eq!(controls.len(), 3);
        assert_equiv(p, &tiled, 13, &["C"]);
    }

    #[test]
    fn tile_rejects_malformed_orders() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        // missing point loop
        assert!(tile_nest(p, &[], &[LoopSel::Point(i), LoopSel::Point(j)]).is_err());
        // control after point
        assert!(tile_nest(
            p,
            &[TileSpec { var: k, tile: 4 }],
            &[
                LoopSel::Point(k),
                LoopSel::Control(k),
                LoopSel::Point(j),
                LoopSel::Point(i)
            ]
        )
        .is_err());
        // control without tile spec
        assert!(tile_nest(
            p,
            &[],
            &[
                LoopSel::Control(k),
                LoopSel::Point(k),
                LoopSel::Point(j),
                LoopSel::Point(i)
            ]
        )
        .is_err());
        // zero tile
        assert!(tile_nest(
            p,
            &[TileSpec { var: k, tile: 0 }],
            &[
                LoopSel::Control(k),
                LoopSel::Point(k),
                LoopSel::Point(j),
                LoopSel::Point(i)
            ]
        )
        .is_err());
    }

    #[test]
    fn unroll_and_jam_is_equivalent_with_and_without_residues() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (_, j, i) = mm_vars(p);
        for factor in [2u64, 3, 4] {
            let u = unroll_and_jam(p, i, factor).expect("uaj i");
            let u = unroll_and_jam(&u, j, 2).expect("uaj j");
            // N=7: neither 2, 3 nor 4 divides; N=8: 2 and 4 divide.
            assert_equiv(p, &u, 7, &["C"]);
            assert_equiv(p, &u, 8, &["C"]);
        }
    }

    #[test]
    fn unroll_and_jam_jams_copies_into_innermost() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (_, _, i) = mm_vars(p);
        let u = unroll_and_jam(p, i, 2).expect("uaj");
        // The I loop now steps by 2 and the K..J..I nest still exists
        // with the two copies inside the I..no: copies are inside the
        // innermost loop body (I is outermost of none -- I is innermost
        // in kernel order K,J,I, so copies sit directly in I's body).
        let s = u.to_string();
        assert!(s.contains("DO I = 0, N - 1, 2"), "{s}");
        assert!(s.contains("C[I + 1,J]"), "{s}");
        assert!(s.contains("IF (I + 1 <= N - 1)"), "{s}");
    }

    #[test]
    fn scalar_replace_hoists_invariant_accumulator() {
        // Put K innermost (IJK order) so C[I,J] is invariant.
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let reordered = permute(p, &[i, j, k]).expect("legal");
        let sr = scalar_replace(&reordered, k, Some(32)).expect("replace");
        assert_equiv(p, &sr, 9, &["C"]);
        // C traffic drops from 2 per iteration to 2 per (I,J).
        let params9 = |prog: &Program| Params::new().with_named(prog, "N", 9).expect("N");
        let machine = MachineDesc::sgi_r10000();
        let before = measure(
            &reordered,
            &params9(&reordered),
            &machine,
            &LayoutOptions::default(),
        )
        .expect("measure");
        let after =
            measure(&sr, &params9(&sr), &machine, &LayoutOptions::default()).expect("measure");
        let n3 = 9u64 * 9 * 9;
        let n2 = 9u64 * 9;
        assert_eq!(before.loads, 3 * n3);
        assert_eq!(before.stores, n3);
        assert_eq!(after.loads, 2 * n3 + n2);
        assert_eq!(after.stores, n2);
    }

    #[test]
    fn scalar_replace_after_unroll_and_jam() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let reordered = permute(p, &[i, j, k]).expect("legal");
        let u = unroll_and_jam(&reordered, i, 4).expect("uaj i");
        let u = unroll_and_jam(&u, j, 2).expect("uaj j");
        let sr = scalar_replace(&u, k, Some(32)).expect("replace");
        // 8 accumulators C[i..i+3, j..j+1] hoisted, guards respected.
        assert_equiv(p, &sr, 10, &["C"]); // 10 % 4 != 0: guarded copies live
        assert_equiv(p, &sr, 8, &["C"]);
        assert!(sr.temps.len() >= 8, "temps: {:?}", sr.temps);
    }

    #[test]
    fn scalar_replace_register_pressure_detected() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let reordered = permute(p, &[i, j, k]).expect("legal");
        let u = unroll_and_jam(&reordered, i, 8).expect("uaj i");
        let u = unroll_and_jam(&u, j, 8).expect("uaj j");
        let err = scalar_replace(&u, k, Some(32)).expect_err("64 > 32");
        match err {
            TransformError::RegisterPressure { needed, available } => {
                assert_eq!(needed, 64);
                assert_eq!(available, 32);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn scalar_replace_rotates_jacobi_stencil() {
        let kern = Kernel::jacobi3d();
        let p = &kern.program;
        let i = p.var_by_name("I").expect("I");
        let sr = scalar_replace(p, i, Some(32)).expect("replace");
        assert_equiv(p, &sr, 9, &["A"]);
        // The +-1 I-offsets of B share a 3-register ring: loads per point
        // drop from 6 to 5 (B[I+1] plus the four J/K neighbours).
        let params = |prog: &Program| Params::new().with_named(prog, "N", 10).expect("N");
        let machine = MachineDesc::sgi_r10000();
        let before = measure(p, &params(p), &machine, &LayoutOptions::default()).expect("measure");
        let after =
            measure(&sr, &params(&sr), &machine, &LayoutOptions::default()).expect("measure");
        assert!(
            after.loads < before.loads * 9 / 10,
            "rotation must cut loads: {} -> {}",
            before.loads,
            after.loads
        );
    }

    #[test]
    fn copy_optimization_is_equivalent() {
        // Tile K,J; copy the B tile (TK x TJ) at the JJ loop, like
        // Figure 1(b).
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let (tiled, controls) = tile_nest(
            p,
            &[TileSpec { var: k, tile: 4 }, TileSpec { var: j, tile: 3 }],
            &[
                LoopSel::Control(k),
                LoopSel::Control(j),
                LoopSel::Point(i),
                LoopSel::Point(j),
                LoopSel::Point(k),
            ],
        )
        .expect("tile");
        let (kk, jj) = (controls[0], controls[1]);
        let b = tiled.array_by_name("B").expect("B");
        let copied = copy_in(
            &tiled,
            &CopySpec {
                at: jj,
                array: b,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: 4,
                    },
                    CopyDim {
                        lo: AffineExpr::var(jj),
                        extent: 3,
                    },
                ],
                buffer_name: "P".into(),
            },
        )
        .expect("copy");
        assert_equiv(p, &copied, 11, &["C"]);
        let s = copied.to_string();
        assert!(s.contains("NEW P[4,3]"), "{s}");
        assert!(s.contains("P[p0,p1] = B[KK + p0,JJ + p1]"), "{s}");
        assert!(s.contains("P[K - KK,J - JJ]"), "{s}");
    }

    #[test]
    fn prefetch_insertion_preserves_semantics_and_counts() {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (_, _, i) = mm_vars(p);
        let a = p.array_by_name("A").expect("A");
        let pf = insert_prefetch(p, i, a, 8).expect("prefetch");
        assert_equiv(p, &pf, 9, &["C"]);
        let params = Params::new().with_named(&pf, "N", 16).expect("N");
        let machine = MachineDesc::sgi_r10000();
        let c = measure(&pf, &params, &machine, &LayoutOptions::default()).expect("measure");
        // one prefetch per in-bounds iteration: (16-8) per I sweep
        assert_eq!(c.prefetches, 16 * 16 * 8);
        // removing them restores the original program
        let stripped = remove_prefetch(&pf, a);
        assert_eq!(&stripped, p);
    }

    #[test]
    fn prefetch_dedupes_line_groups() {
        let kern = Kernel::jacobi3d();
        let p = &kern.program;
        let i = p.var_by_name("I").expect("I");
        let b = p.array_by_name("B").expect("B");
        let pf = insert_prefetch(p, i, b, 4).expect("prefetch");
        let mut count = 0;
        pf.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Prefetch { .. }) {
                count += 1;
            }
        });
        // 6 B refs, but B[I-1],B[I],B[I+1]-style leading-dim offsets fold:
        // groups are {I+-1,J,K}, {I,J-1,K}, {I,J+1,K}, {I,J,K-1}, {I,J,K+1}.
        assert_eq!(count, 5);
    }

    #[test]
    fn full_v2_pipeline_is_equivalent() {
        // The complete Figure 1(c) construction: tile all three loops,
        // unroll-and-jam I and J, scalar-replace C, copy B (at JJ) and
        // A (at II), prefetch the copied P.
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = mm_vars(p);
        let (tiled, controls) = tile_nest(
            p,
            &[
                TileSpec { var: k, tile: 8 },
                TileSpec { var: j, tile: 6 },
                TileSpec { var: i, tile: 4 },
            ],
            &[
                LoopSel::Control(k),
                LoopSel::Control(j),
                LoopSel::Control(i),
                LoopSel::Point(j),
                LoopSel::Point(i),
                LoopSel::Point(k),
            ],
        )
        .expect("tile");
        let (kk, jj, ii) = (controls[0], controls[1], controls[2]);
        let u = unroll_and_jam(&tiled, j, 2).expect("uaj j");
        let u = unroll_and_jam(&u, i, 2).expect("uaj i");
        let sr = scalar_replace(&u, k, Some(32)).expect("scalar");
        let b = sr.array_by_name("B").expect("B");
        let with_b = copy_in(
            &sr,
            &CopySpec {
                at: jj,
                array: b,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: 8,
                    },
                    CopyDim {
                        lo: AffineExpr::var(jj),
                        extent: 6,
                    },
                ],
                buffer_name: "P".into(),
            },
        )
        .expect("copy B");
        let a = with_b.array_by_name("A").expect("A");
        let with_a = copy_in(
            &with_b,
            &CopySpec {
                at: ii,
                array: a,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(ii),
                        extent: 4,
                    },
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: 8,
                    },
                ],
                buffer_name: "Q".into(),
            },
        )
        .expect("copy A");
        let pbuf = with_a.array_by_name("P").expect("P");
        let final_p = insert_prefetch(&with_a, k, pbuf, 2).expect("prefetch");
        final_p.validate().expect("valid");
        // Edge-tile-heavy sizes and a divisible size.
        for n in [7, 13, 24] {
            assert_equiv(p, &final_p, n, &["C"]);
        }
    }

    #[test]
    fn padding_preserves_semantics_and_moves_columns() {
        // Padding changes array extents, so outputs are compared
        // element-by-element through each program's own layout.
        let kern = Kernel::jacobi3d();
        let p = &kern.program;
        let a = p.array_by_name("A").expect("A");
        let n = 9i64;
        // Pad only the output array: flat seeding assigns inputs by flat
        // index, so padding an input would change the logical input data
        // (not a semantics question). pad_all_arrays is exercised below
        // for structural validity.
        let padded = pad_leading_dimension(p, a, 3).expect("pad");
        let run = |prog: &Program| {
            let params = Params::new().with_named(prog, "N", n).expect("N");
            let layout =
                ArrayLayout::new(prog, &params, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 12345);
            interpret(prog, &params, &layout, &mut st).expect("run");
            (layout, st)
        };
        let (l0, s0) = run(p);
        let (l1, s1) = run(&padded);
        assert!(
            l1.total_bytes() > l0.total_bytes(),
            "padding grows the layout"
        );
        let idx = |layout: &ArrayLayout, i: i64, j: i64, k: i64| {
            let r = ArrayRef::new(
                a,
                vec![
                    AffineExpr::constant(i),
                    AffineExpr::constant(j),
                    AffineExpr::constant(k),
                ],
            );
            layout.flat_index(&r, &[]).expect("in bounds")
        };
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let want = s0.array(a)[idx(&l0, i, j, k)];
                    let got = s1.array(a)[idx(&l1, i, j, k)];
                    assert!(
                        (want - got).abs() < 1e-12,
                        "A[{i},{j},{k}]: {want} vs {got}"
                    );
                }
            }
        }
        let all = pad_all_arrays(p, 5).expect("pad all");
        all.validate().expect("padded program valid");
        let params = Params::new().with_named(&all, "N", n).expect("N");
        measure(
            &all,
            &params,
            &MachineDesc::sgi_r10000(),
            &LayoutOptions::default(),
        )
        .expect("padded program executes");
    }
}
