//! Unroll-and-jam (register tiling).
//!
//! Unrolling loop `u` by factor `U` replaces its body with `U` copies
//! (with `u` shifted by `0..U`), *jammed* through any perfectly-nested
//! inner loops so the copies land together in the innermost body, where
//! scalar replacement can exploit the exposed register reuse.
//!
//! Trip counts are generally not provably divisible by `U` here (tiled
//! loops have `min(...)` upper bounds), so copies `1..U` are wrapped in
//! residue guards `IF (u + k <= hi)`. The paper's search favours unroll
//! factors that evenly divide loop bounds, which keeps the guards' cost
//! negligible; when divisibility *is* provable (constant trip count),
//! the guards are omitted.

use crate::error::TransformError;
use eco_analysis::dependence::{dependences, unroll_and_jam_is_legal};
use eco_analysis::NestInfo;
use eco_ir::{AffineExpr, Bound, Cond, Loop, Program, Stmt, VarId};

/// Applies unroll-and-jam with factor `factor` to the loop binding `u`.
///
/// The loop's body must be a perfect chain of inner loops whose bounds
/// do not depend on `u` (otherwise jamming is structurally impossible
/// and an error is returned). Data-dependence legality is checked here
/// whenever the program is still analyzable as a perfect nest:
/// [`unroll_and_jam_is_legal`] proves that moving `u` innermost cannot
/// reverse a dependence, which implies unroll-and-jam legality. Residue
/// guards introduced by an *earlier* unroll make the nest imperfect and
/// skip the check for subsequent unrolls; the static certifier
/// (`eco-verify` pass 2) re-proves the combined schedule against the
/// original kernel in that case.
///
/// # Errors
///
/// Fails if the loop is missing, has non-unit step, `factor` is zero,
/// an inner loop's bounds depend on `u`, or unrolling would reverse a
/// data dependence.
pub fn unroll_and_jam(program: &Program, u: VarId, factor: u64) -> Result<Program, TransformError> {
    if factor == 0 {
        return Err(TransformError::BadParameter("unroll factor 0".into()));
    }
    if let Ok(nest) = NestInfo::from_program(program) {
        let deps = dependences(&nest);
        if !unroll_and_jam_is_legal(&nest, &deps, u) {
            return Err(TransformError::IllegalOrder(format!(
                "unroll-and-jam of {} would reverse a data dependence",
                program.var(u).name
            )));
        }
    }
    let mut out = program.clone();
    let found = rewrite_loop(&mut out.body, u, &mut |l| unroll_one(l, factor))?;
    if !found {
        return Err(TransformError::LoopNotFound(program.var(u).name.clone()));
    }
    Ok(out)
}

/// Finds the loop binding `target` anywhere in `stmts` and replaces it
/// with `f(loop)`. Returns whether it was found.
// clippy suggests match guards here, but guards cannot borrow mutably
#[allow(clippy::collapsible_match)]
fn rewrite_loop(
    stmts: &mut Vec<Stmt>,
    target: VarId,
    f: &mut impl FnMut(Loop) -> Result<Vec<Stmt>, TransformError>,
) -> Result<bool, TransformError> {
    for i in 0..stmts.len() {
        match &mut stmts[i] {
            Stmt::For(l) if l.var == target => {
                let l = match std::mem::replace(
                    &mut stmts[i],
                    Stmt::Prefetch {
                        target: eco_ir::ArrayRef::new(eco_ir::ArrayId(0), vec![]),
                    },
                ) {
                    Stmt::For(l) => l,
                    _ => unreachable!(),
                };
                let repl = f(l)?;
                stmts.splice(i..=i, repl);
                return Ok(true);
            }
            Stmt::For(l) => {
                if rewrite_loop(&mut l.body, target, f)? {
                    return Ok(true);
                }
            }
            Stmt::If { then, .. } => {
                if rewrite_loop(then, target, f)? {
                    return Ok(true);
                }
            }
            _ => {}
        }
    }
    Ok(false)
}

fn unroll_one(l: Loop, factor: u64) -> Result<Vec<Stmt>, TransformError> {
    if l.step != 1 {
        return Err(TransformError::UnsupportedStep {
            loop_name: format!("var#{}", l.var.0),
            step: l.step,
        });
    }
    let divisible = provably_divisible(&l, factor);
    let jammed = jam(&l.body, l.var, factor, &l.hi, divisible)?;
    Ok(vec![Stmt::For(Loop {
        var: l.var,
        lo: l.lo,
        hi: l.hi,
        step: factor as i64,
        body: jammed,
    })])
}

/// True if `(hi - lo + 1) % factor == 0` can be proven (constant
/// bounds only).
fn provably_divisible(l: &Loop, factor: u64) -> bool {
    match (&l.lo, &l.hi) {
        (Bound::Affine(lo), Bound::Affine(hi)) => match (lo.as_const(), hi.as_const()) {
            (Some(a), Some(b)) if b >= a => ((b - a + 1) as u64).is_multiple_of(factor),
            _ => false,
        },
        _ => false,
    }
}

/// Produces the jammed body: copies of `body` for `u -> u + k`,
/// `k = 0..factor`, pushed through any leading perfect chain of inner
/// loops. Copies with `k > 0` are guarded by `u + k <= hi` unless the
/// trip count is provably divisible.
fn jam(
    body: &[Stmt],
    u: VarId,
    factor: u64,
    hi: &Bound,
    divisible: bool,
) -> Result<Vec<Stmt>, TransformError> {
    // Perfect chain: a single For whose bounds don't mention u — recurse
    // into it so the copies land inside.
    if let [Stmt::For(inner)] = body {
        if !inner.lo.uses(u) && !inner.hi.uses(u) {
            let inner_jammed = jam(&inner.body, u, factor, hi, divisible)?;
            return Ok(vec![Stmt::For(Loop {
                var: inner.var,
                lo: inner.lo.clone(),
                hi: inner.hi.clone(),
                step: inner.step,
                body: inner_jammed,
            })]);
        }
        return Err(TransformError::Invalid(
            "cannot jam: inner loop bounds depend on the unrolled variable".into(),
        ));
    }
    if body.iter().any(|s| matches!(s, Stmt::For(_))) {
        return Err(TransformError::Invalid(
            "cannot jam through a non-perfect loop body".into(),
        ));
    }
    let mut out = Vec::with_capacity(body.len() * factor as usize);
    for k in 0..factor {
        let shift = AffineExpr::var(u) + AffineExpr::constant(k as i64);
        let mut copy: Vec<Stmt> = body.to_vec();
        for s in &mut copy {
            s.subst_var(u, &shift);
        }
        if k == 0 || divisible {
            out.extend(copy);
        } else {
            out.push(Stmt::If {
                cond: Cond::le(shift, hi.clone()),
                then: copy,
            });
        }
    }
    Ok(out)
}
