//! Supplementary transformation tests: error paths, identity cases,
//! interactions between passes.

use eco_exec::{interpret, ArrayLayout, LayoutOptions, Params, Storage};
use eco_ir::{AffineExpr, Program};
use eco_kernels::Kernel;
use eco_transform::{
    copy_in, insert_prefetch, pad_leading_dimension, remove_prefetch, scalar_replace, tile_nest,
    unroll_and_jam, CopyDim, CopySpec, LoopSel, TileSpec, TransformError,
};

fn assert_equiv(reference: &Program, transformed: &Program, n: i64, output: &str) {
    let run = |p: &Program| {
        let params = Params::new().with_named(p, "N", n).expect("N");
        let layout = ArrayLayout::new(p, &params, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::seeded(&layout, 777);
        interpret(p, &params, &layout, &mut st).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        st
    };
    let want = run(reference);
    let got = run(transformed);
    let a = reference.array_by_name(output).expect("output");
    assert!(want.max_abs_diff(&got, a) < 1e-9, "{output} differs");
}

#[test]
fn unroll_factor_one_is_identity_semantics() {
    let k = Kernel::matmul();
    let i = k.program.var_by_name("I").expect("I");
    let u = unroll_and_jam(&k.program, i, 1).expect("uaj 1");
    assert_equiv(&k.program, &u, 8, "C");
}

#[test]
fn unroll_missing_loop_errors() {
    let k = Kernel::matmul();
    let n = k.program.var_by_name("N").expect("N");
    assert!(matches!(
        unroll_and_jam(&k.program, n, 2),
        Err(TransformError::LoopNotFound(_))
    ));
    let i = k.program.var_by_name("I").expect("I");
    assert!(matches!(
        unroll_and_jam(&k.program, i, 0),
        Err(TransformError::BadParameter(_))
    ));
}

#[test]
fn scalar_replace_requires_innermost() {
    let k = Kernel::matmul();
    let kv = k.program.var_by_name("K").expect("K");
    // K is outermost in the kernel: its body contains loops.
    let err = scalar_replace(&k.program, kv, None).expect_err("not innermost");
    assert!(matches!(err, TransformError::Invalid(_)), "{err}");
}

#[test]
fn scalar_replace_without_limit_still_works() {
    let k = Kernel::jacobi3d();
    let i = k.program.var_by_name("I").expect("I");
    let sr = scalar_replace(&k.program, i, None).expect("no limit");
    assert_equiv(&k.program, &sr, 8, "A");
}

#[test]
fn copy_rank_mismatch_errors() {
    let k = Kernel::matmul();
    let (kv, jv, iv) = (
        k.program.var_by_name("K").expect("K"),
        k.program.var_by_name("J").expect("J"),
        k.program.var_by_name("I").expect("I"),
    );
    let (tiled, controls) = tile_nest(
        &k.program,
        &[TileSpec { var: kv, tile: 4 }],
        &[
            LoopSel::Control(kv),
            LoopSel::Point(jv),
            LoopSel::Point(iv),
            LoopSel::Point(kv),
        ],
    )
    .expect("tile");
    let b = tiled.array_by_name("B").expect("B");
    let err = copy_in(
        &tiled,
        &CopySpec {
            at: controls[0],
            array: b,
            region: vec![CopyDim {
                lo: AffineExpr::var(controls[0]),
                extent: 4,
            }],
            buffer_name: "P".into(),
        },
    )
    .expect_err("rank mismatch");
    assert!(matches!(err, TransformError::Invalid(_)), "{err}");
}

#[test]
fn prefetch_invariant_array_errors_and_unknown_loop_errors() {
    let k = Kernel::matmul();
    let i = k.program.var_by_name("I").expect("I");
    let b = k.program.array_by_name("B").expect("B");
    // B[K,J] does not use I: nothing to prefetch along I.
    let err = insert_prefetch(&k.program, i, b, 4).expect_err("invariant");
    assert!(matches!(err, TransformError::Invalid(_)), "{err}");
    let a = k.program.array_by_name("A").expect("A");
    assert!(matches!(
        insert_prefetch(&k.program, i, a, 0),
        Err(TransformError::BadParameter(_))
    ));
}

#[test]
fn remove_prefetch_is_idempotent_and_selective() {
    let k = Kernel::jacobi3d();
    let i = k.program.var_by_name("I").expect("I");
    let a = k.program.array_by_name("A").expect("A");
    let b = k.program.array_by_name("B").expect("B");
    let p1 = insert_prefetch(&k.program, i, a, 2).expect("pf a");
    let p2 = insert_prefetch(&p1, i, b, 2).expect("pf b");
    let only_b = remove_prefetch(&p2, a);
    let mut has_a = false;
    let mut has_b = false;
    only_b.for_each_stmt(&mut |s| {
        if let eco_ir::Stmt::Prefetch { target } = s {
            has_a |= target.array == a;
            has_b |= target.array == b;
        }
    });
    assert!(!has_a && has_b);
    let none = remove_prefetch(&remove_prefetch(&only_b, b), b);
    assert_eq!(none, k.program);
}

#[test]
fn pad_rank_zero_errors() {
    let mut p = Program::new("r0");
    let a = p.add_array("Z", vec![]);
    assert!(pad_leading_dimension(&p, a, 4).is_err());
}

#[test]
fn two_level_tiling_of_same_loop_uses_distinct_controls() {
    // Tile K at 16, then re-tile the control region is not supported
    // directly, but tiling two loops of a 2-deep nest exercises the
    // fresh-name machinery (II, II2, ...).
    let k = Kernel::matvec();
    let (jv, iv) = (
        k.program.var_by_name("J").expect("J"),
        k.program.var_by_name("I").expect("I"),
    );
    let (tiled, controls) = tile_nest(
        &k.program,
        &[TileSpec { var: jv, tile: 5 }, TileSpec { var: iv, tile: 3 }],
        &[
            LoopSel::Control(jv),
            LoopSel::Control(iv),
            LoopSel::Point(i_or(jv, iv, true)),
            LoopSel::Point(i_or(jv, iv, false)),
        ],
    )
    .expect("tile");
    assert_eq!(controls.len(), 2);
    assert_equiv(&k.program, &tiled, 13, "Y");
}

fn i_or(j: eco_ir::VarId, i: eco_ir::VarId, first: bool) -> eco_ir::VarId {
    if first {
        j
    } else {
        i
    }
}

#[test]
fn full_pipeline_on_matvec_is_equivalent() {
    // The 2-deep nest: tile J, unroll I, scalar-replace Y in J.
    let k = Kernel::matvec();
    let (jv, iv) = (
        k.program.var_by_name("J").expect("J"),
        k.program.var_by_name("I").expect("I"),
    );
    let (tiled, _) = tile_nest(
        &k.program,
        &[TileSpec { var: jv, tile: 6 }],
        &[LoopSel::Control(jv), LoopSel::Point(iv), LoopSel::Point(jv)],
    )
    .expect("tile");
    let u = unroll_and_jam(&tiled, iv, 4).expect("uaj");
    let sr = scalar_replace(&u, jv, Some(32)).expect("scalar");
    for n in [7, 12, 24] {
        assert_equiv(&k.program, &sr, n, "Y");
    }
}
