//! A small, dependency-free, **offline** stand-in for the `criterion`
//! crate, providing the subset of its API this workspace's benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `iter`, and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment for this repository has no crates-registry
//! access, so the real `criterion` cannot be vendored. This harness
//! measures wall-clock time with `std::time::Instant`, reports
//! min/median/max per benchmark to stdout, and performs no statistical
//! analysis, warm-up tuning, or HTML reporting.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] whose `iter`
    /// closure is timed `sample_size` times.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut s = bencher.samples;
        s.sort();
        let fmt = |d: Duration| format!("{:.3?}", d);
        if s.is_empty() {
            println!("  {}/{id}: no samples", self.name);
        } else {
            println!(
                "  {}/{id}: min {} median {} max {} ({} samples)",
                self.name,
                fmt(s[0]),
                fmt(s[s.len() / 2]),
                fmt(s[s.len() - 1]),
                s.len()
            );
        }
        self
    }

    /// Ends the group (printing is incremental; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_prints() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(3).bench_function("count", |b| {
                b.iter(|| {
                    ran += 1;
                })
            });
            g.finish();
        }
        assert_eq!(ran, 3);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.benchmark_group("demo")
            .bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn macros_produce_callable_groups() {
        demo_group();
    }
}
