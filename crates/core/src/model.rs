//! A purely static cost model for variants — the kind of analytical
//! predictor the paper argues cannot replace empirical search.
//!
//! The estimate combines the classic ingredients (flop throughput, load
//! issue, per-level tile-footprint misses) using the same footprint
//! machinery Phase 1 uses for constraints. It deliberately ignores what
//! static models of the era ignored — conflict misses at particular
//! leading dimensions, TLB thrash patterns, prefetch/bandwidth
//! interactions — so comparing its variant ranking against measured
//! rankings (`repro modelrank`) demonstrates the paper's thesis: "the
//! search space is difficult to model analytically since performance can
//! vary dramatically with problem size and optimization parameters".

use crate::variant::{ParamValues, Variant};
use eco_analysis::footprint::{footprint_lines, footprint_pages, Trips};
use eco_analysis::NestInfo;
use eco_ir::{ArrayId, VarId};
use eco_machine::{MachineDesc, MemoryLevel};

/// A static (no-execution) cycle estimate for one variant at one
/// problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Estimated total cycles.
    pub cycles: f64,
    /// Estimated demand misses per cache level.
    pub misses: Vec<f64>,
    /// Estimated loads issued.
    pub loads: f64,
    /// Flops executed.
    pub flops: f64,
}

/// Statically estimates the cost of `variant` at parameter values
/// `params` and problem size `n`.
///
/// The model assumes: perfect exploitation of each level's retained
/// reuse (a tile is fetched exactly once per visit), no conflict
/// misses, no TLB effects, and loads reduced by register tiling
/// exactly as the unroll factors promise.
pub fn estimate(
    nest: &NestInfo,
    variant: &Variant,
    params: &ParamValues,
    machine: &MachineDesc,
    n: u64,
) -> CostEstimate {
    let vars = nest.loop_vars();
    let tile_trip = |v: VarId| -> u64 {
        variant
            .tile_param(v)
            .and_then(|nm| params.get(nm).copied())
            .unwrap_or(n)
            .min(n)
            .max(1)
    };
    let unroll_of = |v: VarId| -> u64 {
        variant
            .unroll_param(v)
            .and_then(|nm| params.get(nm).copied())
            .unwrap_or(1)
    };
    let total_iters: f64 = vars.iter().map(|_| n as f64).product();

    // Flops: body flops scale with total iterations.
    let body_flops: u64 = nest
        .refs
        .iter()
        .map(|r| u64::from(r.reads))
        .sum::<u64>()
        .max(1); // ~1 flop per load is the dense-kernel shape
    let flops = total_iters * body_flops as f64;

    // Loads: register tiling divides each reference's traffic by the
    // unroll product of the loops that do NOT index it (its exposed
    // reuse), and the register carrier's trip for invariant refs.
    let reg_carrier = variant.register_carrier();
    let mut loads = 0.0;
    for r in &nest.refs {
        let mut per_iter = f64::from(r.accesses());
        for &v in &vars {
            if unroll_of(v) > 1 && !r.uses(v) {
                per_iter /= unroll_of(v) as f64;
            }
        }
        if !r.uses(reg_carrier) {
            // invariant in the innermost loop: hoisted out of it
            per_iter /= tile_trip(reg_carrier) as f64;
        }
        loads += per_iter * total_iters;
    }

    // Per-level misses: each level's retained tile is fetched once per
    // visit; everything else streams. Misses(level) = lines(tile at
    // level) * number of tile visits = lines * (total iters / iters
    // covered by one tile residence).
    let mut misses = Vec::with_capacity(machine.caches.len());
    for (ci, cache) in machine.caches.iter().enumerate() {
        let level = MemoryLevel::Cache(ci);
        let Some(plan) = variant.levels.iter().find(|l| l.level == level) else {
            misses.push(0.0);
            continue;
        };
        let line_elems = (cache.line_bytes / 8) as u64;
        // Tile region: tiled loops at their tile size, the carrier at 1
        // (reuse is across the carrier), everything else full.
        let mut trips = Trips::with_default(1);
        for &v in &vars {
            let t = if v == plan.carrier { 1 } else { tile_trip(v) };
            trips = trips.set(v, t);
        }
        let tile_lines = footprint_lines(nest, &plan.retained, &trips, line_elems) as f64;
        // Visits: the iteration space divided by what one residence
        // covers (the tile's iterations times the carrier's trips).
        let mut covered: f64 = plan.carrier_trip(n) as f64;
        for &v in &vars {
            if v != plan.carrier {
                covered *= tile_trip(v) as f64;
            }
        }
        let visits = (total_iters / covered.max(1.0)).max(1.0);
        // Streaming traffic for the non-retained references.
        let others: Vec<usize> = (0..nest.refs.len())
            .filter(|r| !plan.retained.contains(r))
            .collect();
        let mut stream_trips = Trips::with_default(1);
        for &v in &vars {
            stream_trips = stream_trips.set(v, n);
        }
        let stream_lines = if ci + 1 == machine.caches.len() {
            // last level: each distinct line once per sweep of reuse
            footprint_lines(nest, &others, &stream_trips, line_elems) as f64
        } else {
            footprint_lines(nest, &others, &stream_trips, line_elems) as f64
                * (n as f64 / tile_trip(plan.carrier).max(1) as f64).max(1.0)
        };
        misses.push(tile_lines * visits + stream_lines);
    }

    let cost = &machine.cost;
    let mut cycles = flops * cost.flop_cycles_x1000 as f64 / 1000.0
        + loads * cost.mem_issue_cycles_x1000 as f64 / 1000.0
        + total_iters * cost.loop_overhead_cycles_x1000 as f64 / 1000.0 / 4.0;
    for (ci, m) in misses.iter().enumerate() {
        cycles += m * machine.caches[ci].miss_penalty_cycles as f64;
    }
    if let Some(last) = misses.last() {
        cycles += last * cost.memory_bandwidth_cycles_per_line_x1000 as f64 / 1000.0;
    }
    CostEstimate {
        cycles,
        misses,
        loads,
        flops,
    }
}

/// The static model's prediction attributed to one array reference —
/// the analytical counterpart of the simulator's per-tag `Counters`,
/// which `eco report` joins into its model-vs-simulated attribution
/// tables.
#[derive(Debug, Clone, PartialEq)]
pub struct RefEstimate {
    /// Index of the reference in [`NestInfo::refs`].
    pub ref_index: usize,
    /// The array the reference touches.
    pub array: ArrayId,
    /// Predicted loads/stores issued by this reference (after register
    /// tiling).
    pub loads: f64,
    /// Predicted demand misses per cache level.
    pub misses: Vec<f64>,
    /// Predicted TLB misses (compulsory page walks — the model ignores
    /// thrash, which is exactly where it can mislead the search).
    pub tlb_misses: f64,
}

/// Statically attributes the [`estimate`] model per array reference.
///
/// Each reference is costed in isolation with the same per-level
/// retained-tile / streaming split `estimate` applies to the whole
/// nest. References that `estimate` folds into one uniformly-generated
/// group are costed individually here, so the per-reference miss sum
/// can exceed the grouped whole-nest figure — attribution is a lens on
/// the model, not a partition of it.
pub fn estimate_refs(
    nest: &NestInfo,
    variant: &Variant,
    params: &ParamValues,
    machine: &MachineDesc,
    n: u64,
) -> Vec<RefEstimate> {
    let vars = nest.loop_vars();
    let tile_trip = |v: VarId| -> u64 {
        variant
            .tile_param(v)
            .and_then(|nm| params.get(nm).copied())
            .unwrap_or(n)
            .min(n)
            .max(1)
    };
    let unroll_of = |v: VarId| -> u64 {
        variant
            .unroll_param(v)
            .and_then(|nm| params.get(nm).copied())
            .unwrap_or(1)
    };
    let total_iters: f64 = vars.iter().map(|_| n as f64).product();
    let reg_carrier = variant.register_carrier();
    let page_elems = (machine.tlb.page_bytes / 8) as u64;
    let mut full_trips = Trips::with_default(1);
    for &v in &vars {
        full_trips = full_trips.set(v, n);
    }

    nest.refs
        .iter()
        .enumerate()
        .map(|(ri, r)| {
            // Loads: the same register-tiling reduction `estimate`
            // applies, for this reference alone.
            let mut per_iter = f64::from(r.accesses());
            for &v in &vars {
                if unroll_of(v) > 1 && !r.uses(v) {
                    per_iter /= unroll_of(v) as f64;
                }
            }
            if !r.uses(reg_carrier) {
                per_iter /= tile_trip(reg_carrier) as f64;
            }
            let loads = per_iter * total_iters;

            // Per-level misses: retained references pay their tile
            // footprint once per visit; the rest stream.
            let mut misses = Vec::with_capacity(machine.caches.len());
            for (ci, cache) in machine.caches.iter().enumerate() {
                let level = MemoryLevel::Cache(ci);
                let Some(plan) = variant.levels.iter().find(|l| l.level == level) else {
                    misses.push(0.0);
                    continue;
                };
                let line_elems = (cache.line_bytes / 8) as u64;
                if plan.retained.contains(&ri) {
                    let mut trips = Trips::with_default(1);
                    for &v in &vars {
                        let t = if v == plan.carrier { 1 } else { tile_trip(v) };
                        trips = trips.set(v, t);
                    }
                    let tile_lines = footprint_lines(nest, &[ri], &trips, line_elems) as f64;
                    let mut covered: f64 = n as f64; // carrier runs full
                    for &v in &vars {
                        if v != plan.carrier {
                            covered *= tile_trip(v) as f64;
                        }
                    }
                    let visits = (total_iters / covered.max(1.0)).max(1.0);
                    misses.push(tile_lines * visits);
                } else {
                    let lines = footprint_lines(nest, &[ri], &full_trips, line_elems) as f64;
                    let sweeps = if ci + 1 == machine.caches.len() {
                        1.0
                    } else {
                        (n as f64 / tile_trip(plan.carrier).max(1) as f64).max(1.0)
                    };
                    misses.push(lines * sweeps);
                }
            }

            // TLB: compulsory pages of the full-size walk only.
            let tlb_misses = footprint_pages(nest, &[ri], &full_trips, page_elems, n) as f64;
            RefEstimate {
                ref_index: ri,
                array: r.array,
                loads,
                misses,
                tlb_misses,
            }
        })
        .collect()
}

impl crate::variant::LevelPlan {
    /// The carrier loop's trip count at problem size `n` (full size;
    /// carriers are not themselves tiled by their own level).
    fn carrier_trip(&self, n: u64) -> u64 {
        let _ = self;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive_variants, Optimizer};
    use eco_kernels::Kernel;

    #[test]
    fn estimate_is_finite_positive_and_size_monotone() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::matmul();
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let variants = derive_variants(&nest, &machine, &kernel.program);
        let opt = Optimizer::new(machine.clone());
        for v in variants.iter().take(4) {
            let params = opt.initial_params(v);
            let small = estimate(&nest, v, &params, &machine, 32);
            let large = estimate(&nest, v, &params, &machine, 128);
            assert!(small.cycles.is_finite() && small.cycles > 0.0, "{}", v.name);
            assert!(
                large.cycles > small.cycles,
                "{}: {} !> {}",
                v.name,
                large.cycles,
                small.cycles
            );
            assert!(small.flops > 0.0);
            assert_eq!(small.misses.len(), machine.caches.len());
        }
    }

    #[test]
    fn per_reference_attribution_is_finite_and_covers_every_ref() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::matmul();
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let variants = derive_variants(&nest, &machine, &kernel.program);
        let opt = Optimizer::new(machine.clone());
        let v = &variants[0];
        let params = opt.initial_params(v);
        let refs = estimate_refs(&nest, v, &params, &machine, 96);
        assert_eq!(refs.len(), nest.refs.len());
        let whole = estimate(&nest, v, &params, &machine, 96);
        let load_sum: f64 = refs.iter().map(|r| r.loads).sum();
        assert!((load_sum - whole.loads).abs() < 1e-6 * whole.loads.max(1.0));
        for r in &refs {
            assert_eq!(r.misses.len(), machine.caches.len());
            assert!(r.loads.is_finite() && r.loads > 0.0);
            assert!(r.tlb_misses.is_finite() && r.tlb_misses > 0.0);
            assert!(r.misses.iter().all(|m| m.is_finite() && *m >= 0.0));
        }
    }

    #[test]
    fn estimate_prefers_tiled_over_degenerate_tiles() {
        // A 1x1 tile should look worse to the model than a balanced one.
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::matmul();
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let variants = derive_variants(&nest, &machine, &kernel.program);
        let opt = Optimizer::new(machine.clone());
        let v = &variants[0];
        let good = opt.initial_params(v);
        let mut bad = good.clone();
        for nm in v.param_names() {
            if nm.starts_with('T') {
                bad.insert(nm, 1);
            }
        }
        let g = estimate(&nest, v, &good, &machine, 96);
        let b = estimate(&nest, v, &bad, &machine, 96);
        assert!(
            g.cycles < b.cycles,
            "balanced {} must beat degenerate {}",
            g.cycles,
            b.cycles
        );
    }
}
