//! Deterministic run manifests.
//!
//! A manifest is the reproducibility contract of one optimization run:
//! everything that identifies the run (kernel, machine model, search
//! options, engine configuration) plus everything it decided (per-stage
//! point counts, the selected point and its lineage), rendered through
//! the order-preserving [`Json`] builder so that **two runs with the
//! same inputs produce byte-identical manifests** — at any thread
//! count, because nothing latency-dependent (timestamps, thread counts,
//! wall times) is recorded. `repro check` and CI diff these bytes
//! against the committed golden manifests.

use crate::api::TuneResponse;
use crate::search::SearchOptions;
use eco_exec::events::{Fnv64, Json};
use eco_exec::{program_fingerprint, EngineConfig, ExecBackend};
use eco_machine::MachineDesc;
use std::hash::{Hash, Hasher as _};

/// Format version stamped into every manifest; bump on any field or
/// rendering change so drift is self-describing.
///
/// Version 2 added the `options.certify` flag and the
/// `search.points_certified` / `search.points_rejected` counters of the
/// static certification pass.
pub const MANIFEST_VERSION: u64 = 2;

/// The stable content fingerprint of a machine description — the same
/// value the engine folds into every memo key.
pub fn machine_fingerprint(machine: &MachineDesc) -> u64 {
    let mut h = Fnv64::new();
    machine.hash(&mut h);
    h.finish()
}

/// Builds the run manifest for one optimization run.
///
/// `kernel` is the kernel name as the caller knows it (e.g. `"mm"`);
/// `engine` is the configuration the run's [`Engine`](crate::Engine)
/// was built from — only its deterministic fields (backend, memoize)
/// are recorded, never the thread count. The `options` object is
/// [`SearchOptions::to_json`] verbatim, so the serialized options in a
/// manifest and in a [`TuneRequest`](crate::TuneRequest) are the same
/// bytes.
pub fn run_manifest(
    kernel: &str,
    machine: &MachineDesc,
    opts: &SearchOptions,
    engine: &EngineConfig,
    report: &TuneResponse,
) -> Json {
    let tuned = &report.tuned;
    let backend = match engine.backend {
        ExecBackend::Compiled => "compiled",
        ExecBackend::Reference => "reference",
    };
    let options = opts.to_json();
    // ParamValues is a BTreeMap, so parameter order is deterministic.
    let mut params = Json::obj();
    for (name, value) in &tuned.params {
        params = params.field(name, Json::UInt(*value));
    }
    let prefetches = Json::Arr(
        tuned
            .prefetches
            .iter()
            .map(|(array, d)| {
                Json::obj()
                    .field("array", Json::str(array))
                    .field("distance", Json::Int(*d))
            })
            .collect(),
    );
    let mut per_stage = Json::obj();
    for (stage, points) in &tuned.stats.per_stage {
        per_stage = per_stage.field(stage, Json::UInt(*points as u64));
    }
    let lineage = Json::Arr(
        tuned
            .stats
            .lineage
            .iter()
            .map(|step| {
                Json::obj()
                    .field("stage", Json::str(&step.stage))
                    .field("cycles", Json::UInt(step.cycles))
            })
            .collect(),
    );
    Json::obj()
        .field("manifest_version", Json::UInt(MANIFEST_VERSION))
        .field("kernel", Json::str(kernel))
        .field(
            "machine",
            Json::obj().field("name", Json::str(&machine.name)).field(
                "fingerprint",
                Json::fingerprint(machine_fingerprint(machine)),
            ),
        )
        .field("options", options)
        .field(
            "engine",
            Json::obj()
                .field("backend", Json::str(backend))
                .field("memoize", Json::Bool(engine.memoize)),
        )
        .field(
            "search",
            Json::obj()
                .field("points", Json::UInt(tuned.stats.points as u64))
                .field(
                    "variants_derived",
                    Json::UInt(tuned.stats.variants_derived as u64),
                )
                .field(
                    "variants_searched",
                    Json::UInt(tuned.stats.variants_searched as u64),
                )
                .field(
                    "points_certified",
                    Json::UInt(tuned.stats.points_certified as u64),
                )
                .field(
                    "points_rejected",
                    Json::UInt(tuned.stats.points_rejected as u64),
                )
                .field("per_stage", per_stage),
        )
        .field(
            "engine_stats",
            Json::obj()
                .field("requested", Json::UInt(report.engine.requested))
                .field("evaluated", Json::UInt(report.engine.evaluated))
                .field("cache_hits", Json::UInt(report.engine.cache_hits))
                .field("errors", Json::UInt(report.engine.errors)),
        )
        .field(
            "selected",
            Json::obj()
                .field("variant", Json::str(&tuned.variant.name))
                .field("params", params)
                .field("prefetches", prefetches)
                .field(
                    "program_fingerprint",
                    Json::fingerprint(program_fingerprint(&tuned.program)),
                )
                .field("cycles", Json::UInt(tuned.counters.cycles()))
                .field("lineage", lineage),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TuneRequest;
    use eco_kernels::Kernel;

    fn tiny_run(threads: usize) -> (TuneResponse, MachineDesc, SearchOptions, EngineConfig) {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let opts = SearchOptions::builder()
            .search_n(16)
            .max_variants(1)
            .build()
            .expect("options");
        let config = EngineConfig::new().threads(threads);
        let report = TuneRequest::new(Kernel::matmul(), machine.clone())
            .options(opts.clone())
            .engine(config.clone())
            .run()
            .expect("tuned");
        (report, machine, opts, config)
    }

    #[test]
    fn manifest_is_byte_identical_across_runs_and_thread_counts() {
        let (r1, machine, opts, config1) = tiny_run(1);
        let (r2, _, _, _) = tiny_run(1);
        let (r3, _, _, config3) = tiny_run(3);
        let m1 = run_manifest("mm", &machine, &opts, &config1, &r1).render();
        let m2 = run_manifest("mm", &machine, &opts, &config1, &r2).render();
        let m3 = run_manifest("mm", &machine, &opts, &config3, &r3).render();
        assert_eq!(m1, m2, "same inputs must render identical bytes");
        assert_eq!(m1, m3, "thread count must not leak into the manifest");
        assert!(!m1.contains("threads"), "{m1}");
    }

    #[test]
    fn manifest_records_run_identity_and_outcome() {
        let (report, machine, opts, config) = tiny_run(1);
        let text = run_manifest("mm", &machine, &opts, &config, &report).render();
        for needle in [
            "\"manifest_version\": 2",
            "\"certify\"",
            "\"points_certified\"",
            "\"kernel\": \"mm\"",
            "\"fingerprint\": \"0x",
            "\"backend\": \"compiled\"",
            "\"strategy\": {\n      \"name\": \"guided\"\n    }",
            "\"per_stage\"",
            "\"program_fingerprint\"",
            "\"lineage\"",
            "\"stage\": \"screen\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(
            text.matches("\"cycles\"").count() >= 2,
            "selected cycles + lineage cycles:\n{text}"
        );
        assert!(
            text.contains(&format!("\"points\": {}", report.tuned.stats.points)),
            "{text}"
        );
    }
}
