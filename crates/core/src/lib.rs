//! ECO: combining compiler models and guided empirical search to
//! optimize for multiple levels of the memory hierarchy.
//!
//! This crate is the paper's primary contribution, reproduced:
//!
//! * **Phase 1** — [`derive_variants`] (Figure 3) uses reuse analysis,
//!   footprint models and profitability heuristics from `eco-analysis`
//!   to produce a *small* set of parameterized variants, each with
//!   symbolic constraints (`UI*UJ <= 32`) on its parameters;
//! * **Phase 2** — [`TuneRequest::run`] performs the model-guided
//!   empirical search of §3.2: staged tile-shape/footprint search,
//!   per-data-structure prefetch search, and post-prefetch tile
//!   adjustment, executing every candidate on the simulated machine and
//!   selecting by measured cycles. Candidates are submitted in batches
//!   to an [`Evaluator`] — by default the parallel memoized [`Engine`]
//!   from `eco-exec` — and every search decision is made from results
//!   in submission order, so the outcome is independent of thread count.
//!
//! One request/response pair — [`TuneRequest`]/[`TuneResponse`] — is
//! the API for a tuning run everywhere: tests, the `eco` and `repro`
//! CLIs, and the `eco serve` daemon all build the same type, and it
//! serializes through the deterministic [`events::Json`] builder for
//! logging, replay and fingerprinting.
//!
//! # Examples
//!
//! Tune Matrix Multiply for a scaled-down SGI R10000:
//!
//! ```
//! use eco_core::{SearchOptions, TuneRequest};
//! use eco_kernels::Kernel;
//! use eco_machine::MachineDesc;
//!
//! # fn main() -> Result<(), eco_core::EcoError> {
//! let machine = MachineDesc::sgi_r10000().scaled(32);
//! let options = SearchOptions::builder()
//!     .search_n(24) // keep the doctest fast
//!     .max_variants(1)
//!     .build()?;
//! let response = TuneRequest::new(Kernel::matmul(), machine)
//!     .options(options)
//!     .run()?;
//! assert!(response.tuned.stats.points > 0);
//! assert!(response.engine.evaluated > 0);
//! println!("{}", response.tuned.program);
//! # Ok(())
//! # }
//! ```

mod api;
mod codegen;
mod lint;
pub mod manifest;
pub mod model;
mod search;
pub mod sweep;
mod variant;

pub use api::{machine_from_json, machine_to_json, TuneRequest, TuneResponse, API_VERSION};
pub use codegen::generate;
pub use lint::{lint_kernel, lint_sched, LintEntry};
pub use manifest::{machine_fingerprint, run_manifest};
pub use search::{
    stages, strategy_name, LineageStep, Optimizer, SearchOptions, SearchOptionsBuilder,
    SearchStats, SearchStrategy, Tuned,
};
pub use sweep::{FamilySpec, Shard, ShardKind, SweepPlan, SweepSpec, PLAN_VERSION};
pub use variant::{
    derive_variants, describe_variant, Constraint, CopyPlan, LevelPlan, ParamValues, Variant,
};

/// Evaluation-engine surface re-exported for downstream crates: the
/// search, the baselines and the benches all consume the same
/// [`Evaluator`] API.
pub use eco_exec::{Engine, EngineConfig, EngineStats, EvalJob, Evaluator, ExecBackend};

/// The structured observability layer (event streams, spans, the
/// deterministic JSON used by run manifests), re-exported from
/// `eco-exec` so callers address one crate.
pub use eco_exec::events;

use eco_analysis::NestError;
use eco_exec::ExecError;
use eco_transform::TransformError;
use std::error::Error;
use std::fmt;

/// Errors from the ECO optimizer.
#[derive(Debug)]
pub enum EcoError {
    /// A transformation pass failed.
    Transform(TransformError),
    /// Executing a candidate failed.
    Exec(ExecError),
    /// The kernel is not analyzable.
    Nest(NestError),
    /// Parameter values are missing or malformed.
    BadParams(String),
    /// Parameter values violate the variant's constraints.
    Infeasible,
    /// No variant could be derived or measured.
    NoVariants,
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::Transform(e) => write!(f, "transformation failed: {e}"),
            EcoError::Exec(e) => write!(f, "execution failed: {e}"),
            EcoError::Nest(e) => write!(f, "analysis failed: {e}"),
            EcoError::BadParams(m) => write!(f, "bad parameters: {m}"),
            EcoError::Infeasible => write!(f, "parameter values violate constraints"),
            EcoError::NoVariants => write!(f, "no feasible variant"),
        }
    }
}

impl Error for EcoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcoError::Transform(e) => Some(e),
            EcoError::Exec(e) => Some(e),
            EcoError::Nest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for EcoError {
    fn from(e: TransformError) -> Self {
        EcoError::Transform(e)
    }
}

impl From<ExecError> for EcoError {
    fn from(e: ExecError) -> Self {
        EcoError::Exec(e)
    }
}

impl From<NestError> for EcoError {
    fn from(e: NestError) -> Self {
        EcoError::Nest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_analysis::NestInfo;
    use eco_exec::{interpret, measure, ArrayLayout, LayoutOptions, Params, Storage};
    use eco_kernels::Kernel;
    use eco_machine::{MachineDesc, MemoryLevel};

    fn mm_variants() -> (Kernel, NestInfo, Vec<Variant>, MachineDesc) {
        let k = Kernel::matmul();
        let nest = NestInfo::from_program(&k.program).expect("analyzable");
        let machine = MachineDesc::sgi_r10000();
        let vs = derive_variants(&nest, &machine, &k.program);
        (k, nest, vs, machine)
    }

    #[test]
    fn mm_variants_include_table4_v2_shape() {
        let (k, nest, vs, _) = mm_variants();
        assert!(!vs.is_empty());
        // Every variant has K as the register carrier with UI*UJ <= 32.
        let kv = k.program.var_by_name("K").expect("K");
        for v in &vs {
            assert_eq!(v.register_carrier(), kv, "{}", v.name);
            let reg = &v.levels[0];
            assert_eq!(reg.constraint.bound, 32);
            let mut fs = reg.constraint.factors.clone();
            fs.sort();
            assert_eq!(fs, vec!["UI".to_string(), "UJ".to_string()]);
        }
        // Some variant matches Table 4's v2: L1 carrier J retaining A
        // with copy, L2 carrier I retaining B with copy, TJ*TK bound at
        // the L2 level.
        let jv = k.program.var_by_name("J").expect("J");
        let iv = k.program.var_by_name("I").expect("I");
        let a = k.program.array_by_name("A").expect("A");
        let b = k.program.array_by_name("B").expect("B");
        let v2 = vs
            .iter()
            .find(|v| {
                v.levels.len() == 3
                    && v.levels[1].carrier == jv
                    && v.levels[2].carrier == iv
                    && v.levels[1].copy.as_ref().map(|c| c.array) == Some(a)
                    && v.levels[2].copy.as_ref().map(|c| c.array) == Some(b)
            })
            .unwrap_or_else(|| {
                panic!(
                    "no v2-shaped variant in {:?}",
                    vs.iter()
                        .map(|v| describe_variant(v, &nest, &k.program))
                        .collect::<Vec<_>>()
                )
            });
        // L1 tiles I and K, L2 tiles J (TK shared with L1).
        let l1_tiles: Vec<&str> = v2.levels[1].tiles.iter().map(|(_, n)| n.as_str()).collect();
        assert!(
            l1_tiles.contains(&"TI") && l1_tiles.contains(&"TK"),
            "{l1_tiles:?}"
        );
        let l2_factors = &v2.levels[2].constraint.factors;
        assert!(
            l2_factors.contains(&"TJ".to_string()) && l2_factors.contains(&"TK".to_string()),
            "{l2_factors:?}"
        );
        // Table 4 numbers: L1 2-way 32KB -> (n-1)/n * capacity = 2048
        // doubles; L2 2-way 1MB -> 65536 doubles.
        assert_eq!(v2.levels[1].constraint.bound, 2048);
        assert_eq!(v2.levels[2].constraint.bound, 65536);
    }

    #[test]
    fn mm_variant_v1_shape_exists() {
        let (k, _, vs, _) = mm_variants();
        let iv = k.program.var_by_name("I").expect("I");
        let b = k.program.array_by_name("B").expect("B");
        // v1: L1 carrier I retaining (and copying) B, TJ*TK <= 2048.
        let v1 = vs
            .iter()
            .find(|v| {
                v.levels[1].carrier == iv && v.levels[1].copy.as_ref().map(|c| c.array) == Some(b)
            })
            .expect("v1-shaped variant");
        let mut fs = v1.levels[1].constraint.factors.clone();
        fs.sort();
        assert_eq!(fs, vec!["TJ".to_string(), "TK".to_string()]);
    }

    #[test]
    fn jacobi_produces_multiple_register_carriers() {
        let k = Kernel::jacobi3d();
        let nest = NestInfo::from_program(&k.program).expect("analyzable");
        let machine = MachineDesc::sgi_r10000();
        let vs = derive_variants(&nest, &machine, &k.program);
        let mut carriers: Vec<_> = vs.iter().map(|v| v.register_carrier()).collect();
        carriers.sort();
        carriers.dedup();
        assert_eq!(carriers.len(), 3, "all three loops carry temporal reuse");
        // No copy plans: Jacobi regions are never fully tiled (the paper:
        // copying has too much overhead to be profitable).
        assert!(vs.iter().all(|v| v.levels.iter().all(|l| l.copy.is_none())));
    }

    #[test]
    fn describe_variant_mentions_transforms() {
        let (k, nest, vs, _) = mm_variants();
        let s = describe_variant(&vs[0], &nest, &k.program);
        assert!(s.contains("Unroll-and-jam"), "{s}");
        assert!(s.contains("Reg"), "{s}");
    }

    #[test]
    fn constraints_hold_and_fail() {
        let c = Constraint {
            factors: vec!["UI".into(), "UJ".into()],
            bound: 32,
        };
        let mut p = ParamValues::new();
        p.insert("UI".into(), 4);
        p.insert("UJ".into(), 8);
        assert!(c.holds(&p));
        p.insert("UJ".into(), 16);
        assert!(!c.holds(&p));
        assert_eq!(c.to_string(), "UI*UJ <= 32");
    }

    #[test]
    fn generated_code_is_equivalent_to_kernel() {
        let (k, nest, vs, machine) = mm_variants();
        // Use the optimizer's initial params for each variant; check
        // numeric equivalence at an edge-tile-heavy size.
        let opt = Optimizer::new(machine.clone());
        for v in vs.iter().take(6) {
            let params = opt.initial_params(v);
            let program = generate(&k, &nest, v, &params, &machine)
                .unwrap_or_else(|e| panic!("{}: {e}", v.name));
            program.validate().expect("valid");
            let n = 19;
            let run = |p: &eco_ir::Program| {
                let pr = Params::new().with(k.size, n);
                let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
                let mut st = Storage::seeded(&layout, 7);
                interpret(p, &pr, &layout, &mut st).expect("run");
                st
            };
            let want = run(&k.program);
            let got = run(&program);
            let c = k.program.array_by_name("C").expect("C");
            assert!(
                want.max_abs_diff(&got, c) < 1e-9,
                "{} differs:\n{program}",
                v.name
            );
        }
    }

    #[test]
    fn generate_rejects_infeasible_params() {
        let (k, nest, vs, machine) = mm_variants();
        let mut params = Optimizer::new(machine.clone()).initial_params(&vs[0]);
        params.insert("UI".into(), 16);
        params.insert("UJ".into(), 16); // 256 > 32 registers
        match generate(&k, &nest, &vs[0], &params, &machine) {
            Err(EcoError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
        let mut missing = Optimizer::new(machine.clone()).initial_params(&vs[0]);
        missing.remove("UI");
        assert!(matches!(
            generate(&k, &nest, &vs[0], &missing, &machine),
            Err(EcoError::BadParams(_))
        ));
    }

    #[test]
    fn stages_group_shared_tile_params() {
        let (_, _, vs, _) = mm_variants();
        for v in &vs {
            let st = stages(v);
            assert!(!st.is_empty());
            // first stage is the register unrolls
            assert!(st[0].iter().all(|n| n.starts_with('U')));
            // TK appears in exactly one stage even when shared by levels
            let tk_stages = st.iter().filter(|s| s.contains(&"TK".to_string())).count();
            assert!(tk_stages <= 1, "{st:?}");
        }
    }

    #[test]
    fn optimize_matmul_beats_naive_on_scaled_machine() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let opts = SearchOptions {
            search_n: 40,
            max_variants: 3,
            ..SearchOptions::default()
        };
        let kernel = Kernel::matmul();
        let report = TuneRequest::new(kernel.clone(), machine.clone())
            .options(opts)
            .run()
            .expect("optimize");
        let tuned = report.tuned;
        // The staged search revisits points; the engine must serve them
        // from its memo cache instead of re-simulating.
        assert!(report.engine.cache_hits > 0, "{:?}", report.engine);
        assert!(report.engine.evaluated > 0);
        let naive = measure(
            &kernel.program,
            &Params::new().with(kernel.size, 40),
            &machine,
            &LayoutOptions::default(),
        )
        .expect("measure naive");
        assert!(
            tuned.counters.cycles() * 2 < naive.cycles(),
            "tuned {} vs naive {}",
            tuned.counters.cycles(),
            naive.cycles()
        );
        assert!(tuned.stats.points > 5);
        assert!(tuned.stats.points < 500, "{}", tuned.stats.points);
        assert!(tuned.stats.variants_derived >= tuned.stats.variants_searched);
        // The tuned program stays numerically correct.
        let n = 23;
        let run = |p: &eco_ir::Program| {
            let pr = Params::new().with(kernel.size, n);
            let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 99);
            interpret(p, &pr, &layout, &mut st).expect("run");
            st
        };
        let want = run(&kernel.program);
        let got = run(&tuned.program);
        let c = kernel.program.array_by_name("C").expect("C");
        assert!(want.max_abs_diff(&got, c) < 1e-9);
    }

    #[test]
    fn optimize_jacobi_beats_naive_on_scaled_machine() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let opts = SearchOptions {
            search_n: 30,
            max_variants: 3,
            ..SearchOptions::default()
        };
        let kernel = Kernel::jacobi3d();
        let tuned = TuneRequest::new(kernel.clone(), machine.clone())
            .options(opts)
            .run()
            .expect("optimize")
            .tuned;
        let naive = measure(
            &kernel.program,
            &Params::new().with(kernel.size, 30),
            &machine,
            &LayoutOptions::default(),
        )
        .expect("measure naive");
        assert!(
            tuned.counters.cycles() < naive.cycles(),
            "tuned {} vs naive {}",
            tuned.counters.cycles(),
            naive.cycles()
        );
    }

    #[test]
    fn register_level_variant_levels_are_ordered() {
        let (_, _, vs, _) = mm_variants();
        for v in &vs {
            assert_eq!(v.levels[0].level, MemoryLevel::Register);
            for (i, l) in v.levels[1..].iter().enumerate() {
                assert_eq!(l.level, MemoryLevel::Cache(i));
            }
        }
    }

    #[test]
    fn grid_and_random_strategies_work_and_cost_more() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::matmul();
        let mk = |strategy: SearchStrategy| {
            let opts = SearchOptions {
                search_n: 32,
                max_variants: 1,
                strategy,
                ..SearchOptions::default()
            };
            TuneRequest::new(kernel.clone(), machine.clone())
                .options(opts)
                .run()
                .expect("optimize")
                .tuned
        };
        let guided = mk(SearchStrategy::Guided);
        let grid = mk(SearchStrategy::Grid { max_points: 200 });
        let random = mk(SearchStrategy::Random {
            points: 40,
            seed: 7,
        });
        // All strategies find something correct and comparable; the
        // guided search uses model knowledge to stay cheap.
        assert!(guided.stats.points < grid.stats.points);
        let g = guided.counters.cycles() as f64;
        let b = grid.counters.cycles() as f64;
        let r = random.counters.cycles() as f64;
        assert!(g <= 1.25 * b, "guided {g} vs grid {b}");
        // Random sampling lands in the same ballpark (prefetch phases
        // make exact dominance between grid and random non-monotonic).
        assert!(r <= 1.5 * b, "random {r} vs grid {b}");
        // Determinism of the random strategy.
        let random2 = mk(SearchStrategy::Random {
            points: 40,
            seed: 7,
        });
        assert_eq!(random.params, random2.params);
    }

    #[test]
    fn tlb_pruning_rejects_oversized_tiles_and_keeps_search_working() {
        use eco_analysis::NestInfo;
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let kernel = Kernel::jacobi3d();
        let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
        let opt = {
            let mut o = Optimizer::new(machine.clone());
            o.opts.search_n = 36;
            o
        };
        let variants = derive_variants(&nest, &machine, &kernel.program);
        let n = 36u64;
        let feasible = variants
            .iter()
            .filter(|v| opt.tlb_feasible(&nest, v, n))
            .count();
        assert!(feasible > 0, "some variant must survive");
        assert!(
            feasible < variants.len(),
            "the TLB model must prune something for 3-D Jacobi ({feasible}/{})",
            variants.len()
        );
        // And optimization still works with pruning on.
        let opts = SearchOptions {
            search_n: 30,
            max_variants: 2,
            tlb_prune: true,
            ..SearchOptions::default()
        };
        let tuned = TuneRequest::new(kernel.clone(), machine.clone())
            .options(opts)
            .run()
            .expect("optimize with pruning")
            .tuned;
        assert!(tuned.stats.points > 0);
    }

    #[test]
    fn builder_validates_budgets_and_robustness_sizes() {
        let ok = SearchOptions::builder()
            .search_n(24)
            .max_variants(2)
            .robustness_sizes(vec![32])
            .build()
            .expect("valid options");
        assert_eq!(ok.search_n, 24);
        assert_eq!(ok.robustness_sizes, vec![32]);
        assert!(SearchOptions::builder().search_n(0).build().is_err());
        assert!(SearchOptions::builder().max_variants(0).build().is_err());
        assert!(SearchOptions::builder()
            .prefetch_distances(Vec::new())
            .build()
            .is_err());
        assert!(SearchOptions::builder()
            .prefetch_distances(vec![0])
            .build()
            .is_err());
        assert!(SearchOptions::builder()
            .robustness_sizes(Vec::new())
            .build()
            .is_err());
        assert!(SearchOptions::builder()
            .strategy(SearchStrategy::Grid { max_points: 0 })
            .build()
            .is_err());
        assert!(SearchOptions::builder()
            .strategy(SearchStrategy::Random { points: 0, seed: 1 })
            .build()
            .is_err());
        // run() re-validates hand-edited options.
        let opts = SearchOptions {
            search_n: -3,
            ..SearchOptions::default()
        };
        assert!(matches!(
            TuneRequest::new(Kernel::matmul(), MachineDesc::sgi_r10000().scaled(32))
                .options(opts)
                .run(),
            Err(EcoError::BadParams(_))
        ));
    }

    #[test]
    fn run_with_rejects_engine_for_a_different_machine() {
        let opt = Optimizer::new(MachineDesc::sgi_r10000().scaled(32));
        let wrong = Engine::new(MachineDesc::ultrasparc_iie().scaled(32));
        assert!(matches!(
            opt.run_with(&Kernel::matmul(), &wrong),
            Err(EcoError::BadParams(_))
        ));
    }

    #[test]
    fn shared_engine_turns_repeat_runs_into_cache_hits() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let mut opt = Optimizer::new(machine.clone());
        opt.opts.search_n = 24;
        opt.opts.max_variants = 1;
        let engine = Engine::new(machine);
        let kernel = Kernel::matmul();
        let first = opt.run_with(&kernel, &engine).expect("first run");
        let evaluated_after_first = engine.stats().evaluated;
        let second = opt.run_with(&kernel, &engine).expect("second run");
        assert_eq!(
            engine.stats().evaluated,
            evaluated_after_first,
            "second run must be served entirely from the memo cache"
        );
        assert_eq!(first.params, second.params);
        assert_eq!(first.counters, second.counters);
        assert_eq!(first.program.to_string(), second.program.to_string());
    }

    #[test]
    fn run_with_private_engine_matches_request_path() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let mut opt = Optimizer::new(machine.clone());
        opt.opts.search_n = 24;
        opt.opts.max_variants = 1;
        let engine = Engine::new(machine);
        let tuned = opt.run_with(&Kernel::matmul(), &engine).expect("tunes");
        assert!(tuned.stats.points > 0);
        assert_eq!(
            tuned.stats.lineage.first().map(|s| s.stage.as_str()),
            Some("screen")
        );
    }

    #[test]
    fn generated_v2_code_has_figure_1c_structure() {
        // Figure 1(c): DO KK; DO JJ; copy B; DO II; copy A; DO J; DO I;
        // DO K with C held in registers across K.
        let (k, nest, vs, machine) = mm_variants();
        let jv = k.program.var_by_name("J").expect("J");
        let a = k.program.array_by_name("A").expect("A");
        let v2 = vs
            .iter()
            .find(|v| {
                v.levels.len() == 3
                    && v.levels[1].carrier == jv
                    && v.levels[1].copy.as_ref().map(|c| c.array) == Some(a)
                    && v.levels[2].copy.is_some()
            })
            .expect("full-copy v2");
        let mut params = ParamValues::new();
        for (name, val) in [
            ("UI", 4u64),
            ("UJ", 4),
            ("TI", 16),
            ("TJ", 512),
            ("TK", 128),
        ] {
            params.insert(name.into(), val);
        }
        let program = generate(&k, &nest, v2, &params, &machine).expect("generate");
        let s = program.to_string();
        let pos = |needle: &str| {
            s.find(needle)
                .unwrap_or_else(|| panic!("missing {needle}:\n{s}"))
        };
        // control order KK, JJ, II; B's copy between JJ and II; A's copy
        // between II and the point loops; point order J, I, K.
        let kk = pos("DO KK = 0, N - 1, 128");
        let jj = pos("DO JJ = 0, N - 1, 512");
        let ii = pos("DO II = 0, N - 1, 16");
        let copy_b = pos("= B[KK + ");
        let copy_a = pos("= A[II + ");
        let j = pos("DO J = JJ, min(JJ + 511, N - 1), 4");
        let i = pos("DO I = II, min(II + 15, N - 1), 4");
        let kpt = pos("DO K = KK, min(KK + 127, N - 1)");
        assert!(kk < jj && jj < copy_b && copy_b < ii, "{s}");
        assert!(ii < copy_a && copy_a < j && j < i && i < kpt, "{s}");
        // C is register-tiled: stores of C happen via temporaries.
        assert!(s.contains("rc = "), "C accumulators hoisted:\n{s}");
    }
}
