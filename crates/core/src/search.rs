//! Phase 2 of the paper: the model-guided empirical search (§3.2).
//!
//! For each variant the search proceeds in stages:
//!
//! 1. **Tiling parameters** — stages group parameters that share a
//!    constraint (the paper: a parameter associated with two levels puts
//!    both levels in one stage). Within a stage, starting from
//!    model-derived initial values (balanced shape at the constraint's
//!    footprint), a *shape* search doubles one dimension while halving
//!    another at constant footprint; when no shape move helps, the
//!    footprint is halved and the shape search repeats; finally a linear
//!    refinement nudges each parameter.
//! 2. **Prefetching** — one data structure at a time: if a distance-1
//!    prefetch helps, nearby distances are explored and the best kept,
//!    otherwise the prefetch is dropped.
//! 3. **Tile adjustment** — after prefetching, the innermost loop's
//!    tile parameter is grown while it keeps helping.
//!
//! Every point is *executed* on the simulated machine, exactly as the
//! paper executes candidates on real hardware; cycle counts decide.
//! Execution goes through the [`Evaluator`] abstraction from `eco-exec`:
//! independent candidates are submitted as batches, so the engine can
//! deduplicate them against its memo cache and run the rest in parallel.
//! All search decisions are made from batch results in submission order,
//! which keeps the chosen variant, parameters and prefetches independent
//! of the engine's thread count.

use crate::codegen::generate;
use crate::variant::{derive_variants, ParamValues, Variant};
use crate::EcoError;
use eco_analysis::NestInfo;
use eco_exec::events::{Attrs, Json, Scope, SpanId};
use eco_exec::{Counters, EvalJob, Evaluator, Params};
use eco_ir::{ArrayId, Program};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_transform::insert_prefetch;
use std::collections::{BTreeMap, HashMap};

/// Candidates per wave for the non-guided (grid/random) strategies: a
/// fixed batch size, *not* the thread count, so search decisions are
/// identical no matter how the engine is configured.
const SWEEP_WAVE: usize = 16;

/// How Phase 2 explores each variant's parameter space.
///
/// [`SearchStrategy::Guided`] is the paper's §3.2 algorithm; the others
/// exist for the ablation the paper's related-work section anticipates
/// ("we anticipate the kind of domain knowledge used in our approach
/// could be effectively combined with such heuristic search
/// techniques") and to quantify what the guidance buys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchStrategy {
    /// The staged model-guided search of §3.2 (default).
    Guided,
    /// Exhaustive power-of-two grid over all parameters, capped.
    Grid {
        /// Maximum points to execute.
        max_points: usize,
    },
    /// Uniform random sampling of feasible power-of-two points.
    Random {
        /// Points to execute.
        points: usize,
        /// Deterministic seed.
        seed: u64,
    },
}

/// Options controlling the empirical search.
///
/// Construct via [`SearchOptions::builder`] to get validation, or fill
/// fields directly (they are validated again when the optimizer runs).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOptions {
    /// Representative problem size at which candidates are executed.
    pub search_n: i64,
    /// Keep at most this many variants for the full search after the
    /// initial screening pass (the models' job is to keep this small).
    pub max_variants: usize,
    /// Prefetch distances explored when distance 1 helps.
    pub prefetch_distances: Vec<i64>,
    /// Keep no-copy twins of copy variants (for ablation studies);
    /// by default the models prefer the copy variant and prune the twin.
    pub keep_copy_alternatives: bool,
    /// Extra problem sizes measured alongside `search_n` for every
    /// point: the paper tunes on "representative input data sets"
    /// (plural), and adding one conflict-prone (power-of-two) size keeps
    /// the search from selecting variants that collapse at pathological
    /// leading dimensions. Empty = single-size tuning.
    pub robustness_sizes: Vec<i64>,
    /// Parameter-space exploration strategy.
    pub strategy: SearchStrategy,
    /// Prune variants whose per-level retained tiles exceed the TLB's
    /// coverage at the initial parameter values (the paper's §4.2:
    /// "taking the TLB behavior into account results in pruning more
    /// variants"). Off by default so search statistics stay comparable
    /// with and without it; `repro` and the tests exercise both.
    pub tlb_prune: bool,
    /// Statically certify every generated candidate (`eco-verify`)
    /// before it is measured: bounds, dependence preservation, scalar
    /// replacement and copy coherence are proven at each tuning size,
    /// and a rejected point is treated as infeasible instead of being
    /// executed. Always on in debug builds; opt-in (`--certify`) in
    /// release builds.
    pub certify: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            search_n: 48,
            max_variants: 4,
            prefetch_distances: vec![1, 2, 4, 8],
            keep_copy_alternatives: false,
            robustness_sizes: Vec::new(),
            strategy: SearchStrategy::Guided,
            tlb_prune: false,
            certify: cfg!(debug_assertions),
        }
    }
}

impl SearchOptions {
    /// A validating builder starting from the defaults.
    pub fn builder() -> SearchOptionsBuilder {
        SearchOptionsBuilder {
            opts: SearchOptions::default(),
            robustness_set: false,
        }
    }

    /// Checks the options for nonsensical budgets.
    ///
    /// # Errors
    ///
    /// Returns [`EcoError::BadParams`] naming the offending field.
    pub fn validate(&self) -> Result<(), EcoError> {
        if self.search_n < 1 {
            return Err(EcoError::BadParams(format!(
                "search_n must be >= 1, got {}",
                self.search_n
            )));
        }
        if self.max_variants == 0 {
            return Err(EcoError::BadParams("max_variants must be >= 1".into()));
        }
        if self.prefetch_distances.is_empty() {
            return Err(EcoError::BadParams(
                "prefetch_distances must not be empty".into(),
            ));
        }
        if let Some(&d) = self.prefetch_distances.iter().find(|&&d| d < 1) {
            return Err(EcoError::BadParams(format!(
                "prefetch distances must be >= 1, got {d}"
            )));
        }
        if let Some(&n) = self.robustness_sizes.iter().find(|&&n| n < 1) {
            return Err(EcoError::BadParams(format!(
                "robustness sizes must be >= 1, got {n}"
            )));
        }
        match self.strategy {
            SearchStrategy::Grid { max_points: 0 } => {
                Err(EcoError::BadParams("grid max_points must be >= 1".into()))
            }
            SearchStrategy::Random { points: 0, .. } => {
                Err(EcoError::BadParams("random points must be >= 1".into()))
            }
            _ => Ok(()),
        }
    }

    /// Renders the options through the order-preserving [`Json`]
    /// builder: stable field order, every field explicit. This is the
    /// canonical serialized form — run manifests embed it verbatim (so
    /// the bytes are golden-gated), [`TuneRequest`](crate::TuneRequest)
    /// fingerprints it, and [`SearchOptions::from_json`] round-trips it.
    pub fn to_json(&self) -> Json {
        let strategy = {
            let doc = Json::obj().field("name", Json::str(strategy_name(&self.strategy)));
            match &self.strategy {
                SearchStrategy::Guided => doc,
                SearchStrategy::Grid { max_points } => {
                    doc.field("max_points", Json::UInt(*max_points as u64))
                }
                SearchStrategy::Random { points, seed } => doc
                    .field("points", Json::UInt(*points as u64))
                    .field("seed", Json::UInt(*seed)),
            }
        };
        Json::obj()
            .field("search_n", Json::Int(self.search_n))
            .field("max_variants", Json::UInt(self.max_variants as u64))
            .field(
                "prefetch_distances",
                Json::Arr(
                    self.prefetch_distances
                        .iter()
                        .map(|&d| Json::Int(d))
                        .collect(),
                ),
            )
            .field(
                "keep_copy_alternatives",
                Json::Bool(self.keep_copy_alternatives),
            )
            .field(
                "robustness_sizes",
                Json::Arr(
                    self.robustness_sizes
                        .iter()
                        .map(|&n| Json::Int(n))
                        .collect(),
                ),
            )
            .field("strategy", strategy)
            .field("tlb_prune", Json::Bool(self.tlb_prune))
            .field("certify", Json::Bool(self.certify))
    }

    /// Parses options previously rendered by [`SearchOptions::to_json`]
    /// and validates them. Every field is required — the serialized
    /// form is explicit, not a patch over the defaults.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field, or the
    /// [`SearchOptions::validate`] error text for nonsensical budgets.
    pub fn from_json(doc: &Json) -> Result<SearchOptions, String> {
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("options: missing field '{name}'"))
        };
        let int = |name: &str| {
            field(name)?
                .as_i64()
                .ok_or_else(|| format!("options: field '{name}' must be an integer"))
        };
        let uint = |name: &str| {
            field(name)?
                .as_u64()
                .ok_or_else(|| format!("options: field '{name}' must be a non-negative integer"))
        };
        let boolean = |name: &str| {
            field(name)?
                .as_bool()
                .ok_or_else(|| format!("options: field '{name}' must be a boolean"))
        };
        let ints = |name: &str| -> Result<Vec<i64>, String> {
            match field(name)? {
                Json::Arr(items) => items
                    .iter()
                    .map(|v| {
                        v.as_i64().ok_or_else(|| {
                            format!("options: field '{name}' must hold only integers")
                        })
                    })
                    .collect(),
                _ => Err(format!("options: field '{name}' must be an array")),
            }
        };
        let strategy_doc = field("strategy")?;
        let sub = |name: &str| {
            strategy_doc
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    format!("options: strategy field '{name}' must be a non-negative integer")
                })
        };
        let strategy = match strategy_doc.get("name").and_then(Json::as_str) {
            Some("guided") => SearchStrategy::Guided,
            Some("grid") => SearchStrategy::Grid {
                max_points: sub("max_points")? as usize,
            },
            Some("random") => SearchStrategy::Random {
                points: sub("points")? as usize,
                seed: sub("seed")?,
            },
            Some(other) => return Err(format!("options: unknown strategy '{other}'")),
            None => return Err("options: strategy must name 'guided', 'grid' or 'random'".into()),
        };
        let opts = SearchOptions {
            search_n: int("search_n")?,
            max_variants: uint("max_variants")? as usize,
            prefetch_distances: ints("prefetch_distances")?,
            keep_copy_alternatives: boolean("keep_copy_alternatives")?,
            robustness_sizes: ints("robustness_sizes")?,
            strategy,
            tlb_prune: boolean("tlb_prune")?,
            certify: boolean("certify")?,
        };
        opts.validate().map_err(|e| e.to_string())?;
        Ok(opts)
    }
}

/// Builder for [`SearchOptions`]; [`SearchOptionsBuilder::build`]
/// rejects zero budgets and explicitly-empty robustness sizes.
#[derive(Debug, Clone)]
pub struct SearchOptionsBuilder {
    opts: SearchOptions,
    robustness_set: bool,
}

impl SearchOptionsBuilder {
    /// Sets the representative search size.
    #[must_use]
    pub fn search_n(mut self, n: i64) -> Self {
        self.opts.search_n = n;
        self
    }

    /// Sets the post-screening variant budget.
    #[must_use]
    pub fn max_variants(mut self, n: usize) -> Self {
        self.opts.max_variants = n;
        self
    }

    /// Sets the prefetch distances explored when distance 1 helps.
    #[must_use]
    pub fn prefetch_distances(mut self, distances: Vec<i64>) -> Self {
        self.opts.prefetch_distances = distances;
        self
    }

    /// Keeps no-copy twins of copy variants (for ablations).
    #[must_use]
    pub fn keep_copy_alternatives(mut self, keep: bool) -> Self {
        self.opts.keep_copy_alternatives = keep;
        self
    }

    /// Sets the extra tuning sizes; passing an empty vector is a build
    /// error (omit the call for single-size tuning).
    #[must_use]
    pub fn robustness_sizes(mut self, sizes: Vec<i64>) -> Self {
        self.opts.robustness_sizes = sizes;
        self.robustness_set = true;
        self
    }

    /// Sets the exploration strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.opts.strategy = strategy;
        self
    }

    /// Enables TLB-based variant pruning (§4.2).
    #[must_use]
    pub fn tlb_prune(mut self, prune: bool) -> Self {
        self.opts.tlb_prune = prune;
        self
    }

    /// Enables (or disables) static certification of every candidate
    /// before measurement. Defaults to on in debug builds.
    #[must_use]
    pub fn certify(mut self, certify: bool) -> Self {
        self.opts.certify = certify;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// Returns [`EcoError::BadParams`] for zero budgets, empty or
    /// non-positive prefetch distances, non-positive sizes, or an
    /// explicitly-set empty robustness list.
    pub fn build(self) -> Result<SearchOptions, EcoError> {
        if self.robustness_set && self.opts.robustness_sizes.is_empty() {
            return Err(EcoError::BadParams(
                "robustness_sizes set to an empty list; omit the call for single-size tuning"
                    .into(),
            ));
        }
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// Statistics of one optimization run (the paper's §4.3 search cost).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Code versions actually executed and measured.
    pub points: usize,
    /// Variants produced by Phase 1.
    pub variants_derived: usize,
    /// Variants fully searched after screening.
    pub variants_searched: usize,
    /// Points generated per search stage, stage names sorted
    /// (deterministic; recorded in run manifests).
    pub per_stage: Vec<(String, usize)>,
    /// Unique points statically certified safe before measurement
    /// (0 when certification is off).
    pub points_certified: usize,
    /// Unique points the certifier rejected (never executed).
    pub points_rejected: usize,
    /// How the winning point's cycle count evolved through the stages:
    /// milestones of the selected variant, in search order.
    pub lineage: Vec<LineageStep>,
}

/// One milestone on the winning point's path through the staged
/// search: the best cycle count after `stage` finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageStep {
    /// Stage label (`screen`, `tiles`, `prefetch`, `adjust`).
    pub stage: String,
    /// Best cycles at the end of that stage.
    pub cycles: u64,
}

impl LineageStep {
    /// A milestone for `stage` at `cycles`.
    pub fn new(stage: impl Into<String>, cycles: u64) -> Self {
        LineageStep {
            stage: stage.into(),
            cycles,
        }
    }
}

/// The result of optimizing a kernel.
#[derive(Debug, Clone)]
pub struct Tuned {
    /// The winning variant.
    pub variant: Variant,
    /// Chosen parameter values.
    pub params: ParamValues,
    /// Chosen prefetches: `(array name, distance)`.
    pub prefetches: Vec<(String, i64)>,
    /// The final generated program.
    pub program: Program,
    /// Counters of the final program at the search size.
    pub counters: Counters,
    /// Search cost.
    pub stats: SearchStats,
}

/// The ECO optimizer: Phase 1 variant derivation plus Phase 2
/// model-guided empirical search.
#[derive(Debug, Clone)]
pub struct Optimizer {
    machine: MachineDesc,
    /// Search options (public so callers can tune the budget).
    pub opts: SearchOptions,
}

/// One candidate point of the search: a variant with parameter values
/// and a prefetch plan.
struct Point<'v> {
    variant: &'v Variant,
    params: ParamValues,
    prefetches: Vec<(ArrayId, i64)>,
}

/// Bridges the search to an [`Evaluator`]: generates the program for
/// each point (caching generation, which is pure), batches the
/// measurements, and counts unique generated points for [`SearchStats`].
struct PointEval<'a> {
    kernel: &'a Kernel,
    nest: &'a NestInfo,
    engine: &'a dyn Evaluator,
    sizes: Vec<i64>,
    /// Point key -> generated program (`None` = generation infeasible).
    /// Measurement results are *not* cached here — that is the engine's
    /// memo cache's job, so repeated points surface as cache hits.
    programs: HashMap<String, Option<Program>>,
    points: usize,
    /// Points generated per stage label (for [`SearchStats::per_stage`]).
    per_stage: BTreeMap<String, usize>,
    /// Current search stage, recorded in trace labels.
    stage: &'static str,
    /// The observability scope (no-op when events are off) and the span
    /// measurements are currently attributed to.
    scope: Scope,
    span: Option<SpanId>,
    /// Statically certify each unique generated point before it may be
    /// measured ([`SearchOptions::certify`]).
    certify: bool,
    /// Unique points proven safe / rejected by the certifier.
    certified: usize,
    rejected: usize,
}

impl PointEval<'_> {
    /// Opens a stage span under the current span and redirects point
    /// attribution into it; returns the state [`PointEval::leave`]
    /// restores.
    fn enter(
        &mut self,
        stage: &'static str,
        attrs: Attrs,
    ) -> (&'static str, Option<SpanId>, Option<SpanId>) {
        let opened = self.scope.span(stage, self.span, attrs);
        let saved = (self.stage, self.span, opened);
        self.stage = stage;
        if opened.is_some() {
            self.span = opened;
        }
        saved
    }

    /// Closes the span opened by the matching [`PointEval::enter`] and
    /// restores the previous stage attribution.
    fn leave(&mut self, saved: (&'static str, Option<SpanId>, Option<SpanId>), attrs: Attrs) {
        let (stage, span, opened) = saved;
        self.scope.close(opened, attrs);
        self.stage = stage;
        self.span = span;
    }
    /// The generated program for a point, `None` if generation or
    /// prefetch insertion is infeasible.
    fn program_for(
        &mut self,
        variant: &Variant,
        params: &ParamValues,
        prefetches: &[(ArrayId, i64)],
    ) -> Option<Program> {
        let key = format!("{}|{params:?}|{prefetches:?}", variant.name);
        if let Some(hit) = self.programs.get(&key) {
            return hit.clone();
        }
        let mut program = (|| -> Option<Program> {
            let mut program = generate(
                self.kernel,
                self.nest,
                variant,
                params,
                self.engine.machine(),
            )
            .ok()?;
            let carrier = variant.register_carrier();
            for &(array, dist) in prefetches {
                program = insert_prefetch(&program, carrier, array, dist).ok()?;
            }
            Some(program)
        })();
        // Translation validation: prove the candidate safe at every
        // tuning size before it is allowed anywhere near the engine.
        // Each unique point is certified once (this cache) and the
        // verdict becomes a typed event.
        if self.certify {
            if let Some(p) = &program {
                let size_name = self.kernel.program.var(self.kernel.size).name.clone();
                let verdict = self.sizes.iter().find_map(|&n| {
                    let cert =
                        eco_verify::certify(&self.kernel.program, p, &[(size_name.clone(), n)]);
                    cert.first_error().map(|code| {
                        let msg = cert
                            .diagnostics
                            .iter()
                            .find(|d| d.code == code)
                            .map(|d| d.message.clone())
                            .unwrap_or_default();
                        (code, msg, n)
                    })
                });
                match verdict {
                    Some((code, msg, n)) => {
                        self.rejected += 1;
                        self.scope.event(
                            "certify",
                            self.span,
                            Attrs::new()
                                .str("variant", &variant.name)
                                .bool("ok", false)
                                .str("code", code.as_str())
                                .str("msg", &msg)
                                .int("n", n),
                        );
                        program = None;
                    }
                    None => {
                        self.certified += 1;
                        self.scope.event(
                            "certify",
                            self.span,
                            Attrs::new().str("variant", &variant.name).bool("ok", true),
                        );
                    }
                }
            }
        }
        if program.is_some() {
            self.points += 1;
            *self.per_stage.entry(self.stage.to_string()).or_insert(0) += 1;
        }
        self.programs.insert(key, program.clone());
        program
    }

    /// Measures a batch of points; per point, the total cycles over all
    /// tuning sizes, or `None` if generation or any measurement failed.
    /// Results are in submission order regardless of engine parallelism.
    fn eval_batch(&mut self, pts: &[Point<'_>]) -> Vec<Option<u64>> {
        let mut jobs: Vec<EvalJob> = Vec::new();
        let mut spans: Vec<Option<std::ops::Range<usize>>> = Vec::with_capacity(pts.len());
        for pt in pts {
            match self.program_for(pt.variant, &pt.params, &pt.prefetches) {
                Some(program) => {
                    let start = jobs.len();
                    for &n in &self.sizes {
                        jobs.push(
                            EvalJob::new(program.clone(), Params::new().with(self.kernel.size, n))
                                .with_label(format!("{}/{}", pt.variant.name, self.stage))
                                .in_span(self.span),
                        );
                    }
                    spans.push(Some(start..jobs.len()));
                }
                None => spans.push(None),
            }
        }
        let results = self.engine.eval_batch(&jobs);
        spans
            .into_iter()
            .map(|span| {
                let mut total = 0u64;
                for r in &results[span?] {
                    total += r.as_ref().ok()?.cycles();
                }
                Some(total)
            })
            .collect()
    }

    /// Measures a single point.
    fn eval_one(
        &mut self,
        variant: &Variant,
        params: &ParamValues,
        prefetches: &[(ArrayId, i64)],
    ) -> Option<u64> {
        self.eval_batch(&[Point {
            variant,
            params: params.clone(),
            prefetches: prefetches.to_vec(),
        }])[0]
    }

    /// Measures many parameter candidates of one variant (no prefetch).
    fn eval_params(&mut self, variant: &Variant, cands: &[ParamValues]) -> Vec<Option<u64>> {
        let pts: Vec<Point<'_>> = cands
            .iter()
            .map(|params| Point {
                variant,
                params: params.clone(),
                prefetches: Vec::new(),
            })
            .collect();
        self.eval_batch(&pts)
    }
}

impl Optimizer {
    /// An optimizer for `machine` with default search options.
    pub fn new(machine: MachineDesc) -> Self {
        Optimizer {
            machine,
            opts: SearchOptions::default(),
        }
    }

    /// The machine this optimizer targets.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// Runs the full two-phase optimization against a caller-supplied
    /// [`Evaluator`] (shared engines amortize the memo cache across
    /// kernels and baselines; tests substitute counting evaluators).
    ///
    /// # Errors
    ///
    /// Fails on invalid options, an engine targeting a different
    /// machine, an unanalyzable kernel, or when no variant could be
    /// generated and measured.
    pub fn run_with(&self, kernel: &Kernel, engine: &dyn Evaluator) -> Result<Tuned, EcoError> {
        self.opts.validate()?;
        if engine.machine() != &self.machine {
            return Err(EcoError::BadParams(format!(
                "engine simulates '{}' but the optimizer targets '{}'",
                engine.machine().name,
                self.machine.name
            )));
        }
        let scope = Scope::new(engine.events().cloned());
        let root = scope.span(
            "optimize",
            None,
            Attrs::new()
                .str("kernel", &kernel.program.name)
                .int("search_n", self.opts.search_n)
                .str("strategy", strategy_name(&self.opts.strategy)),
        );
        let result = self.search(kernel, engine, &scope, root);
        match &result {
            Ok(t) => scope.close(
                root,
                Attrs::new()
                    .uint("points", t.stats.points as u64)
                    .str("selected", &t.variant.name)
                    .uint("cycles", t.counters.cycles()),
            ),
            Err(e) => scope.close(root, Attrs::new().str("error", e.to_string())),
        }
        scope.flush();
        result
    }

    /// The body of [`Optimizer::run_with`], running inside the
    /// `optimize` root span (the caller closes it on every path).
    fn search(
        &self,
        kernel: &Kernel,
        engine: &dyn Evaluator,
        scope: &Scope,
        root: Option<SpanId>,
    ) -> Result<Tuned, EcoError> {
        let nest = NestInfo::from_program(&kernel.program)?;
        let mut variants = derive_variants(&nest, &self.machine, &kernel.program);
        let variants_derived = variants.len();
        if !self.opts.keep_copy_alternatives {
            variants = prune_copy_twins(variants);
        }
        if self.opts.tlb_prune {
            let kept: Vec<Variant> = variants
                .iter()
                .filter(|v| self.tlb_feasible(&nest, v, self.opts.search_n.unsigned_abs()))
                .cloned()
                .collect();
            // Best-effort: if the model rejects everything, fall back to
            // the unpruned set rather than failing.
            if !kept.is_empty() {
                variants = kept;
            }
        }
        if variants.is_empty() {
            return Err(EcoError::NoVariants);
        }
        let mut sizes = vec![self.opts.search_n];
        sizes.extend(self.opts.robustness_sizes.iter().copied());
        let mut ev = PointEval {
            kernel,
            nest: &nest,
            engine,
            sizes,
            programs: HashMap::new(),
            points: 0,
            per_stage: BTreeMap::new(),
            stage: "screen",
            scope: scope.clone(),
            span: root,
            certify: self.opts.certify,
            certified: 0,
            rejected: 0,
        };

        // ---- screening: one model-derived point per variant ----
        // The register constraint is only an upper bound (rotating
        // replacement needs a ring per reference group), so back off the
        // unroll factors until the point generates — the paper's "the
        // search detects the largest unroll factors that do not cause
        // register pressure". All variants still screening in a round
        // are evaluated as one batch.
        let screen_span = ev.enter(
            "screen",
            Attrs::new().uint("variants", variants.len() as u64),
        );
        let mut slots: Vec<(Variant, ParamValues, Option<u64>)> = variants
            .into_iter()
            .map(|v| {
                let init = self.initial_params(&v);
                (v, init, None)
            })
            .collect();
        let mut active: Vec<usize> = (0..slots.len()).collect();
        for _round in 0..8 {
            if active.is_empty() {
                break;
            }
            let results = {
                let pts: Vec<Point<'_>> = active
                    .iter()
                    .map(|&s| Point {
                        variant: &slots[s].0,
                        params: slots[s].1.clone(),
                        prefetches: Vec::new(),
                    })
                    .collect();
                ev.eval_batch(&pts)
            };
            let mut still = Vec::new();
            for (k, &s) in active.iter().enumerate() {
                match results[k] {
                    Some(c) => slots[s].2 = Some(c),
                    None => {
                        let Some((nm, val)) = slots[s]
                            .1
                            .iter()
                            .filter(|(n, _)| n.starts_with('U'))
                            .max_by_key(|&(_, v)| *v)
                            .map(|(n, &v)| (n.clone(), v))
                        else {
                            continue;
                        };
                        if val < 2 {
                            continue;
                        }
                        slots[s].1.insert(nm, val / 2);
                        still.push(s);
                    }
                }
            }
            active = still;
        }
        let mut screened: Vec<(Variant, ParamValues, u64)> = slots
            .into_iter()
            .filter_map(|(v, init, c)| c.map(|c| (v, init, c)))
            .collect();
        screened.sort_by_key(|&(_, _, c)| c);
        screened.truncate(self.opts.max_variants);
        let variants_searched = screened.len();
        for (v, _, c) in &screened {
            ev.scope.event(
                "variant_kept",
                ev.span,
                Attrs::new().str("variant", &v.name).uint("cycles", *c),
            );
        }
        ev.leave(
            screen_span,
            Attrs::new().uint("kept", variants_searched as u64),
        );
        if screened.is_empty() {
            return Err(EcoError::NoVariants);
        }

        // ---- full search per surviving variant ----
        type BestPoint = (
            Variant,
            ParamValues,
            Vec<(ArrayId, i64)>,
            u64,
            Vec<LineageStep>,
        );
        let mut best: Option<BestPoint> = None;
        for (variant, init, screen_cycles) in screened {
            let mut params = init;
            let mut lineage = vec![LineageStep::new("screen", screen_cycles)];
            let vsaved = ev.span;
            let vspan = ev.scope.span(
                "variant",
                ev.span,
                Attrs::new().str("variant", &variant.name),
            );
            if vspan.is_some() {
                ev.span = vspan;
            }
            ev.stage = "tiles";
            match &self.opts.strategy {
                SearchStrategy::Guided => {
                    for stage in stages(&variant) {
                        self.stage_search(&mut ev, &variant, &mut params, &stage);
                    }
                }
                SearchStrategy::Grid { max_points } => {
                    grid_search(&mut ev, &variant, &mut params, *max_points);
                }
                SearchStrategy::Random { points, seed } => {
                    random_search(&mut ev, &variant, &mut params, *points, *seed);
                }
            }
            ev.stage = "tiles";
            let mut cycles = match ev.eval_one(&variant, &params, &[]) {
                Some(c) => c,
                None => {
                    ev.scope
                        .close(vspan, Attrs::new().str("outcome", "infeasible"));
                    ev.span = vsaved;
                    continue;
                }
            };
            lineage.push(LineageStep::new("tiles", cycles));
            // prefetch search, one data structure at a time
            let pf_span = ev.enter("prefetch", Attrs::new());
            let mut plan: Vec<(ArrayId, i64)> = Vec::new();
            for (array, array_name) in self.prefetch_candidates(&ev, &variant, &params) {
                let decision = |ev: &mut PointEval<'_>, kept: bool, d: i64, cycles: u64| {
                    ev.scope.event(
                        "prefetch_decision",
                        ev.span,
                        Attrs::new()
                            .str("array", &array_name)
                            .bool("kept", kept)
                            .int("distance", d)
                            .uint("cycles", cycles),
                    );
                };
                let mut cand: Vec<(ArrayId, i64)> = plan.clone();
                cand.push((array, 1));
                let Some(c1) = ev.eval_one(&variant, &params, &cand) else {
                    continue;
                };
                if c1 >= cycles {
                    decision(&mut ev, false, 1, c1);
                    continue; // no benefit: remove the prefetch
                }
                // Distance 1 helps: sweep the other distances as one
                // batch and keep the earliest minimum (matching the
                // serial strict-`<` scan).
                let sweep = {
                    let pts: Vec<Point<'_>> = self.opts.prefetch_distances[1..]
                        .iter()
                        .map(|&d| {
                            let mut pf = cand.clone();
                            pf.last_mut().expect("candidate").1 = d;
                            Point {
                                variant: &variant,
                                params: params.clone(),
                                prefetches: pf,
                            }
                        })
                        .collect();
                    ev.eval_batch(&pts)
                };
                let mut best_d = (1, c1);
                for (&d, r) in self.opts.prefetch_distances[1..].iter().zip(&sweep) {
                    if let Some(c) = r {
                        if *c < best_d.1 {
                            best_d = (d, *c);
                        }
                    }
                }
                cand.last_mut().expect("candidate").1 = best_d.0;
                plan.push((array, best_d.0));
                cycles = best_d.1;
                decision(&mut ev, true, best_d.0, best_d.1);
            }
            ev.leave(pf_span, Attrs::new().uint("kept", plan.len() as u64));
            lineage.push(LineageStep::new("prefetch", cycles));
            // adjust tiling after prefetch: grow the innermost tile
            let adj_span = ev.enter("adjust", Attrs::new());
            if let Some(nm) = variant.tile_param(variant.register_carrier()) {
                let nm = nm.to_string();
                loop {
                    let mut cand = params.clone();
                    let v = cand[&nm] * 2;
                    cand.insert(nm.clone(), v);
                    match ev.eval_one(&variant, &cand, &plan) {
                        Some(c) if c < cycles => {
                            params = cand;
                            cycles = c;
                        }
                        _ => break,
                    }
                }
            }
            ev.leave(adj_span, Attrs::new().uint("cycles", cycles));
            lineage.push(LineageStep::new("adjust", cycles));
            ev.scope.close(vspan, Attrs::new().uint("cycles", cycles));
            ev.span = vsaved;
            if best.as_ref().is_none_or(|&(_, _, _, b, _)| cycles < b) {
                best = Some((variant, params, plan, cycles, lineage));
            }
        }

        let (variant, params, plan, _, lineage) = best.ok_or(EcoError::NoVariants)?;
        let mut program = generate(kernel, &nest, &variant, &params, &self.machine)?;
        let mut prefetches = Vec::new();
        for &(array, d) in &plan {
            program = insert_prefetch(&program, variant.register_carrier(), array, d)?;
            prefetches.push((program.array(array).name.clone(), d));
        }
        let exec_params = Params::new().with(kernel.size, self.opts.search_n);
        let counters = engine.eval(
            EvalJob::new(program.clone(), exec_params)
                .with_label(format!("{}/final", variant.name))
                .in_span(root),
        )?;
        Ok(Tuned {
            variant,
            params,
            prefetches,
            program,
            counters,
            stats: SearchStats {
                points: ev.points,
                variants_derived,
                variants_searched,
                per_stage: ev.per_stage.into_iter().collect(),
                points_certified: ev.certified,
                points_rejected: ev.rejected,
                lineage,
            },
        })
    }

    /// True if every cache level's retained tile can fit the TLB's page
    /// coverage for *some* parameter setting — evaluated at the smallest
    /// plausible tile values (4), so only variants that no tuning can
    /// save are pruned. This is the §4.2 pruning model ("variants with
    /// tiling for both L1 and L2 are pruned, as they would suffer cache
    /// and TLB conflicts"); untiled loops count at their full trip,
    /// which is exactly what dooms the pruned shapes. Public so
    /// ablations can query it directly.
    pub fn tlb_feasible(&self, nest: &NestInfo, variant: &Variant, n: u64) -> bool {
        use eco_analysis::footprint::{footprint_pages, Trips};
        let page_elems = (self.machine.tlb.page_bytes / 8) as u64;
        let vars: Vec<eco_ir::VarId> = nest.loop_vars();
        for level in &variant.levels[1..] {
            if level.retained.is_empty() {
                continue;
            }
            let mut trips = Trips::with_default(1);
            for &v in &vars {
                let t = if v == level.carrier {
                    1
                } else if variant.tile_param(v).is_some() {
                    4.min(n)
                } else {
                    n
                };
                trips = trips.set(v, t);
            }
            let pages = footprint_pages(nest, &level.retained, &trips, page_elems, n);
            if pages > self.machine.tlb.entries as u64 {
                return false;
            }
        }
        true
    }

    /// Model-derived initial parameter values: each constraint's
    /// footprint is spread evenly (power-of-two) across its parameters,
    /// the tightest constraint winning.
    pub fn initial_params(&self, variant: &Variant) -> ParamValues {
        let mut values: ParamValues = ParamValues::new();
        for name in variant.param_names() {
            values.insert(name, 0);
        }
        for c in variant.constraints() {
            if c.bound == u64::MAX || c.factors.is_empty() {
                continue;
            }
            let share = nice_root(c.bound, c.factors.len() as u32);
            for f in &c.factors {
                let cur = values.get(f).copied().unwrap_or(0);
                if cur == 0 || share < cur {
                    values.insert(f.clone(), share);
                }
            }
        }
        for (_, v) in values.iter_mut() {
            if *v == 0 {
                *v = 32; // unconstrained parameter: a moderate default
            }
        }
        values
    }

    /// One search stage: shape moves at constant footprint, footprint
    /// halving, then linear refinement (§3.2). All candidates of one
    /// decision round are submitted as a single batch; the winner is the
    /// best improving candidate, ties broken by submission order, so the
    /// outcome never depends on evaluation order.
    fn stage_search(
        &self,
        ev: &mut PointEval<'_>,
        variant: &Variant,
        params: &mut ParamValues,
        stage: &[String],
    ) {
        let group = ev.enter("stage", Attrs::new().str("params", stage.join(",")));
        ev.stage = "tiles";
        let Some(mut best) = ev.eval_one(variant, params, &[]) else {
            ev.leave(group, Attrs::new().str("outcome", "infeasible"));
            return;
        };
        let shape_pass = |ev: &mut PointEval<'_>, params: &mut ParamValues, best: &mut u64| {
            if stage.len() < 2 {
                return;
            }
            let span = ev.enter("shape", Attrs::new());
            loop {
                // Propose every double-one/halve-another move from the
                // current point, evaluate them together, keep the best.
                let mut cands: Vec<ParamValues> = Vec::new();
                for i in 0..stage.len() {
                    for j in 0..stage.len() {
                        if i == j || params[&stage[j]] < 2 {
                            continue;
                        }
                        let mut cand = params.clone();
                        cand.insert(stage[i].clone(), params[&stage[i]] * 2);
                        cand.insert(stage[j].clone(), params[&stage[j]] / 2);
                        cands.push(cand);
                    }
                }
                if cands.is_empty() {
                    break;
                }
                let results = ev.eval_params(variant, &cands);
                let mut pick: Option<usize> = None;
                for (k, r) in results.iter().enumerate() {
                    if let Some(c) = r {
                        if *c < *best && pick.is_none_or(|p| *c < results[p].expect("picked")) {
                            pick = Some(k);
                        }
                    }
                }
                match pick {
                    Some(k) => {
                        *best = results[k].expect("picked");
                        *params = cands[k].clone();
                    }
                    None => break,
                }
            }
            ev.leave(span, Attrs::new().uint("cycles", *best));
        };
        shape_pass(ev, params, &mut best);
        // footprint halving
        let halve_span = ev.enter("halve", Attrs::new());
        loop {
            let largest = stage
                .iter()
                .max_by_key(|nm| params[*nm])
                .expect("stage nonempty")
                .clone();
            if params[&largest] < 2 {
                break;
            }
            let saved = params.clone();
            let saved_best = best;
            params.insert(largest.clone(), params[&largest] / 2);
            match ev.eval_one(variant, params, &[]) {
                Some(c) if c < best => {
                    best = c;
                    shape_pass(ev, params, &mut best);
                }
                _ => {
                    *params = saved;
                    best = saved_best;
                    break;
                }
            }
        }
        ev.leave(halve_span, Attrs::new().uint("cycles", best));
        // linear refinement: both nudges of a parameter go out as one
        // batch; the up-move wins ties, like the serial scan it replaces.
        let refine_span = ev.enter("refine", Attrs::new());
        for nm in stage {
            loop {
                let cur = params[nm];
                let step = (cur / 4).max(1);
                let nudges: Vec<u64> = [cur + step, cur.saturating_sub(step).max(1)]
                    .into_iter()
                    .filter(|&v| v != cur)
                    .collect();
                let cands: Vec<ParamValues> = nudges
                    .iter()
                    .map(|&v| {
                        let mut cand = params.clone();
                        cand.insert(nm.clone(), v);
                        cand
                    })
                    .collect();
                let results = ev.eval_params(variant, &cands);
                let mut moved = false;
                for (k, r) in results.iter().enumerate() {
                    if let Some(c) = r {
                        if *c < best {
                            best = *c;
                            *params = cands[k].clone();
                            moved = true;
                            break;
                        }
                    }
                }
                if !moved {
                    break;
                }
            }
        }
        ev.leave(refine_span, Attrs::new().uint("cycles", best));
        ev.leave(group, Attrs::new().uint("cycles", best));
    }

    /// Arrays referenced in the generated innermost loop — the prefetch
    /// candidates, tried one at a time — with their names (ids index the
    /// *generated* program, which may add copy buffers the kernel
    /// program does not have).
    fn prefetch_candidates(
        &self,
        ev: &PointEval<'_>,
        variant: &Variant,
        params: &ParamValues,
    ) -> Vec<(ArrayId, String)> {
        let Ok(program) = generate(ev.kernel, ev.nest, variant, params, &self.machine) else {
            return Vec::new();
        };
        let Some(inner) = program.find_loop(variant.register_carrier()) else {
            return Vec::new();
        };
        let mut arrays = Vec::new();
        for s in &inner.body {
            s.for_each_ref(&mut |r, _| {
                if !arrays.iter().any(|&(a, _)| a == r.array) {
                    arrays.push((r.array, program.array(r.array).name.clone()));
                }
            });
        }
        arrays
    }
}

/// The short tag naming a [`SearchStrategy`] in the root `optimize`
/// span and in run manifests.
pub fn strategy_name(s: &SearchStrategy) -> &'static str {
    match s {
        SearchStrategy::Guided => "guided",
        SearchStrategy::Grid { .. } => "grid",
        SearchStrategy::Random { .. } => "random",
    }
}

/// Groups a variant's parameters into search stages: parameters sharing
/// a constraint search together (the paper's "same stage" rule for
/// shared parameters like TK); the register-level unrolls always form
/// the first stage.
pub fn stages(variant: &Variant) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = Vec::new();
    let reg: Vec<String> = variant.levels[0]
        .unrolls
        .iter()
        .map(|(_, n)| n.clone())
        .collect();
    if !reg.is_empty() {
        out.push(reg);
    }
    for level in &variant.levels[1..] {
        let mut names: Vec<String> = level.tiles.iter().map(|(_, n)| n.clone()).collect();
        // pull in shared parameters from this level's constraint
        for f in &level.constraint.factors {
            if f.starts_with('T') && !names.contains(f) {
                names.push(f.clone());
            }
        }
        names.retain(|n| !out.iter().any(|s| s.contains(n)));
        if names.is_empty() {
            continue;
        }
        // merge with an earlier stage if a constraint factor lives there
        let linked = out.iter().position(|s| {
            level
                .constraint
                .factors
                .iter()
                .any(|f| s.contains(f) && f.starts_with('T'))
        });
        match linked {
            Some(i) => out[i].extend(names),
            None => out.push(names),
        }
    }
    out
}

/// Drops no-copy twins when a structurally-identical copy variant
/// exists (the models prefer copying; §3.1.2).
fn prune_copy_twins(variants: Vec<Variant>) -> Vec<Variant> {
    let key = |v: &Variant| -> String {
        v.levels
            .iter()
            .map(|l| format!("{}:{:?}:{:?}:{:?};", l.level, l.carrier, l.tiles, l.unrolls))
            .collect()
    };
    let copies = |v: &Variant| v.levels.iter().filter(|l| l.copy.is_some()).count();
    let mut best: Vec<Variant> = Vec::new();
    for v in variants {
        let k = key(&v);
        match best.iter_mut().find(|b| key(b) == k) {
            Some(b) => {
                if copies(&v) > copies(b) {
                    *b = v;
                }
            }
            None => best.push(v),
        }
    }
    best
}

/// Rounds `bound^(1/k)` down to a power of two (the search's favoured
/// "nice" values: multiples compose well with unroll factors).
fn nice_root(bound: u64, k: u32) -> u64 {
    let root = (bound as f64).powf(1.0 / k as f64);
    let mut v = 1u64;
    while (v * 2) as f64 <= root {
        v *= 2;
    }
    v.max(1)
}

/// The power-of-two candidate values a non-guided strategy considers
/// for each parameter.
fn pow2_candidates(variant: &Variant, name: &str) -> Vec<u64> {
    // bound by the tightest constraint mentioning the parameter
    let cap = variant
        .constraints()
        .iter()
        .filter(|c| c.factors.iter().any(|f| f == name))
        .map(|c| c.bound)
        .min()
        .unwrap_or(256)
        .min(256);
    let mut v = Vec::new();
    let mut x = 1u64;
    while x <= cap {
        v.push(x);
        x *= 2;
    }
    v
}

/// Exhaustive (capped) power-of-two grid search over all parameters,
/// submitted in fixed-size waves ([`SWEEP_WAVE`]) so the engine can
/// parallelize without affecting which point wins.
fn grid_search(
    ev: &mut PointEval<'_>,
    variant: &Variant,
    params: &mut ParamValues,
    max_points: usize,
) {
    let names = variant.param_names();
    let candidates: Vec<Vec<u64>> = names.iter().map(|n| pow2_candidates(variant, n)).collect();
    let mut best = ev.eval_one(variant, params, &[]);
    let mut idx = vec![0usize; names.len()];
    let mut exhausted = false;
    let mut executed = 0usize;
    while !exhausted && executed < max_points {
        // Collect the next wave of feasible grid points in odometer
        // order.
        let mut wave: Vec<ParamValues> = Vec::new();
        'fill: while wave.len() < SWEEP_WAVE {
            let mut cand = params.clone();
            for (i, n) in names.iter().enumerate() {
                cand.insert(n.clone(), candidates[i][idx[i]]);
            }
            // odometer increment
            let mut rolled = true;
            for i in 0..names.len() {
                idx[i] += 1;
                if idx[i] < candidates[i].len() {
                    rolled = false;
                    break;
                }
                idx[i] = 0;
            }
            if variant.feasible(&cand) {
                wave.push(cand);
            }
            if rolled || names.is_empty() {
                exhausted = true;
                break 'fill;
            }
        }
        let results = ev.eval_params(variant, &wave);
        for (cand, r) in wave.iter().zip(&results) {
            if let Some(c) = r {
                executed += 1;
                if best.is_none_or(|b| *c < b) {
                    best = Some(*c);
                    *params = cand.clone();
                }
                if executed >= max_points {
                    break;
                }
            }
        }
    }
}

/// Uniform random sampling of feasible power-of-two points (a simple
/// deterministic LCG; no RNG dependency needed in the optimizer),
/// submitted in fixed-size waves like [`grid_search`].
fn random_search(
    ev: &mut PointEval<'_>,
    variant: &Variant,
    params: &mut ParamValues,
    points: usize,
    seed: u64,
) {
    let names = variant.param_names();
    let candidates: Vec<Vec<u64>> = names.iter().map(|n| pow2_candidates(variant, n)).collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m.max(1)
    };
    let mut best = ev.eval_one(variant, params, &[]);
    let mut executed = 0usize;
    let mut attempts = 0usize;
    while executed < points && attempts < points * 20 {
        let mut wave: Vec<ParamValues> = Vec::new();
        while wave.len() < SWEEP_WAVE && attempts < points * 20 {
            attempts += 1;
            let mut cand = params.clone();
            for (i, n) in names.iter().enumerate() {
                cand.insert(n.clone(), candidates[i][next(candidates[i].len())]);
            }
            if variant.feasible(&cand) {
                wave.push(cand);
            }
        }
        let results = ev.eval_params(variant, &wave);
        for (cand, r) in wave.iter().zip(&results) {
            if let Some(c) = r {
                executed += 1;
                if best.is_none_or(|b| *c < b) {
                    best = Some(*c);
                    *params = cand.clone();
                }
                if executed >= points {
                    break;
                }
            }
        }
    }
}
