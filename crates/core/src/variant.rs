//! Phase 1 of the paper: deriving parameterized variants
//! (`Algorithm DeriveVariants`, Figure 3).
//!
//! Walking the memory hierarchy from registers outward, each level
//! selects the loop carrying the most unexploited temporal reuse (ties
//! fork the variant set), the references *retained* at that level, the
//! loops to unroll-and-jam (registers) or tile (caches), whether to
//! create a copy variant, and a symbolic footprint constraint on the
//! parameter values (`UI*UJ <= 32`-style, as displayed in Table 4).
//!
//! Placement rules recovered from the paper's generated code
//! (Figures 1(b), 1(c), 2(b)):
//!
//! * point loops run cache carriers outermost-first by level and the
//!   register carrier innermost (reuse distance ordering, §3.1);
//! * tile-controlling loops sit outside the point band, ordered by the
//!   *reverse* point order (the innermost point loop's control is the
//!   outermost control — `KK, JJ, II` in Figure 1(c));
//! * the tile set of a cache level is the set of loops indexing the
//!   retained references, minus the level's carrier and loops already
//!   tiled; when that set contains the register carrier, both the tiled
//!   and untiled alternative are generated (the paper's j3-vs-j5 pair);
//! * a copy variant is created only when every dimension of the retained
//!   array is tiled — exactly why the paper's compiler copies for Matrix
//!   Multiply but finds copying unprofitable for Jacobi.

use eco_analysis::{reuse, NestInfo};
use eco_ir::{ArrayId, VarId};
use eco_machine::{MachineDesc, MemoryLevel};
use std::collections::BTreeMap;
use std::fmt;

/// Values chosen for a variant's parameters, keyed by name
/// (`"UI"`, `"TJ"`, ...).
pub type ParamValues = BTreeMap<String, u64>;

/// A symbolic constraint `prod(params) <= bound`, as displayed in the
/// paper's Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Parameter names whose product is bounded.
    pub factors: Vec<String>,
    /// Upper bound (in registers or double-precision words).
    pub bound: u64,
}

impl Constraint {
    /// True if `values` satisfies the constraint (missing parameters
    /// count as 1).
    pub fn holds(&self, values: &ParamValues) -> bool {
        let prod: u64 = self
            .factors
            .iter()
            .map(|f| values.get(f).copied().unwrap_or(1))
            .product();
        prod <= self.bound
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= {}", self.factors.join("*"), self.bound)
    }
}

/// The plan for one memory-hierarchy level of a variant.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// Which level this plan targets.
    pub level: MemoryLevel,
    /// The loop carrying this level's reuse.
    pub carrier: VarId,
    /// References (indices into the nest's ref table) retained here.
    pub retained: Vec<usize>,
    /// Loops unroll-and-jammed (register level only), with their
    /// parameter names.
    pub unrolls: Vec<(VarId, String)>,
    /// Loops newly tiled at this level, with their parameter names.
    pub tiles: Vec<(VarId, String)>,
    /// Copy the retained array into a contiguous buffer at this level.
    pub copy: Option<CopyPlan>,
    /// Footprint constraint for this level.
    pub constraint: Constraint,
}

/// A planned copy optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyPlan {
    /// Array to copy.
    pub array: ArrayId,
    /// Buffer name (`"P"`, `"Q"`, ...).
    pub buffer: String,
    /// Per dimension of the array: the loop whose tile bounds it.
    pub dim_loops: Vec<VarId>,
}

/// One parameterized variant produced by [`derive_variants`].
#[derive(Debug, Clone)]
pub struct Variant {
    /// Name (`"v1"`, `"v2"`, ...).
    pub name: String,
    /// Per-level plans, register level first.
    pub levels: Vec<LevelPlan>,
}

impl Variant {
    /// All parameter names of the variant, unrolls before tiles,
    /// level order.
    pub fn param_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for l in &self.levels {
            for (_, n) in &l.unrolls {
                names.push(n.clone());
            }
            for (_, n) in &l.tiles {
                names.push(n.clone());
            }
        }
        names
    }

    /// All constraints of the variant.
    pub fn constraints(&self) -> Vec<&Constraint> {
        self.levels.iter().map(|l| &l.constraint).collect()
    }

    /// True if `values` satisfies every constraint.
    pub fn feasible(&self, values: &ParamValues) -> bool {
        self.constraints().iter().all(|c| c.holds(values))
    }

    /// The register-level carrier (the innermost loop after codegen).
    ///
    /// # Panics
    ///
    /// Panics if the variant has no levels (never produced by
    /// [`derive_variants`]).
    pub fn register_carrier(&self) -> VarId {
        self.levels.first().expect("register level").carrier
    }

    /// Point-loop order, outermost first: cache carriers by level, then
    /// the register carrier innermost, then any unplaced loops outermost.
    pub fn point_order(&self, all_loops: &[VarId]) -> Vec<VarId> {
        let mut order: Vec<VarId> = self.levels[1..].iter().map(|l| l.carrier).collect();
        order.push(self.register_carrier());
        let placed = order.clone();
        let mut rest: Vec<VarId> = all_loops
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .collect();
        rest.extend(order);
        rest
    }

    /// The tile parameter (if any) of loop `v`.
    pub fn tile_param(&self, v: VarId) -> Option<&str> {
        self.levels
            .iter()
            .flat_map(|l| &l.tiles)
            .find(|&&(w, _)| w == v)
            .map(|(_, n)| n.as_str())
    }

    /// The unroll parameter (if any) of loop `v`.
    pub fn unroll_param(&self, v: VarId) -> Option<&str> {
        self.levels
            .iter()
            .flat_map(|l| &l.unrolls)
            .find(|&&(w, _)| w == v)
            .map(|(_, n)| n.as_str())
    }
}

/// Derives the variant set for a kernel nest on a machine — the paper's
/// `DeriveVariants` (Figure 3).
///
/// Each memory level may fork the set: once per tied
/// `MostProfitableLoops` choice, once per tile-or-not decision on the
/// register carrier, and once per copy-or-not decision at levels where
/// copying is expressible.
pub fn derive_variants(
    nest: &NestInfo,
    machine: &MachineDesc,
    program: &eco_ir::Program,
) -> Vec<Variant> {
    struct Partial {
        levels: Vec<LevelPlan>,
        remaining: Vec<VarId>,
        unmapped: Vec<usize>,
        tiled: Vec<(VarId, String)>,
    }
    let all_refs: Vec<usize> = (0..nest.refs.len()).collect();
    let all_vars = nest.loop_vars();
    let name_of = |v: VarId| program.var(v).name.clone();

    // ---- register level ----
    let mut partials: Vec<Partial> = Vec::new();
    let carriers = reuse::most_profitable_loops(nest, &all_vars, &all_refs, &all_refs);
    for &carrier in &carriers {
        let retained = reuse::most_profitable_refs(nest, carrier, &all_refs);
        let remaining: Vec<VarId> = all_vars.iter().copied().filter(|&v| v != carrier).collect();
        let unrolls: Vec<(VarId, String)> = remaining
            .iter()
            .map(|&v| (v, format!("U{}", name_of(v))))
            .collect();
        // Footprint(retained, carrier, unrolls) <= registers:
        // the product of the unroll factors of loops indexing the
        // retained references.
        let mut factors = Vec::new();
        for &r in &retained {
            for &(v, ref nm) in &unrolls {
                if nest.refs[r].uses(v) && !factors.contains(nm) {
                    factors.push(nm.clone());
                }
            }
        }
        partials.push(Partial {
            levels: vec![LevelPlan {
                level: MemoryLevel::Register,
                carrier,
                retained: retained.clone(),
                unrolls,
                tiles: Vec::new(),
                copy: None,
                constraint: Constraint {
                    factors,
                    bound: machine.fp_registers as u64,
                },
            }],
            remaining,
            unmapped: all_refs
                .iter()
                .copied()
                .filter(|r| !retained.contains(r))
                .collect(),
            tiled: Vec::new(),
        });
    }

    // ---- cache levels ----
    for (ci, cache) in machine.caches.iter().enumerate() {
        let level = MemoryLevel::Cache(ci);
        let mut next: Vec<Partial> = Vec::new();
        for p in partials {
            if p.remaining.is_empty() {
                next.push(p);
                continue;
            }
            let carriers = reuse::most_profitable_loops(nest, &p.remaining, &p.unmapped, &all_refs);
            if carriers.is_empty() {
                next.push(p);
                continue;
            }
            for &carrier in &carriers {
                let pool = if reuse::temporal_savings(nest, carrier, &p.unmapped) > 0 {
                    &p.unmapped
                } else {
                    &all_refs
                };
                let retained = reuse::most_profitable_refs(nest, carrier, pool);
                // Tile set: loops indexing the retained refs, minus the
                // carrier and loops already tiled.
                let mut tile_set: Vec<VarId> = Vec::new();
                for &r in &retained {
                    for &v in &all_vars {
                        if v != carrier
                            && nest.refs[r].uses(v)
                            && !p.tiled.iter().any(|&(w, _)| w == v)
                            && !tile_set.contains(&v)
                        {
                            tile_set.push(v);
                        }
                    }
                }
                let reg_carrier = p.levels[0].carrier;
                // Tile-set alternatives: with and without the register
                // carrier (the paper's j3/j5 pair).
                let mut alternatives: Vec<Vec<VarId>> = vec![tile_set.clone()];
                if tile_set.contains(&reg_carrier) && tile_set.len() > 1 {
                    alternatives.push(
                        tile_set
                            .iter()
                            .copied()
                            .filter(|&v| v != reg_carrier)
                            .collect(),
                    );
                }
                for tiles in alternatives {
                    let new_tiles: Vec<(VarId, String)> = tiles
                        .iter()
                        .map(|&v| (v, format!("T{}", name_of(v))))
                        .collect();
                    let mut tiled = p.tiled.clone();
                    tiled.extend(new_tiles.iter().cloned());
                    // Constraint: footprint of the retained tile at this
                    // level = product over dims of the retained refs of
                    // the bounding parameter.
                    let mut factors: Vec<String> = Vec::new();
                    let mut unbounded = false;
                    for &r in &retained {
                        for &v in &all_vars {
                            if v == carrier || !nest.refs[r].uses(v) {
                                continue;
                            }
                            if let Some((_, nm)) = tiled.iter().find(|&&(w, _)| w == v) {
                                if !factors.contains(nm) {
                                    factors.push(nm.clone());
                                }
                            } else if let Some(nm) = p.levels[0]
                                .unrolls
                                .iter()
                                .find(|&&(w, _)| w == v)
                                .map(|(_, n)| n.clone())
                            {
                                if !factors.contains(&nm) {
                                    factors.push(nm);
                                }
                            } else {
                                unbounded = true;
                            }
                        }
                    }
                    let bound = (cache.effective_capacity_bytes() / 8) as u64;
                    let constraint = Constraint {
                        factors: factors.clone(),
                        bound: if unbounded { u64::MAX } else { bound },
                    };
                    // Copy alternative: expressible when every dim of the
                    // retained array is bounded by a tiled loop.
                    let retained_arrays: Vec<ArrayId> = {
                        let mut v: Vec<ArrayId> =
                            retained.iter().map(|&r| nest.refs[r].array).collect();
                        v.dedup();
                        v.sort_by_key(|a| a.index());
                        v.dedup();
                        v
                    };
                    let mut copy: Option<CopyPlan> = None;
                    // Copying retargets *every* reference to the array
                    // inside the tile loop, so it is only expressible when
                    // the retained group covers all of them (SYRK's two
                    // access functions into A rule its copy out).
                    let covers_all = retained_arrays.len() == 1 && {
                        let arr = retained_arrays[0];
                        (0..nest.refs.len())
                            .filter(|&r| nest.refs[r].array == arr)
                            .all(|r| retained.contains(&r))
                    };
                    if covers_all {
                        let arr = retained_arrays[0];
                        let rf = &nest.refs[retained[0]];
                        let dim_loops: Vec<Option<VarId>> = (0..rf.idx.len())
                            .map(|d| {
                                all_vars.iter().copied().find(|&v| {
                                    rf.coeff(d, v) == 1 && tiled.iter().any(|&(w, _)| w == v)
                                })
                            })
                            .collect();
                        let group_spread_zero =
                            retained.iter().all(|&r| nest.refs[r].idx == rf.idx);
                        if group_spread_zero && dim_loops.iter().all(|d| d.is_some()) {
                            copy = Some(CopyPlan {
                                array: arr,
                                buffer: copy_buffer_name(ci, &p.levels),
                                dim_loops: dim_loops.into_iter().flatten().collect(),
                            });
                        }
                    }
                    let mut copy_options: Vec<Option<CopyPlan>> = vec![None];
                    if copy.is_some() {
                        // The paper prefers the copy variant when it is
                        // expressible; keep both and let search decide.
                        copy_options.insert(0, copy);
                    }
                    for copt in copy_options {
                        let mut levels = p.levels.clone();
                        levels.push(LevelPlan {
                            level,
                            carrier,
                            retained: retained.clone(),
                            unrolls: Vec::new(),
                            tiles: new_tiles.clone(),
                            copy: copt,
                            constraint: constraint.clone(),
                        });
                        next.push(Partial {
                            levels,
                            remaining: p
                                .remaining
                                .iter()
                                .copied()
                                .filter(|&v| v != carrier)
                                .collect(),
                            unmapped: p
                                .unmapped
                                .iter()
                                .copied()
                                .filter(|r| !retained.contains(r))
                                .collect(),
                            tiled: tiled.clone(),
                        });
                    }
                }
            }
        }
        partials = next;
    }

    partials
        .into_iter()
        .enumerate()
        .map(|(i, p)| Variant {
            name: format!("v{}", i + 1),
            levels: p.levels,
        })
        .collect()
}

fn copy_buffer_name(cache_index: usize, levels: &[LevelPlan]) -> String {
    // P for the first copy, Q for the second, ... within a variant.
    let already = levels.iter().filter(|l| l.copy.is_some()).count();
    let base = (b'P' + (already as u8 + cache_index as u8) % 8) as char;
    base.to_string()
}

/// Renders a variant as a Table-4-style description.
pub fn describe_variant(v: &Variant, nest: &NestInfo, program: &eco_ir::Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let name_of = |v: VarId| program.var(v).name.clone();
    for l in &v.levels {
        let transf = match l.level {
            MemoryLevel::Register => {
                let us: Vec<String> = l.unrolls.iter().map(|&(w, _)| name_of(w)).collect();
                format!("Unroll-and-jam {}", us.join(" and "))
            }
            MemoryLevel::Cache(_) => {
                let ts: Vec<String> = l.tiles.iter().map(|&(w, _)| name_of(w)).collect();
                let mut s = if ts.is_empty() {
                    "-".to_string()
                } else {
                    format!("Tile {}", ts.join(" and "))
                };
                if let Some(c) = &l.copy {
                    let _ = write!(s, ", Copy {}", program.array(c.array).name);
                }
                s
            }
        };
        let mut retained_names: Vec<String> = l
            .retained
            .iter()
            .map(|&r| program.array(nest.refs[r].array).name.clone())
            .collect();
        retained_names.dedup();
        let _ = writeln!(
            out,
            "{:4} {:4} {:28} {:16} (retains {})",
            l.level.to_string(),
            name_of(l.carrier),
            transf,
            if l.constraint.factors.is_empty() || l.constraint.bound == u64::MAX {
                "-".to_string()
            } else {
                l.constraint.to_string()
            },
            retained_names.join(",")
        );
    }
    out
}
