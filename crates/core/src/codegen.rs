//! Code generation: instantiating a [`Variant`](crate::Variant) with
//! concrete parameter values, by composing the `eco-transform` passes.
//!
//! The pipeline follows §3.2 of the paper: tiling-related structure
//! first (tile + permute via `tile_nest`), then the parameter-dependent
//! transformations — unroll-and-jam, scalar replacement, copy-buffer
//! insertion. Prefetch insertion is separate
//! ([`eco_transform::insert_prefetch`]) because the search adds it one
//! data structure at a time.

use crate::variant::{ParamValues, Variant};
use crate::EcoError;
use eco_analysis::NestInfo;
use eco_ir::{AffineExpr, Program, VarId};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_transform::{
    copy_in, scalar_replace, tile_nest, unroll_and_jam, CopyDim, CopySpec, LoopSel, TileSpec,
};

/// Generates the complete code for `variant` under `params`.
///
/// # Errors
///
/// Fails if a parameter is missing or zero, a constraint is violated,
/// scalar replacement exceeds the register file
/// ([`EcoError::Transform`] wrapping `RegisterPressure` — the search
/// treats this point as infeasible), or any underlying pass fails.
pub fn generate(
    kernel: &Kernel,
    nest: &NestInfo,
    variant: &Variant,
    params: &ParamValues,
    machine: &MachineDesc,
) -> Result<Program, EcoError> {
    for name in variant.param_names() {
        match params.get(&name) {
            Some(0) | None => {
                return Err(EcoError::BadParams(format!(
                    "parameter {name} missing or zero"
                )))
            }
            _ => {}
        }
    }
    if !variant.feasible(params) {
        return Err(EcoError::Infeasible);
    }
    let all_vars = nest.loop_vars();

    // ---- tiling + permutation ----
    let point_order = variant.point_order(&all_vars);
    let tiles: Vec<TileSpec> = all_vars
        .iter()
        .filter_map(|&v| {
            variant.tile_param(v).map(|nm| TileSpec {
                var: v,
                tile: params[nm],
            })
        })
        .collect();
    // Control-loop order (Figure 1(c): KK, JJ, II): the controls of data
    // retained at *outer* memory levels go outermost — their tiles
    // persist the longest, and the per-tile copy code must sit outside
    // the controls of inner levels so a tile is copied exactly once.
    // Ties break by subscript dimension, contiguous dimension first.
    let level_dim_of = |v: VarId| -> (usize, usize) {
        for (li, level) in variant.levels.iter().enumerate().rev() {
            for &r in &level.retained {
                let rf = &nest.refs[r];
                for d in 0..rf.idx.len() {
                    if rf.idx[d].uses(v) {
                        return (li, d);
                    }
                }
            }
        }
        (0, usize::MAX)
    };
    let mut tiled_vars: Vec<VarId> = tiles.iter().map(|t| t.var).collect();
    tiled_vars.sort_by_key(|&v| {
        let (level, dim) = level_dim_of(v);
        (std::cmp::Reverse(level), dim)
    });
    let mut order: Vec<LoopSel> = tiled_vars.into_iter().map(LoopSel::Control).collect();
    order.extend(point_order.iter().map(|&v| LoopSel::Point(v)));
    let (mut program, control_vars) = tile_nest(&kernel.program, &tiles, &order)?;
    let control_of = |v: VarId| -> Option<VarId> {
        tiles
            .iter()
            .position(|t| t.var == v)
            .map(|i| control_vars[i])
    };

    // ---- unroll-and-jam (register level) ----
    for &(v, ref nm) in &variant.levels[0].unrolls {
        let u = params[nm];
        if u > 1 {
            program = unroll_and_jam(&program, v, u)?;
        }
    }

    // ---- scalar replacement ----
    program = scalar_replace(
        &program,
        variant.register_carrier(),
        Some(machine.fp_registers),
    )?;

    // ---- copy optimization ----
    for level in &variant.levels[1..] {
        let Some(plan) = &level.copy else { continue };
        let rf = &nest.refs[level.retained[0]];
        let mut region = Vec::with_capacity(plan.dim_loops.len());
        for (d, &v) in plan.dim_loops.iter().enumerate() {
            let ctl = control_of(v).ok_or_else(|| {
                EcoError::BadParams(format!(
                    "copy of {} needs loop {} tiled",
                    kernel.program.array(plan.array).name,
                    kernel.program.var(v).name
                ))
            })?;
            let tile_nm = variant.tile_param(v).expect("tiled");
            region.push(CopyDim {
                lo: AffineExpr::var(ctl).shifted(rf.idx[d].constant_part()),
                extent: params[tile_nm],
            });
        }
        // Place the copy at the innermost control among the region's
        // controls (last in the built order).
        let at = order
            .iter()
            .filter_map(|s| match s {
                LoopSel::Control(v) if plan.dim_loops.contains(v) => control_of(*v),
                _ => None,
            })
            .next_back()
            .expect("region has controls");
        program = copy_in(
            &program,
            &CopySpec {
                at,
                array: plan.array,
                region,
                buffer_name: plan.buffer.clone(),
            },
        )?;
    }

    program.name = format!("{}_{}", kernel.name, variant.name);
    Ok(program)
}
