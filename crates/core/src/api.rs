//! The service-layer tuning API: one request/response pair.
//!
//! [`TuneRequest`] carries everything one tuning run needs — the
//! kernel, the machine description, the [`SearchOptions`] and the
//! [`EngineConfig`] — and is the *same* type whether the run is
//! launched from a test, from the `eco`/`repro` CLIs, or shipped over
//! the `eco serve` socket: [`TuneRequest::to_json`] and
//! [`TuneRequest::from_json`] round-trip it through the deterministic
//! [`Json`] builder (stable field order), so the rendered bytes double
//! as a replay log and as the input to [`TuneRequest::fingerprint`].
//!
//! [`TuneResponse`] pairs the tuning result with the engine's work
//! totals. The pre-service-layer names (`OptimizeRequest`,
//! `OptimizeReport`, `Optimizer::run`) are gone; DESIGN.md §"Service
//! layer" documents the request/response API.
//!
//! # Examples
//!
//! ```
//! use eco_core::{SearchOptions, TuneRequest};
//! use eco_kernels::Kernel;
//! use eco_machine::MachineDesc;
//!
//! # fn main() -> Result<(), eco_core::EcoError> {
//! let request = TuneRequest::new(Kernel::matmul(), MachineDesc::sgi_r10000().scaled(32))
//!     .options(SearchOptions::builder().search_n(24).max_variants(1).build()?);
//! let response = request.run()?;
//! assert!(response.tuned.stats.points > 0);
//! assert!(response.engine.evaluated > 0);
//! # Ok(())
//! # }
//! ```

use crate::search::{Optimizer, SearchOptions, Tuned};
use crate::EcoError;
use eco_exec::events::{Fnv64, Json};
use eco_exec::{Engine, EngineConfig, EngineStats, Evaluator};
use eco_kernels::Kernel;
use eco_machine::{CacheDesc, CostModel, MachineDesc, TlbDesc};
use std::hash::Hasher as _;

/// Version stamped into every serialized [`TuneRequest`]; bump on any
/// field or rendering change so drift is self-describing.
pub const API_VERSION: u64 = 1;

/// Everything one tuning run needs, in one serializable value.
#[derive(Debug, Clone)]
pub struct TuneRequest {
    /// The kernel to tune.
    pub kernel: Kernel,
    /// The machine the run targets.
    pub machine: MachineDesc,
    /// Search options.
    pub options: SearchOptions,
    /// Evaluation-engine configuration.
    pub engine: EngineConfig,
}

/// What a tuning run returns: the tuned kernel plus the engine's work
/// totals (evaluations, memo/store hits, errors).
#[derive(Debug, Clone)]
pub struct TuneResponse {
    /// The tuning result.
    pub tuned: Tuned,
    /// Evaluation-engine totals for this run.
    pub engine: EngineStats,
}

impl TuneRequest {
    /// A request for `kernel` on `machine` with default options and
    /// engine configuration.
    pub fn new(kernel: Kernel, machine: MachineDesc) -> Self {
        TuneRequest {
            kernel,
            machine,
            options: SearchOptions::default(),
            engine: EngineConfig::new(),
        }
    }

    /// Sets the search options (builder style).
    #[must_use]
    pub fn options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the engine configuration (builder style).
    #[must_use]
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Runs the full two-phase optimization, constructing a private
    /// [`Engine`] from the request's configuration.
    ///
    /// # Errors
    ///
    /// Fails on invalid options, an unopenable trace file or result
    /// store, an unanalyzable kernel, or when no variant could be
    /// generated and measured.
    pub fn run(&self) -> Result<TuneResponse, EcoError> {
        let engine = Engine::with_config(self.machine.clone(), self.engine.clone())?;
        self.run_on(&engine)
    }

    /// Runs the optimization against a caller-supplied [`Evaluator`]
    /// (a shared engine amortizes the memo cache and result store
    /// across requests — this is what `eco serve` does; tests
    /// substitute counting evaluators). The request's own `engine`
    /// configuration is ignored on this path.
    ///
    /// # Errors
    ///
    /// Fails on invalid options, an engine targeting a different
    /// machine, an unanalyzable kernel, or when no variant could be
    /// generated and measured.
    pub fn run_on(&self, engine: &dyn Evaluator) -> Result<TuneResponse, EcoError> {
        let mut optimizer = Optimizer::new(self.machine.clone());
        optimizer.opts = self.options.clone();
        let stats_before = engine.stats();
        let tuned = optimizer.run_with(&self.kernel, engine)?;
        let after = engine.stats();
        Ok(TuneResponse {
            tuned,
            engine: EngineStats {
                requested: after.requested - stats_before.requested,
                evaluated: after.evaluated - stats_before.evaluated,
                cache_hits: after.cache_hits - stats_before.cache_hits,
                store_hits: after.store_hits - stats_before.store_hits,
                dedup_waits: after.dedup_waits - stats_before.dedup_waits,
                errors: after.errors - stats_before.errors,
                ff_windows: after.ff_windows - stats_before.ff_windows,
                ff_accesses: after.ff_accesses - stats_before.ff_accesses,
            },
        })
    }

    /// Renders the request through the order-preserving [`Json`]
    /// builder: `api_version`, the kernel *by name* (kernels are code,
    /// not data — [`TuneRequest::from_json`] resolves the name against
    /// [`Kernel::all`]), the full machine description, and the
    /// [`SearchOptions::to_json`] / [`EngineConfig::to_json`] objects.
    /// Two requests with equal content render byte-identical documents.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("api_version", Json::UInt(API_VERSION))
            .field("kernel", Json::str(&self.kernel.name))
            .field("machine", machine_to_json(&self.machine))
            .field("options", self.options.to_json())
            .field("engine", self.engine.to_json())
    }

    /// Parses a request rendered by [`TuneRequest::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field, an
    /// unknown kernel name, an unsupported `api_version`, or invalid
    /// options.
    pub fn from_json(doc: &Json) -> Result<TuneRequest, String> {
        let version = doc
            .get("api_version")
            .and_then(Json::as_u64)
            .ok_or("request: missing field 'api_version'")?;
        if version != API_VERSION {
            return Err(format!(
                "request: api_version {version} not supported (this build speaks {API_VERSION})"
            ));
        }
        let name = doc
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("request: field 'kernel' must be a kernel name")?;
        let kernel = Kernel::all()
            .into_iter()
            .find(|k| k.name == name)
            .ok_or_else(|| {
                let known: Vec<String> = Kernel::all().into_iter().map(|k| k.name).collect();
                format!(
                    "request: unknown kernel '{name}' (known: {})",
                    known.join(", ")
                )
            })?;
        let machine = machine_from_json(
            doc.get("machine")
                .ok_or("request: missing field 'machine'")?,
        )?;
        let options = SearchOptions::from_json(
            doc.get("options")
                .ok_or("request: missing field 'options'")?,
        )?;
        let engine =
            EngineConfig::from_json(doc.get("engine").ok_or("request: missing field 'engine'")?)?;
        Ok(TuneRequest {
            kernel,
            machine,
            options,
            engine,
        })
    }

    /// The FNV-1a fingerprint of the rendered request — the identity
    /// `eco serve` dedupes identical in-flight requests by, and the
    /// natural key for logging a request stream.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.to_json().render().as_bytes());
        h.finish()
    }
}

/// Renders a full machine description as deterministic [`Json`] (every
/// field explicit, stable order) — the wire form used inside
/// [`TuneRequest::to_json`].
pub fn machine_to_json(machine: &MachineDesc) -> Json {
    let caches = Json::Arr(
        machine
            .caches
            .iter()
            .map(|c| {
                Json::obj()
                    .field("name", Json::str(&c.name))
                    .field("capacity_bytes", Json::UInt(c.capacity_bytes as u64))
                    .field("associativity", Json::UInt(c.associativity as u64))
                    .field("line_bytes", Json::UInt(c.line_bytes as u64))
                    .field("miss_penalty_cycles", Json::UInt(c.miss_penalty_cycles))
            })
            .collect(),
    );
    Json::obj()
        .field("name", Json::str(&machine.name))
        .field("clock_mhz", Json::UInt(machine.clock_mhz))
        .field("fp_registers", Json::UInt(machine.fp_registers as u64))
        .field("caches", caches)
        .field(
            "tlb",
            Json::obj()
                .field("entries", Json::UInt(machine.tlb.entries as u64))
                .field("page_bytes", Json::UInt(machine.tlb.page_bytes as u64))
                .field(
                    "miss_penalty_cycles",
                    Json::UInt(machine.tlb.miss_penalty_cycles),
                ),
        )
        .field(
            "cost",
            Json::obj()
                .field(
                    "flop_cycles_x1000",
                    Json::UInt(machine.cost.flop_cycles_x1000),
                )
                .field(
                    "mem_issue_cycles_x1000",
                    Json::UInt(machine.cost.mem_issue_cycles_x1000),
                )
                .field(
                    "prefetch_issue_cycles_x1000",
                    Json::UInt(machine.cost.prefetch_issue_cycles_x1000),
                )
                .field(
                    "loop_overhead_cycles_x1000",
                    Json::UInt(machine.cost.loop_overhead_cycles_x1000),
                )
                .field(
                    "memory_bandwidth_cycles_per_line_x1000",
                    Json::UInt(machine.cost.memory_bandwidth_cycles_per_line_x1000),
                ),
        )
}

/// Parses a machine description rendered by [`machine_to_json`].
///
/// # Errors
///
/// Returns a message naming the missing or ill-typed field.
pub fn machine_from_json(doc: &Json) -> Result<MachineDesc, String> {
    fn uint(doc: &Json, ctx: &str, name: &str) -> Result<u64, String> {
        doc.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{ctx}: field '{name}' must be a non-negative integer"))
    }
    fn text(doc: &Json, ctx: &str, name: &str) -> Result<String, String> {
        Ok(doc
            .get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: field '{name}' must be a string"))?
            .to_string())
    }
    let caches = match doc.get("caches") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|c| {
                Ok(CacheDesc {
                    name: text(c, "cache", "name")?,
                    capacity_bytes: uint(c, "cache", "capacity_bytes")? as usize,
                    associativity: uint(c, "cache", "associativity")? as usize,
                    line_bytes: uint(c, "cache", "line_bytes")? as usize,
                    miss_penalty_cycles: uint(c, "cache", "miss_penalty_cycles")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("machine: field 'caches' must be an array".into()),
    };
    let tlb = doc
        .get("tlb")
        .ok_or("machine: missing field 'tlb'")
        .map(|t| {
            Ok::<TlbDesc, String>(TlbDesc {
                entries: uint(t, "tlb", "entries")? as usize,
                page_bytes: uint(t, "tlb", "page_bytes")? as usize,
                miss_penalty_cycles: uint(t, "tlb", "miss_penalty_cycles")?,
            })
        })??;
    let cost = doc
        .get("cost")
        .ok_or("machine: missing field 'cost'")
        .map(|c| {
            Ok::<CostModel, String>(CostModel {
                flop_cycles_x1000: uint(c, "cost", "flop_cycles_x1000")?,
                mem_issue_cycles_x1000: uint(c, "cost", "mem_issue_cycles_x1000")?,
                prefetch_issue_cycles_x1000: uint(c, "cost", "prefetch_issue_cycles_x1000")?,
                loop_overhead_cycles_x1000: uint(c, "cost", "loop_overhead_cycles_x1000")?,
                memory_bandwidth_cycles_per_line_x1000: uint(
                    c,
                    "cost",
                    "memory_bandwidth_cycles_per_line_x1000",
                )?,
            })
        })??;
    Ok(MachineDesc {
        name: text(doc, "machine", "name")?,
        clock_mhz: uint(doc, "machine", "clock_mhz")?,
        fp_registers: uint(doc, "machine", "fp_registers")? as usize,
        caches,
        tlb,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchStrategy;

    #[test]
    fn request_round_trips_through_json() {
        let request =
            TuneRequest::new(Kernel::jacobi3d(), MachineDesc::ultrasparc_iie().scaled(16))
                .options(
                    SearchOptions::builder()
                        .search_n(20)
                        .max_variants(2)
                        .robustness_sizes(vec![16, 32])
                        .strategy(SearchStrategy::Random { points: 9, seed: 3 })
                        .tlb_prune(true)
                        .certify(true)
                        .build()
                        .expect("options"),
                )
                .engine(EngineConfig::new().threads(3).memoize(false));
        let doc = request.to_json();
        let text = doc.render();
        let reparsed = Json::parse(&text).expect("parses");
        let back = TuneRequest::from_json(&reparsed).expect("round-trips");
        assert_eq!(back.kernel.name, request.kernel.name);
        assert_eq!(back.machine, request.machine);
        assert_eq!(back.options, request.options);
        assert_eq!(back.engine, request.engine);
        assert_eq!(back.to_json().render(), text, "render is canonical");
        assert_eq!(back.fingerprint(), request.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_requests() {
        let machine = MachineDesc::sgi_r10000().scaled(32);
        let a = TuneRequest::new(Kernel::matmul(), machine.clone());
        let b = TuneRequest::new(Kernel::jacobi3d(), machine.clone());
        let opts = SearchOptions {
            search_n: 47,
            ..SearchOptions::default()
        };
        let c = TuneRequest::new(Kernel::matmul(), machine).options(opts);
        assert_ne!(a.fingerprint(), b.fingerprint(), "kernel matters");
        assert_ne!(a.fingerprint(), c.fingerprint(), "options matter");
        assert_eq!(
            a.fingerprint(),
            a.clone().fingerprint(),
            "fingerprint is stable"
        );
    }

    #[test]
    fn from_json_rejects_bad_requests() {
        let good = TuneRequest::new(Kernel::matmul(), MachineDesc::sgi_r10000()).to_json();
        let err = |doc: &Json| TuneRequest::from_json(doc).expect_err("must fail");
        assert!(err(&Json::obj()).contains("api_version"));
        let wrong_version = Json::obj().field("api_version", Json::UInt(99));
        assert!(err(&wrong_version).contains("not supported"));
        let mut unknown = Json::parse(&good.render()).expect("parses");
        if let Json::Obj(fields) = &mut unknown {
            for (key, value) in fields.iter_mut() {
                if key == "kernel" {
                    *value = Json::str("nope");
                }
            }
        }
        let msg = err(&unknown);
        assert!(msg.contains("unknown kernel 'nope'"), "{msg}");
        assert!(msg.contains("mm"), "lists known kernels: {msg}");
    }

    #[test]
    fn machine_description_round_trips() {
        for machine in [
            MachineDesc::sgi_r10000(),
            MachineDesc::ultrasparc_iie(),
            MachineDesc::sgi_r10000().scaled(32),
        ] {
            let doc = machine_to_json(&machine);
            let back =
                machine_from_json(&Json::parse(&doc.render()).expect("parses")).expect("machine");
            assert_eq!(back, machine);
        }
        assert!(machine_from_json(&Json::obj()).is_err());
    }
}
