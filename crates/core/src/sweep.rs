//! Sweep planning: turning one figure request into an ordered list of
//! self-contained, fingerprinted [`Shard`]s.
//!
//! The paper's figures are sweeps over problem sizes — embarrassingly
//! parallel once the tuned programs exist. This module is the *plan*
//! layer of the plan/execute/gather pipeline (DESIGN.md §"Sharded
//! sweeps"): a [`SweepSpec`] describes what a figure measures (kernel,
//! machine, series families, sizes) and [`SweepPlan::plan`] splits it
//! along (variant-family × size-chunk) boundaries into [`Shard`]s.
//! Execution and gathering live in `eco-bench`; this crate only defines
//! the deterministic plan so that every consumer — the local worker
//! pool, the `eco serve` remote mode, and the resume check — agrees on
//! shard identity.
//!
//! Like [`TuneRequest`](crate::TuneRequest), a shard serializes through
//! the order-preserving [`Json`] builder: [`Shard::to_json`] /
//! [`Shard::from_json`] round-trip byte-identically, and
//! [`Shard::fingerprint`] hashes the rendering. The fingerprint is the
//! shard's identity everywhere: the completion records a resumed sweep
//! skips by, the in-flight dedupe key of the serve-backed remote mode,
//! and the file stem of per-shard manifests and logs. Two plans built
//! from equal specs produce equal shards with equal fingerprints, in
//! the same order.

use crate::api::{machine_from_json, machine_to_json};
use eco_exec::events::{Fnv64, Json};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hash::Hasher as _;

/// Version stamped into every serialized [`Shard`] and [`SweepPlan`];
/// bump on any field or rendering change so drift is self-describing.
pub const PLAN_VERSION: u64 = 1;

/// One series family of a figure sweep: a named curve, and whether
/// producing it requires a tuning search (`tuned`) or only measurement
/// of a size-parameterized baseline program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySpec {
    /// Series name as it appears in the figure CSV header ("ECO",
    /// "Native", "ATLAS", "Vendor").
    pub name: String,
    /// Whether this family runs a search before it can be measured.
    /// Tuned families get a dedicated tune shard ahead of their
    /// measure shards.
    pub tuned: bool,
}

impl FamilySpec {
    /// A family spec (builder convenience).
    pub fn new(name: &str, tuned: bool) -> FamilySpec {
        FamilySpec {
            name: name.to_string(),
            tuned,
        }
    }
}

/// Everything one figure sweep measures, in one value: the input to
/// [`SweepPlan::plan`] and the context gather-side consumers read back
/// out (series order, clock rate).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Figure label ("fig4a", …) — names the output files.
    pub figure: String,
    /// The kernel the figure sweeps.
    pub kernel: Kernel,
    /// The (already scaled) machine the figure targets.
    pub machine: MachineDesc,
    /// Tuning size for the figure's ECO search.
    pub search_n: i64,
    /// Series families in figure column order.
    pub families: Vec<FamilySpec>,
    /// Problem sizes in sweep order.
    pub sizes: Vec<i64>,
}

/// What a shard does: run a family's search, or measure a family's
/// programs at a chunk of sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// Run the family's tuning/search pass (populates the shared result
    /// store and, for the ECO family, produces the figure manifest).
    Tune,
    /// Measure the family's program at each of the shard's sizes.
    Measure,
}

impl ShardKind {
    /// The wire name ("tune" / "measure").
    pub fn as_str(self) -> &'static str {
        match self {
            ShardKind::Tune => "tune",
            ShardKind::Measure => "measure",
        }
    }

    /// Parses a wire name back into a kind.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown kind.
    pub fn parse(text: &str) -> Result<ShardKind, String> {
        match text {
            "tune" => Ok(ShardKind::Tune),
            "measure" => Ok(ShardKind::Measure),
            other => Err(format!("shard: unknown kind '{other}'")),
        }
    }
}

/// One self-contained unit of sweep work: everything a worker process
/// needs to execute it, with no reference back to the plan.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Figure label this shard contributes to.
    pub figure: String,
    /// The kernel (serialized by name, like [`TuneRequest`](crate::TuneRequest)).
    pub kernel: Kernel,
    /// The (already scaled) target machine.
    pub machine: MachineDesc,
    /// The figure's ECO tuning size (family-specific search budgets are
    /// resolved by the executor from the family name).
    pub search_n: i64,
    /// Which series family this shard belongs to.
    pub family: String,
    /// Tune or measure.
    pub kind: ShardKind,
    /// Sizes to measure (empty for tune shards).
    pub sizes: Vec<i64>,
}

impl Shard {
    /// Renders the shard through the order-preserving [`Json`] builder.
    /// Equal shards render byte-identical documents; the rendering is
    /// the input to [`Shard::fingerprint`].
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("plan_version", Json::UInt(PLAN_VERSION))
            .field("figure", Json::str(&self.figure))
            .field("kernel", Json::str(&self.kernel.name))
            .field("machine", machine_to_json(&self.machine))
            .field("search_n", Json::Int(self.search_n))
            .field("family", Json::str(&self.family))
            .field("kind", Json::str(self.kind.as_str()))
            .field(
                "sizes",
                Json::Arr(self.sizes.iter().map(|&n| Json::Int(n)).collect()),
            )
    }

    /// Parses a shard rendered by [`Shard::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field, an
    /// unknown kernel name, or an unsupported `plan_version`.
    pub fn from_json(doc: &Json) -> Result<Shard, String> {
        let version = doc
            .get("plan_version")
            .and_then(Json::as_u64)
            .ok_or("shard: missing field 'plan_version'")?;
        if version != PLAN_VERSION {
            return Err(format!(
                "shard: plan_version {version} not supported (this build speaks {PLAN_VERSION})"
            ));
        }
        let text = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("shard: field '{name}' must be a string"))
        };
        let name = text("kernel")?;
        let kernel = Kernel::all()
            .into_iter()
            .find(|k| k.name == name)
            .ok_or_else(|| {
                let known: Vec<String> = Kernel::all().into_iter().map(|k| k.name).collect();
                format!(
                    "shard: unknown kernel '{name}' (known: {})",
                    known.join(", ")
                )
            })?;
        let machine =
            machine_from_json(doc.get("machine").ok_or("shard: missing field 'machine'")?)?;
        let search_n = doc
            .get("search_n")
            .and_then(Json::as_i64)
            .ok_or("shard: field 'search_n' must be an integer")?;
        let kind = ShardKind::parse(&text("kind")?)?;
        let sizes = match doc.get("sizes") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|v| v.as_i64().ok_or("shard: sizes must be integers"))
                .collect::<Result<Vec<i64>, &str>>()
                .map_err(String::from)?,
            _ => return Err("shard: field 'sizes' must be an array".into()),
        };
        Ok(Shard {
            figure: text("figure")?,
            kernel,
            machine,
            search_n,
            family: text("family")?,
            kind,
            sizes,
        })
    }

    /// The FNV-1a fingerprint of the rendered shard — its identity for
    /// completion records, remote dedupe, and per-shard file names.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.to_json().render().as_bytes());
        h.finish()
    }
}

/// A deterministic, ordered list of [`Shard`]s covering one figure:
/// tune shards first (a family's measurement depends on its search),
/// then measure shards grouped by family in series order.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Figure label the plan covers.
    pub figure: String,
    /// Shards in execution-dependency order.
    pub shards: Vec<Shard>,
}

impl SweepPlan {
    /// Splits `spec` into shards: one tune shard per tuned family (in
    /// family order), then per family (in family order) the sweep
    /// sizes chunked `sizes_per_shard` at a time.
    ///
    /// # Errors
    ///
    /// Fails on an empty size list, an empty family list, or a zero
    /// chunk size.
    pub fn plan(spec: &SweepSpec, sizes_per_shard: usize) -> Result<SweepPlan, String> {
        if sizes_per_shard == 0 {
            return Err("plan: sizes_per_shard must be at least 1".into());
        }
        if spec.families.is_empty() {
            return Err(format!("plan: figure {} has no families", spec.figure));
        }
        if spec.sizes.is_empty() {
            return Err(format!("plan: figure {} has no sizes", spec.figure));
        }
        let shard = |family: &FamilySpec, kind: ShardKind, sizes: Vec<i64>| Shard {
            figure: spec.figure.clone(),
            kernel: spec.kernel.clone(),
            machine: spec.machine.clone(),
            search_n: spec.search_n,
            family: family.name.clone(),
            kind,
            sizes,
        };
        let mut shards = Vec::new();
        for family in spec.families.iter().filter(|f| f.tuned) {
            shards.push(shard(family, ShardKind::Tune, Vec::new()));
        }
        for family in &spec.families {
            for chunk in spec.sizes.chunks(sizes_per_shard) {
                shards.push(shard(family, ShardKind::Measure, chunk.to_vec()));
            }
        }
        Ok(SweepPlan {
            figure: spec.figure.clone(),
            shards,
        })
    }

    /// The tune shards (the stage every measure shard waits on).
    pub fn tune_shards(&self) -> impl Iterator<Item = &Shard> {
        self.shards.iter().filter(|s| s.kind == ShardKind::Tune)
    }

    /// The measure shards.
    pub fn measure_shards(&self) -> impl Iterator<Item = &Shard> {
        self.shards.iter().filter(|s| s.kind == ShardKind::Measure)
    }

    /// Renders the whole plan (the `plan.json` artifact a sweep writes
    /// before executing anything).
    pub fn to_json(&self) -> Json {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                // Each entry pairs the shard document with its own
                // fingerprint so the artifact is greppable by identity.
                Json::obj()
                    .field("fingerprint", Json::fingerprint(s.fingerprint()))
                    .field("shard", s.to_json())
            })
            .collect();
        Json::obj()
            .field("plan_version", Json::UInt(PLAN_VERSION))
            .field("figure", Json::str(&self.figure))
            .field("shards", Json::Arr(shards))
    }

    /// The FNV-1a fingerprint of the rendered plan.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.to_json().render().as_bytes());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            figure: "fig4a".into(),
            kernel: Kernel::matmul(),
            machine: MachineDesc::sgi_r10000().scaled(32),
            search_n: 120,
            families: vec![
                FamilySpec::new("ECO", true),
                FamilySpec::new("Native", false),
                FamilySpec::new("ATLAS", true),
                FamilySpec::new("Vendor", true),
            ],
            sizes: vec![24, 32, 48, 64, 80],
        }
    }

    #[test]
    fn plan_orders_tune_shards_before_measure_shards() {
        let plan = SweepPlan::plan(&spec(), 2).expect("plan");
        let tunes: Vec<&str> = plan.tune_shards().map(|s| s.family.as_str()).collect();
        assert_eq!(tunes, ["ECO", "ATLAS", "Vendor"]);
        assert!(plan.tune_shards().all(|s| s.sizes.is_empty()));
        // 4 families × ceil(5/2) chunks of sizes.
        assert_eq!(plan.measure_shards().count(), 4 * 3);
        assert_eq!(plan.shards.len(), 3 + 12);
        let first_measure = plan.measure_shards().next().expect("measure shard");
        assert_eq!(first_measure.family, "ECO");
        assert_eq!(first_measure.sizes, vec![24, 32]);
        // Tune shards strictly precede measure shards in plan order.
        let first_measure_at = plan
            .shards
            .iter()
            .position(|s| s.kind == ShardKind::Measure)
            .expect("some measure shard");
        assert!(plan.shards[..first_measure_at]
            .iter()
            .all(|s| s.kind == ShardKind::Tune));
    }

    #[test]
    fn equal_specs_plan_identical_shards_and_fingerprints() {
        let a = SweepPlan::plan(&spec(), 4).expect("plan");
        let b = SweepPlan::plan(&spec(), 4).expect("plan");
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let fps: Vec<u64> = a.shards.iter().map(Shard::fingerprint).collect();
        let mut unique = fps.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), fps.len(), "shard fingerprints are distinct");
        // A different chunking yields a different plan.
        let c = SweepPlan::plan(&spec(), 3).expect("plan");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn shard_round_trips_through_json() {
        let plan = SweepPlan::plan(&spec(), 2).expect("plan");
        for shard in &plan.shards {
            let text = shard.to_json().render();
            let back = Shard::from_json(&Json::parse(&text).expect("parses")).expect("round-trips");
            assert_eq!(back.to_json().render(), text, "render is canonical");
            assert_eq!(back.fingerprint(), shard.fingerprint());
            assert_eq!(back.kernel.name, shard.kernel.name);
            assert_eq!(back.machine, shard.machine);
        }
    }

    #[test]
    fn from_json_rejects_bad_shards() {
        let err = |doc: &Json| Shard::from_json(doc).expect_err("must fail");
        assert!(err(&Json::obj()).contains("plan_version"));
        let wrong = Json::obj().field("plan_version", Json::UInt(99));
        assert!(err(&wrong).contains("not supported"));
        let good = SweepPlan::plan(&spec(), 2).expect("plan").shards[0].to_json();
        let mut unknown = Json::parse(&good.render()).expect("parses");
        if let Json::Obj(fields) = &mut unknown {
            for (key, value) in fields.iter_mut() {
                if key == "kernel" {
                    *value = Json::str("nope");
                }
            }
        }
        assert!(err(&unknown).contains("unknown kernel 'nope'"));
        assert!(ShardKind::parse("explode").is_err());
    }

    #[test]
    fn plan_validates_inputs() {
        assert!(SweepPlan::plan(&spec(), 0).is_err());
        let mut empty_sizes = spec();
        empty_sizes.sizes.clear();
        assert!(SweepPlan::plan(&empty_sizes, 4).is_err());
        let mut no_families = spec();
        no_families.families.clear();
        assert!(SweepPlan::plan(&no_families, 4).is_err());
    }
}
