//! The static-certification sweep behind `eco lint`.
//!
//! Derives every Phase-1 variant of a kernel, generates each at its
//! model-derived initial parameters (backing off unroll factors exactly
//! like the search's screening round when register pressure rejects the
//! point), and certifies the result — plus one prefetch-augmented
//! artifact per prefetchable array — against the original kernel with
//! `eco-verify`. CI runs this over the Table-4 / Figure-1 kernels and
//! fails on any diagnostic. [`lint_sched`] is the concurrency
//! counterpart: the same sweep-and-fail contract, over interleavings
//! of the service layer's shared state instead of loop transforms.

use crate::codegen::generate;
use crate::search::Optimizer;
use crate::variant::derive_variants;
use crate::EcoError;
use eco_analysis::NestInfo;
use eco_ir::ArrayId;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_sched::models::ModelReport;
use eco_transform::insert_prefetch;
use eco_verify::{certify, Certificate};

/// One certified artifact of a lint sweep.
#[derive(Debug, Clone)]
pub struct LintEntry {
    /// The variant it was generated from.
    pub variant: String,
    /// Which artifact: `base`, or `prefetch ARRAY@D`.
    pub artifact: String,
    /// The certificate (the binding it holds under is recorded inside).
    pub cert: Certificate,
}

/// Certifies every derived variant of `kernel` (no copy-twin pruning:
/// the full Table-4 set) at problem size `n`, each at its model-derived
/// initial parameters, plus one artifact per prefetchable kernel data
/// array at `prefetch_distance`.
///
/// Variants that cannot generate even after unroll backoff are skipped
/// (they are equally unreachable for the search); arrays without
/// prefetchable references are skipped silently.
///
/// # Errors
///
/// Fails only if the kernel itself is unanalyzable.
pub fn lint_kernel(
    kernel: &Kernel,
    machine: &MachineDesc,
    n: i64,
    prefetch_distance: i64,
) -> Result<Vec<LintEntry>, EcoError> {
    let nest = NestInfo::from_program(&kernel.program)?;
    let variants = derive_variants(&nest, machine, &kernel.program);
    let opt = Optimizer::new(machine.clone());
    let binding = vec![(kernel.program.var(kernel.size).name.clone(), n)];
    let mut out = Vec::new();
    for v in &variants {
        let mut params = opt.initial_params(v);
        // The search's screening backoff: halve the largest unroll
        // factor until the point generates.
        let program = loop {
            match generate(kernel, &nest, v, &params, machine) {
                Ok(p) => break Some(p),
                Err(_) => {
                    let Some((nm, val)) = params
                        .iter()
                        .filter(|(nm, _)| nm.starts_with('U'))
                        .max_by_key(|&(_, val)| *val)
                        .map(|(nm, &val)| (nm.clone(), val))
                    else {
                        break None;
                    };
                    if val < 2 {
                        break None;
                    }
                    params.insert(nm, val / 2);
                }
            }
        };
        let Some(program) = program else {
            continue;
        };
        out.push(LintEntry {
            variant: v.name.clone(),
            artifact: "base".into(),
            cert: certify(&kernel.program, &program, &binding),
        });
        let carrier = v.register_carrier();
        // Prefetch artifacts cover the kernel's own data structures
        // (the paper's per-data-structure prefetch search of §3.2);
        // copy buffers are search-discovered artifacts certified by
        // `--certify`. Kernel arrays keep their ids in the generated
        // program — transforms only append copy buffers after them.
        for a in 0..kernel.program.arrays.len() {
            let array = ArrayId(a as u32);
            let Ok(pf) = insert_prefetch(&program, carrier, array, prefetch_distance) else {
                continue; // no prefetchable reference of this array
            };
            out.push(LintEntry {
                variant: v.name.clone(),
                artifact: format!(
                    "prefetch {}@{}",
                    program.array(array).name,
                    prefetch_distance
                ),
                cert: certify(&kernel.program, &pf, &binding),
            });
        }
    }
    Ok(out)
}

/// The concurrency half of the lint sweep (`eco lint --sched`): runs
/// the built-in eco-sched checker models of the service layer's shared
/// state — the store's write/index/gc protocol, the daemon's
/// whole-request dedupe, the engine's memo/in-flight rendezvous — each
/// exploring bounded-preemption interleavings under the given seed,
/// with lock-order analysis across every explored schedule. Any ECO-S
/// diagnostic in a returned report is a finding; CI fails on them the
/// same way it fails on a refused certificate.
///
/// Deterministic: the same `cfg` yields the same schedules, edges and
/// diagnostics, so output is diffable across runs and machines.
#[must_use]
pub fn lint_sched(cfg: &eco_sched::Config) -> Vec<ModelReport> {
    eco_sched::models::run_builtin(cfg)
}
