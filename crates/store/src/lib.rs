//! Disk-backed, content-addressed evaluation result store.
//!
//! The in-memory memo cache inside `eco-exec::Engine` dies with the
//! process; this crate persists measured [`Counters`] so `repro` and
//! `eco tune` runs warm-start across processes and a killed sweep
//! resumes for free. The store is keyed by the same FNV fingerprints
//! the engine already computes (`program_fingerprint` + the
//! machine/layout/params point hash), carried here as a [`StoreKey`]
//! so this crate needs no dependency on the executor.
//!
//! On-disk layout under the store root:
//!
//! * `records/<16-hex program fp><16-hex point fp>.json` — one
//!   versioned record per evaluated point, rendered through the
//!   deterministic [`Json`] builder and written atomically
//!   (temp file + rename), so concurrent writers and crashes never
//!   leave a torn record. Only successful measurements are stored;
//!   errors are cheap to re-derive and would otherwise need their own
//!   versioned encoding.
//! * `index.json` — LRU/age metadata per record (`bytes`, logical
//!   `created` / `last_used` stamps). The index is advisory: if it is
//!   missing or corrupt it is rebuilt by scanning `records/`, and
//!   stamps are *logical* access counters rather than wall-clock times
//!   so store behaviour (in particular [`ResultStore::gc`] eviction
//!   order) is deterministic under test.
//! * `shards/<16-hex shard fp>.json` — completion records for sweep
//!   shards ([`ResultStore::mark_shard_complete`]), written by the
//!   worker that finished the shard so a killed orchestrator can never
//!   lose finished work. Shard records live *outside* the LRU index:
//!   [`ResultStore::gc`] trims point records only, so a tight byte
//!   budget cannot erase the evidence a resumed sweep skips by.
//!
//! A record that fails to parse, carries an unknown
//! `record_version`, or echoes the wrong key is treated as a miss and
//! counted in [`StoreStats::rejected`] — a corrupt file can cost a
//! re-simulation but never a wrong result.

use eco_cachesim::{Counters, TagCounters};
use eco_events::Json;
use eco_metrics::{Counter, Registry};
use eco_sched::sync::atomic::{AtomicU64, Ordering};
use eco_sched::sync::{Arc, Mutex};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version stamp written into every record; readers reject records
/// from other versions (forward and backward) instead of guessing.
pub const RECORD_VERSION: u64 = 1;

/// Version stamp for `index.json`.
pub const INDEX_VERSION: u64 = 1;

/// Version stamp written into every shard-completion record; readers
/// reject records from other versions instead of guessing.
pub const SHARD_RECORD_VERSION: u64 = 1;

/// The content address of one evaluated point: the engine's program
/// fingerprint plus its machine/layout/params point hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// FNV-1a fingerprint of the program (name + pretty-printed text).
    pub program_fp: u64,
    /// FNV-1a hash of machine fingerprint, layout, parameter bindings
    /// and attribution flag.
    pub point_fp: u64,
}

impl StoreKey {
    /// Builds a key from its two fingerprint halves.
    pub fn new(program_fp: u64, point_fp: u64) -> StoreKey {
        StoreKey {
            program_fp,
            point_fp,
        }
    }

    /// The 32-hex-digit record file stem for this key.
    fn stem(&self) -> String {
        format!("{:016x}{:016x}", self.program_fp, self.point_fp)
    }
}

/// A store-level failure (I/O on open, write, or gc).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The path involved.
    pub path: String,
    /// The underlying error.
    pub msg: String,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error at {}: {}", self.path, self.msg)
    }
}

impl Error for StoreError {}

fn store_err(path: &Path, err: impl fmt::Display) -> StoreError {
    StoreError {
        path: path.display().to_string(),
        msg: err.to_string(),
    }
}

/// Session counters for one open store handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) record.
    pub misses: u64,
    /// Records written this session.
    pub puts: u64,
    /// Records rejected as corrupt / wrong version / wrong key echo.
    pub rejected: u64,
}

/// What [`ResultStore::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Records evicted.
    pub evicted: u64,
    /// Bytes of record data remaining after the sweep.
    pub remaining_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    bytes: u64,
    created: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    index: BTreeMap<StoreKey, IndexEntry>,
    /// Logical access clock; bumped on every get/put.
    clock: u64,
    stats: StoreStats,
}

/// Process-wide metric handles, resolved once per store handle.
/// Operational telemetry only: never recorded in manifests or golden
/// results, and unlike [`StoreStats`] the totals aggregate across
/// every open handle in the process.
#[derive(Debug)]
struct StoreMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    puts: Arc<Counter>,
    rejected: Arc<Counter>,
    gc_evicted: Arc<Counter>,
    bytes_written: Arc<Counter>,
}

impl StoreMetrics {
    fn resolve() -> StoreMetrics {
        let r = Registry::global();
        let c = |name: &str, help: &str| r.counter(name, help, &[]);
        StoreMetrics {
            hits: c("eco_store_hits_total", "Lookups served from disk."),
            misses: c(
                "eco_store_misses_total",
                "Lookups that found no valid record.",
            ),
            puts: c("eco_store_puts_total", "Records written."),
            rejected: c(
                "eco_store_rejected_total",
                "Records rejected as corrupt, wrong version, or wrong key.",
            ),
            gc_evicted: c("eco_store_gc_evicted_total", "Records evicted by gc."),
            bytes_written: c("eco_store_bytes_written_total", "Record bytes written."),
        }
    }
}

/// A disk-backed result store rooted at one directory.
///
/// All operations take `&self`; an interior mutex serialises index
/// updates. Concurrent *processes* sharing a root are safe too:
/// records are content-addressed (two writers of the same key write
/// identical bytes) and every file lands via an atomic rename.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    inner: Mutex<Inner>,
    metrics: StoreMetrics,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the directory tree cannot be created or scanned.
    pub fn open(root: impl AsRef<Path>) -> Result<ResultStore, StoreError> {
        let root = root.as_ref().to_path_buf();
        let records = root.join("records");
        fs::create_dir_all(&records).map_err(|e| store_err(&records, e))?;
        let mut inner = Inner::default();
        load_index(&root, &mut inner);
        reconcile_index(&records, &mut inner).map_err(|e| store_err(&records, e))?;
        Ok(ResultStore {
            root,
            inner: Mutex::new(inner),
            metrics: StoreMetrics::resolve(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn record_path(&self, key: &StoreKey) -> PathBuf {
        self.root
            .join("records")
            .join(format!("{}.json", key.stem()))
    }

    /// Looks up the counters recorded for `key`, bumping its LRU
    /// stamp. Corrupt, wrong-version, or wrong-key records count as
    /// misses (and as [`StoreStats::rejected`]).
    pub fn get(&self, key: StoreKey) -> Option<Counters> {
        let path = self.record_path(&key);
        let text = fs::read_to_string(&path).ok();
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let Some(text) = text else {
            inner.stats.misses += 1;
            self.metrics.misses.inc();
            return None;
        };
        match parse_record(&text, key) {
            Some(counters) => {
                inner.stats.hits += 1;
                self.metrics.hits.inc();
                if let Some(entry) = inner.index.get_mut(&key) {
                    entry.last_used = clock;
                } else {
                    inner.index.insert(
                        key,
                        IndexEntry {
                            bytes: text.len() as u64,
                            created: clock,
                            last_used: clock,
                        },
                    );
                }
                Some(counters)
            }
            None => {
                inner.stats.misses += 1;
                inner.stats.rejected += 1;
                self.metrics.misses.inc();
                self.metrics.rejected.inc();
                None
            }
        }
    }

    /// Writes the record for `key` atomically (temp file + rename) and
    /// updates the index.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors; an existing record is overwritten
    /// (same key ⇒ same bytes, so this is idempotent).
    pub fn put(&self, key: StoreKey, program: &str, counters: &Counters) -> Result<(), StoreError> {
        let doc = render_record(key, program, counters);
        let bytes = doc.render();
        let path = self.record_path(&key);
        #[cfg(eco_sched)]
        if faults::INDEX_BEFORE_WRITE.load(std::sync::atomic::Ordering::Relaxed) {
            // BUG, reintroduced for the checker: publish the index entry
            // before the record bytes are durable. A concurrent reader can
            // observe an index hit with no data file behind it.
            self.publish_index(key, bytes.len() as u64);
            eco_sched::model::yield_point("store.put.index_before_data");
            write_atomic(&path, bytes.as_bytes())?;
            self.metrics.puts.inc();
            self.metrics.bytes_written.add(bytes.len() as u64);
            return self.flush();
        }
        write_atomic(&path, bytes.as_bytes())?;
        self.metrics.puts.inc();
        self.metrics.bytes_written.add(bytes.len() as u64);
        self.publish_index(key, bytes.len() as u64);
        self.flush()
    }

    /// Second half of [`put`](Self::put): bump the logical clock and publish
    /// the index entry, after the record bytes are durable on disk.
    fn publish_index(&self, key: StoreKey, record_bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        inner.stats.puts += 1;
        let entry = inner.index.entry(key).or_insert(IndexEntry {
            bytes: 0,
            created: clock,
            last_used: clock,
        });
        entry.bytes = record_bytes;
        entry.last_used = clock;
    }

    /// Number of records currently indexed.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of record data currently indexed.
    pub fn bytes(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.index.values().map(|e| e.bytes).sum()
    }

    /// This handle's session counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().unwrap().stats
    }

    /// Evicts the coldest records (lowest logical `last_used`, keys as
    /// tie-break) until total record bytes fit `budget_bytes`, then
    /// persists the index.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors while deleting records or writing the
    /// index.
    pub fn gc(&self, budget_bytes: u64) -> Result<GcStats, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let mut total: u64 = inner.index.values().map(|e| e.bytes).sum();
        let mut order: Vec<(u64, StoreKey)> =
            inner.index.iter().map(|(k, e)| (e.last_used, *k)).collect();
        order.sort();
        let mut evicted = 0u64;
        for (_, key) in order {
            if total <= budget_bytes {
                break;
            }
            let path = self.record_path(&key);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(store_err(&path, e)),
            }
            if let Some(entry) = inner.index.remove(&key) {
                total -= entry.bytes;
            }
            evicted += 1;
        }
        drop(inner);
        self.metrics.gc_evicted.add(evicted);
        self.flush()?;
        Ok(GcStats {
            evicted,
            remaining_bytes: total,
        })
    }

    fn shard_path(&self, fingerprint: u64) -> PathBuf {
        self.root
            .join("shards")
            .join(format!("{fingerprint:016x}.json"))
    }

    /// Records that the sweep shard with `fingerprint` completed,
    /// embedding its gathered `result` document. Written atomically by
    /// the worker that executed the shard, so the record exists exactly
    /// when the shard's point records do — a resumed sweep that finds
    /// it can skip the shard without consulting anyone.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors; re-marking a completed shard
    /// overwrites with identical bytes (same shard ⇒ same result).
    pub fn mark_shard_complete(&self, fingerprint: u64, result: &Json) -> Result<(), StoreError> {
        let path = self.shard_path(fingerprint);
        let dir = path.parent().expect("shard path has a parent");
        fs::create_dir_all(dir).map_err(|e| store_err(dir, e))?;
        let doc = Json::obj()
            .field("shard_version", Json::UInt(SHARD_RECORD_VERSION))
            .field("shard", Json::fingerprint(fingerprint))
            .field("result", result.clone());
        write_atomic(&path, doc.render().as_bytes())
    }

    /// The result document recorded for shard `fingerprint`, or `None`
    /// when the shard has not completed. Records that fail to parse,
    /// carry an unknown version, or echo the wrong fingerprint are
    /// treated as absent — a corrupt file costs a shard re-run, never a
    /// wrong sweep.
    pub fn shard_complete(&self, fingerprint: u64) -> Option<Json> {
        let text = fs::read_to_string(self.shard_path(fingerprint)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("shard_version").and_then(Json::as_u64) != Some(SHARD_RECORD_VERSION) {
            return None;
        }
        if fp_field(&doc, "shard") != Some(fingerprint) {
            return None;
        }
        doc.get("result").cloned()
    }

    /// Number of shard-completion records on disk (resume evidence).
    pub fn shards_complete(&self) -> usize {
        fs::read_dir(self.root.join("shards")).map_or(0, |dir| {
            dir.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                .count()
        })
    }

    /// Persists `index.json` (atomically). Called by [`put`](Self::put)
    /// and [`gc`](Self::gc); LRU bumps from pure reads are flushed on
    /// drop.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn flush(&self) -> Result<(), StoreError> {
        let inner = self.inner.lock().unwrap();
        let mut entries = Json::obj();
        for (key, e) in &inner.index {
            entries = entries.field(
                &key.stem(),
                Json::obj()
                    .field("bytes", Json::UInt(e.bytes))
                    .field("created", Json::UInt(e.created))
                    .field("last_used", Json::UInt(e.last_used)),
            );
        }
        let doc = Json::obj()
            .field("index_version", Json::UInt(INDEX_VERSION))
            .field("clock", Json::UInt(inner.clock))
            .field("entries", entries);
        drop(inner);
        write_atomic(&self.root.join("index.json"), doc.render().as_bytes())
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Writes `bytes` to `path` via a sibling temp file + rename, so
/// readers only ever observe complete files.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    // Temp names must be unique per *call*, not just per process: two
    // threads of one process flushing the same path (serve workers,
    // the sweep orchestrator) would otherwise truncate each other's
    // half-written temp file and race the rename.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    #[allow(unused_mut)]
    let mut tmp = dir.join(format!(
        ".{stem}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    #[cfg(eco_sched)]
    if faults::TMP_NAME_COLLISION.load(std::sync::atomic::Ordering::Relaxed) {
        // BUG, reintroduced for the checker: the historical temp name had no
        // per-call sequence number, so two threads flushing the same path
        // truncate each other's half-written temp file and race the rename.
        tmp = dir.join(format!(".{stem}.{}.tmp", std::process::id()));
    }
    let mut f = fs::File::create(&tmp).map_err(|e| store_err(&tmp, e))?;
    #[cfg(eco_sched)]
    eco_sched::model::yield_point("store.write_atomic.tmp_created");
    f.write_all(bytes).map_err(|e| store_err(&tmp, e))?;
    f.sync_all().map_err(|e| store_err(&tmp, e))?;
    drop(f);
    #[cfg(eco_sched)]
    eco_sched::model::yield_point("store.write_atomic.pre_rename");
    fs::rename(&tmp, path).map_err(|e| store_err(path, e))
}

/// Fault hooks for the interleaving checker: each knob re-introduces one
/// historical (or representative) ordering bug so `eco-sched` regression
/// tests can prove the checker catches it. Compiled only under
/// `--cfg eco_sched`; the knobs default to off, so even checker builds
/// behave correctly unless a test opts in.
#[cfg(eco_sched)]
pub mod faults {
    use std::sync::atomic::AtomicBool;

    /// Drop the `TMP_SEQ` uniqueness from temp names (the PR 7 collision).
    pub static TMP_NAME_COLLISION: AtomicBool = AtomicBool::new(false);
    /// Publish the index entry before the record file is durable.
    pub static INDEX_BEFORE_WRITE: AtomicBool = AtomicBool::new(false);
}

fn load_index(root: &Path, inner: &mut Inner) {
    let Ok(text) = fs::read_to_string(root.join("index.json")) else {
        return;
    };
    let Ok(doc) = Json::parse(&text) else {
        return; // corrupt index: rebuilt from the records directory
    };
    if doc.get("index_version").and_then(Json::as_u64) != Some(INDEX_VERSION) {
        return;
    }
    inner.clock = doc.get("clock").and_then(Json::as_u64).unwrap_or(0);
    let Some(Json::Obj(entries)) = doc.get("entries") else {
        return;
    };
    for (stem, e) in entries {
        let Some(key) = key_from_stem(stem) else {
            continue;
        };
        let bytes = e.get("bytes").and_then(Json::as_u64).unwrap_or(0);
        let created = e.get("created").and_then(Json::as_u64).unwrap_or(0);
        let last_used = e.get("last_used").and_then(Json::as_u64).unwrap_or(0);
        inner.index.insert(
            key,
            IndexEntry {
                bytes,
                created,
                last_used,
            },
        );
    }
}

/// Drops index entries whose record file vanished and adopts record
/// files the index has never seen (e.g. written by another process or
/// after a lost index).
fn reconcile_index(records: &Path, inner: &mut Inner) -> std::io::Result<()> {
    let mut on_disk = BTreeMap::new();
    for entry in fs::read_dir(records)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        let Some(key) = key_from_stem(stem) else {
            continue;
        };
        on_disk.insert(key, entry.metadata()?.len());
    }
    inner.index.retain(|k, _| on_disk.contains_key(k));
    for (key, bytes) in on_disk {
        inner.index.entry(key).or_insert(IndexEntry {
            bytes,
            created: 0,
            last_used: 0,
        });
    }
    Ok(())
}

fn key_from_stem(stem: &str) -> Option<StoreKey> {
    if stem.len() != 32 {
        return None;
    }
    let program_fp = u64::from_str_radix(&stem[..16], 16).ok()?;
    let point_fp = u64::from_str_radix(&stem[16..], 16).ok()?;
    Some(StoreKey {
        program_fp,
        point_fp,
    })
}

// ---------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------

fn uints(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::UInt(v)).collect())
}

/// Renders [`Counters`] as a deterministic [`Json`] object (stable
/// field order; every field explicit).
pub fn counters_to_json(c: &Counters) -> Json {
    let mut per_tag = Vec::with_capacity(c.per_tag.len());
    for t in &c.per_tag {
        per_tag.push(
            Json::obj()
                .field("accesses", Json::UInt(t.accesses))
                .field("misses", uints(&t.misses))
                .field("tlb_misses", Json::UInt(t.tlb_misses)),
        );
    }
    Json::obj()
        .field("loads", Json::UInt(c.loads))
        .field("stores", Json::UInt(c.stores))
        .field("prefetches", Json::UInt(c.prefetches))
        .field("cache_misses", uints(&c.cache_misses))
        .field("prefetch_fills", uints(&c.prefetch_fills))
        .field("tlb_misses", Json::UInt(c.tlb_misses))
        .field("flops", Json::UInt(c.flops))
        .field("loop_iterations", Json::UInt(c.loop_iterations))
        .field("cycles_x1000", Json::UInt(c.cycles_x1000))
        .field("per_tag", Json::Arr(per_tag))
}

fn uints_from(doc: &Json) -> Option<Vec<u64>> {
    match doc {
        Json::Arr(items) => items.iter().map(Json::as_u64).collect(),
        _ => None,
    }
}

/// Parses [`Counters`] back out of [`counters_to_json`]'s encoding.
/// Returns `None` on any missing or mistyped field.
pub fn counters_from_json(doc: &Json) -> Option<Counters> {
    let mut per_tag = Vec::new();
    let Some(Json::Arr(tags)) = doc.get("per_tag") else {
        return None;
    };
    for t in tags {
        per_tag.push(TagCounters {
            accesses: t.get("accesses").and_then(Json::as_u64)?,
            misses: uints_from(t.get("misses")?)?,
            tlb_misses: t.get("tlb_misses").and_then(Json::as_u64)?,
        });
    }
    Some(Counters {
        loads: doc.get("loads").and_then(Json::as_u64)?,
        stores: doc.get("stores").and_then(Json::as_u64)?,
        prefetches: doc.get("prefetches").and_then(Json::as_u64)?,
        cache_misses: uints_from(doc.get("cache_misses")?)?,
        prefetch_fills: uints_from(doc.get("prefetch_fills")?)?,
        tlb_misses: doc.get("tlb_misses").and_then(Json::as_u64)?,
        flops: doc.get("flops").and_then(Json::as_u64)?,
        loop_iterations: doc.get("loop_iterations").and_then(Json::as_u64)?,
        cycles_x1000: doc.get("cycles_x1000").and_then(Json::as_u64)?,
        per_tag,
    })
}

fn render_record(key: StoreKey, program: &str, counters: &Counters) -> Json {
    Json::obj()
        .field("record_version", Json::UInt(RECORD_VERSION))
        .field("program_fp", Json::fingerprint(key.program_fp))
        .field("point_fp", Json::fingerprint(key.point_fp))
        .field("program", Json::str(program))
        .field("counters", counters_to_json(counters))
}

fn fp_field(doc: &Json, key: &str) -> Option<u64> {
    let text = doc.get(key)?.as_str()?;
    u64::from_str_radix(text.strip_prefix("0x")?, 16).ok()
}

fn parse_record(text: &str, key: StoreKey) -> Option<Counters> {
    let doc = Json::parse(text).ok()?;
    if doc.get("record_version").and_then(Json::as_u64) != Some(RECORD_VERSION) {
        return None;
    }
    if fp_field(&doc, "program_fp") != Some(key.program_fp)
        || fp_field(&doc, "point_fp") != Some(key.point_fp)
    {
        return None;
    }
    counters_from_json(doc.get("counters")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters(seed: u64) -> Counters {
        Counters {
            loads: 100 + seed,
            stores: 40 + seed,
            prefetches: 8,
            cache_misses: vec![17 + seed, 5],
            prefetch_fills: vec![3, 1],
            tlb_misses: 2,
            flops: 200 + seed,
            loop_iterations: 50,
            cycles_x1000: 123_456 + seed,
            per_tag: vec![TagCounters {
                accesses: 70,
                misses: vec![9, 2],
                tlb_misses: 1,
            }],
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eco-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn counters_round_trip_through_json() {
        let c = sample_counters(7);
        let doc = counters_to_json(&c);
        // Byte-determinism: rendering twice is identical, and a parsed
        // re-render matches too.
        assert_eq!(doc.render(), counters_to_json(&c).render());
        let reparsed = Json::parse(&doc.render()).expect("parses");
        assert_eq!(counters_from_json(&reparsed), Some(c));
    }

    #[test]
    fn store_round_trips_records_across_handles() {
        let root = tmp_root("roundtrip");
        let key = StoreKey::new(0xdead_beef, 0x1234_5678_9abc_def0);
        let c = sample_counters(1);
        {
            let store = ResultStore::open(&root).expect("open");
            assert_eq!(store.get(key), None);
            store.put(key, "mm test", &c).expect("put");
            assert_eq!(store.get(key), Some(c.clone()));
            let stats = store.stats();
            assert_eq!((stats.hits, stats.misses, stats.puts), (1, 1, 1));
        }
        // A second handle (as in a second process) sees the record.
        let store = ResultStore::open(&root).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(key), Some(c));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_and_mismatched_records_are_rejected() {
        let root = tmp_root("corrupt");
        let store = ResultStore::open(&root).expect("open");
        let key = StoreKey::new(1, 2);
        let c = sample_counters(0);
        store.put(key, "k", &c).expect("put");

        // Truncated JSON → miss.
        let path = root.join("records").join(format!("{}.json", key.stem()));
        let text = fs::read_to_string(&path).expect("read");
        fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        assert_eq!(store.get(key), None);

        // Wrong record_version → miss.
        let bumped = text.replace("\"record_version\": 1", "\"record_version\": 999");
        assert_ne!(bumped, text);
        fs::write(&path, bumped).expect("rewrite");
        assert_eq!(store.get(key), None);

        // A record echoing a different key (e.g. a misnamed file) → miss.
        let other = StoreKey::new(9, 9);
        store.put(other, "k", &c).expect("put other");
        let other_path = root.join("records").join(format!("{}.json", other.stem()));
        fs::copy(&other_path, &path).expect("cross-copy");
        assert_eq!(store.get(key), None);

        assert_eq!(store.stats().rejected, 3);
        // Intact record still readable.
        assert_eq!(store.get(other), Some(c));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_evicts_coldest_until_under_budget() {
        let root = tmp_root("gc");
        let store = ResultStore::open(&root).expect("open");
        let keys: Vec<StoreKey> = (0..4).map(|i| StoreKey::new(10, i)).collect();
        for &k in &keys {
            store
                .put(k, "k", &sample_counters(k.point_fp))
                .expect("put");
        }
        // Touch keys 2 and 3 so 0 and 1 are coldest.
        assert!(store.get(keys[2]).is_some());
        assert!(store.get(keys[3]).is_some());
        let per_record = store.bytes() / 4;
        let gc = store.gc(per_record * 2).expect("gc");
        assert_eq!(gc.evicted, 2);
        assert!(gc.remaining_bytes <= per_record * 2);
        assert_eq!(store.get(keys[0]), None);
        assert_eq!(store.get(keys[1]), None);
        assert!(store.get(keys[2]).is_some());
        assert!(store.get(keys[3]).is_some());
        // `gc(0)` empties the store.
        let gc = store.gc(0).expect("gc all");
        assert_eq!(gc.evicted, 2);
        assert_eq!(store.len(), 0);
        assert_eq!(store.bytes(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_edge_cases_are_total() {
        // gc on an empty store is a no-op at any budget, including 0.
        let root = tmp_root("gc-edge");
        let store = ResultStore::open(&root).expect("open");
        let gc = store.gc(0).expect("gc empty at 0");
        assert_eq!((gc.evicted, gc.remaining_bytes), (0, 0));
        let gc = store.gc(u64::MAX).expect("gc empty at max");
        assert_eq!((gc.evicted, gc.remaining_bytes), (0, 0));

        // `max_bytes = 0` on a populated store evicts everything and
        // leaves index, counters and disk agreeing.
        for i in 0..3 {
            let k = StoreKey::new(20, i);
            store
                .put(k, "k", &sample_counters(k.point_fp))
                .expect("put");
        }
        let gc = store.gc(0).expect("gc all");
        assert_eq!(gc.evicted, 3);
        assert_eq!(gc.remaining_bytes, 0);
        assert_eq!(store.len(), 0);
        assert_eq!(store.bytes(), 0);

        // gc twice: the second pass finds nothing to evict.
        let gc = store.gc(0).expect("gc again");
        assert_eq!(gc.evicted, 0);
        assert_eq!(gc.remaining_bytes, 0);

        // The emptied store is still fully usable, and a reopen agrees.
        let k = StoreKey::new(21, 0);
        store
            .put(k, "k", &sample_counters(7))
            .expect("put after gc");
        assert!(store.get(k).is_some());
        let reopened = ResultStore::open(&root).expect("reopen");
        assert!(reopened.get(k).is_some());
        assert_eq!(reopened.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn shard_records_round_trip_and_reject_corruption() {
        let root = tmp_root("shards");
        let store = ResultStore::open(&root).expect("open");
        let fp = 0x00c0_ffee_0000_0001u64;
        assert_eq!(store.shard_complete(fp), None);
        assert_eq!(store.shards_complete(), 0);

        let result = Json::obj()
            .field("figure", Json::str("fig5a"))
            .field("points", Json::UInt(14));
        store.mark_shard_complete(fp, &result).expect("mark");
        assert_eq!(store.shard_complete(fp), Some(result.clone()));
        assert_eq!(store.shards_complete(), 1);
        // A second handle (a resumed orchestrator) sees the record.
        let reopened = ResultStore::open(&root).expect("reopen");
        assert_eq!(reopened.shard_complete(fp), Some(result.clone()));

        // Wrong version or wrong fingerprint echo → treated as absent.
        let path = root.join("shards").join(format!("{fp:016x}.json"));
        let text = fs::read_to_string(&path).expect("read");
        fs::write(
            &path,
            text.replace("\"shard_version\": 1", "\"shard_version\": 9"),
        )
        .expect("rewrite");
        assert_eq!(store.shard_complete(fp), None);
        store.mark_shard_complete(fp, &result).expect("re-mark");
        let other = fp + 1;
        fs::copy(
            &path,
            root.join("shards").join(format!("{other:016x}.json")),
        )
        .expect("cross-copy");
        assert_eq!(store.shard_complete(other), None, "wrong fp echo");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_never_touches_shard_completion_records() {
        let root = tmp_root("shard-gc");
        let store = ResultStore::open(&root).expect("open");
        for i in 0..4 {
            store
                .put(StoreKey::new(20, i), "k", &sample_counters(i))
                .expect("put");
        }
        let fp = 0xfeed_0000_0000_0002u64;
        store
            .mark_shard_complete(fp, &Json::obj().field("ok", Json::Bool(true)))
            .expect("mark");
        let gc = store.gc(0).expect("gc all");
        assert_eq!(gc.evicted, 4);
        assert_eq!(store.len(), 0);
        assert!(
            store.shard_complete(fp).is_some(),
            "a zero-byte budget must not erase completion evidence"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn lost_index_is_rebuilt_from_records() {
        let root = tmp_root("rebuild");
        let key = StoreKey::new(3, 4);
        let c = sample_counters(5);
        {
            let store = ResultStore::open(&root).expect("open");
            store.put(key, "k", &c).expect("put");
        }
        fs::write(root.join("index.json"), "not json at all").expect("corrupt index");
        let store = ResultStore::open(&root).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(key), Some(c));
        let _ = fs::remove_dir_all(&root);
    }
}
