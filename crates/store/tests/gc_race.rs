//! Concurrency tests for `gc(max_bytes)` racing writers and readers on
//! one store handle — the access pattern `eco serve` produces when a
//! maintenance gc runs while tune requests are in flight.
//!
//! The contract under race: no read of a collected record panics or
//! returns wrong counters (a concurrent `get` sees the record or a
//! clean miss, never a torn result), writers never lose a put that
//! happened after the sweep, and the LRU index stays consistent with
//! the records directory (reopening the store agrees with disk).

use eco_cachesim::{Counters, TagCounters};
use eco_events::Json;
use eco_store::{ResultStore, StoreKey};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-store-race-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn counters(seed: u64) -> Counters {
    Counters {
        loads: 1000 + seed,
        stores: 400 + seed,
        prefetches: 8,
        cache_misses: vec![17 + seed, 5],
        prefetch_fills: vec![3, 1],
        tlb_misses: 2,
        flops: 2000 + seed,
        loop_iterations: 50,
        cycles_x1000: 9_000_000 + seed,
        per_tag: vec![TagCounters {
            accesses: 70,
            misses: vec![9, 2],
            tlb_misses: 1,
        }],
    }
}

#[test]
fn gc_races_concurrent_writers_and_readers_without_corruption() {
    let root = scratch("readers");
    let store = ResultStore::open(&root).expect("open");

    // Seed a population for gc to chew on.
    let seeded = 32u64;
    for i in 0..seeded {
        store
            .put(StoreKey::new(1, i), "seed", &counters(i))
            .expect("seed put");
    }
    let budget = store.bytes() / 4; // force real eviction on every sweep

    // Bounded by writer work, not by gc progress: a tight budget racing
    // unbounded writers can evict forever without converging, so the
    // writers run a fixed number of puts and everyone else spins until
    // they are done.
    let writers_left = AtomicUsize::new(2);
    std::thread::scope(|scope| {
        // Writers: insert fresh keys (and re-put seeded ones, which
        // must be idempotent) while gc runs.
        for w in 0..2u64 {
            let store = &store;
            let writers_left = &writers_left;
            scope.spawn(move || {
                for i in 0..48u64 {
                    let key = StoreKey::new(2 + w, i % 64);
                    store.put(key, "writer", &counters(i)).expect("racing put");
                }
                writers_left.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // Readers: every get is either a clean miss or the exact
        // counters that key was ever written with.
        for _ in 0..2 {
            let store = &store;
            let writers_left = &writers_left;
            scope.spawn(move || {
                let mut i = 0u64;
                loop {
                    let seed = i % seeded;
                    if let Some(c) = store.get(StoreKey::new(1, seed)) {
                        assert_eq!(c, counters(seed), "torn or wrong record surfaced");
                    }
                    if writers_left.load(Ordering::SeqCst) == 0 && i.is_multiple_of(seeded) {
                        break;
                    }
                    i += 1;
                }
            });
        }
        // The gc thread: repeated sweeps under a tight budget until the
        // writers are done (and at least one sweep).
        let store = &store;
        let writers_left = &writers_left;
        scope.spawn(move || loop {
            let gc = store.gc(budget).expect("racing gc");
            assert!(gc.remaining_bytes <= budget || gc.evicted == 0);
            if writers_left.load(Ordering::SeqCst) == 0 {
                break;
            }
        });
    });

    // A put after the last sweep is durable.
    let last = StoreKey::new(99, 99);
    store.put(last, "late", &counters(7)).expect("late put");
    assert_eq!(store.get(last), Some(counters(7)));

    // Index consistency: a reopened handle (index reconciled against
    // the records directory) agrees with this handle about what exists,
    // and every surviving record is readable.
    store.flush().expect("flush");
    let reopened = ResultStore::open(&root).expect("reopen");
    assert_eq!(reopened.len(), store.len(), "index out of sync with disk");
    let mut readable = 0usize;
    for pfp in [1u64, 2, 3, 99] {
        for i in 0..100u64 {
            if reopened.get(StoreKey::new(pfp, i)).is_some() {
                readable += 1;
            }
        }
    }
    assert_eq!(
        readable,
        reopened.len(),
        "every indexed record must parse cleanly"
    );
    assert_eq!(reopened.stats().rejected, 0, "no torn records on disk");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn gc_races_shard_completion_marks() {
    // Shard records must survive any number of concurrent sweeps.
    let root = scratch("shards");
    let store = ResultStore::open(&root).expect("open");
    for i in 0..16u64 {
        store
            .put(StoreKey::new(5, i), "k", &counters(i))
            .expect("put");
    }
    std::thread::scope(|scope| {
        let store = &store;
        scope.spawn(move || {
            for fp in 0..32u64 {
                store
                    .mark_shard_complete(fp, &Json::obj().field("n", Json::UInt(fp)))
                    .expect("mark");
            }
        });
        scope.spawn(move || {
            for _ in 0..8 {
                store.gc(0).expect("gc");
            }
        });
    });
    assert_eq!(store.len(), 0, "point records all collected");
    for fp in 0..32u64 {
        assert_eq!(
            store.shard_complete(fp),
            Some(Json::obj().field("n", Json::UInt(fp))),
            "shard {fp} record lost"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
