//! Checker models that drive the *real* `ResultStore` under the controlled
//! scheduler (`--cfg eco_sched`), including the seeded-bug regressions: the
//! historical `TMP_SEQ` temp-name collision and an inverted index-update
//! ordering are re-introduced through `eco_store::faults` hooks, and the
//! explorer must catch each with its own ECO-S code while the clean
//! protocol passes. Mirrors the corruption-injection idiom of
//! `tests/certify.rs`: break one invariant on purpose, assert the exact
//! diagnostic.
#![cfg(eco_sched)]

use eco_cachesim::{Counters, TagCounters};
use eco_sched::model::{self, check};
use eco_sched::{explore, Config, DiagCode};
use eco_store::{faults, ResultStore, StoreKey};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eco-store-sched-{tag}-{}-{}",
        std::process::id(),
        RUN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counters(seed: u64) -> Counters {
    Counters {
        loads: 1000 + seed,
        stores: 400 + seed,
        prefetches: 8,
        cache_misses: vec![17 + seed, 5],
        prefetch_fills: vec![3, 1],
        tlb_misses: 2,
        flops: 2000 + seed,
        loop_iterations: 50,
        cycles_x1000: 9_000_000 + seed,
        per_tag: vec![TagCounters {
            accesses: 70,
            misses: vec![9, 2],
            tlb_misses: 1,
        }],
    }
}

fn key(point: u64) -> StoreKey {
    StoreKey {
        program_fp: 0xec0,
        point_fp: point,
    }
}

/// Small exploration budget: each schedule does real file I/O.
fn cfg() -> Config {
    Config {
        max_schedules: 400,
        ..Config::default()
    }
}

/// Two writers racing the same key plus a concurrent reader, on the real
/// store: every schedule must keep both puts succeeding, the final read a
/// hit, and no record ever torn (`rejected` stays 0).
fn write_race_body() {
    let dir = scratch("model");
    let store = Arc::new(ResultStore::open(&dir).expect("open store"));
    let (s1, s2, s3) = (store.clone(), store.clone(), store.clone());
    let w1 = model::thread::spawn("writer-a", move || {
        s1.put(key(1), "prog", &counters(1)).is_ok()
    });
    let w2 = model::thread::spawn("writer-b", move || {
        s2.put(key(1), "prog", &counters(1)).is_ok()
    });
    let reader = model::thread::spawn("reader", move || {
        // An index hit must always be backed by a durable record: a miss
        // with a non-empty index is the inverted-publish smoking gun.
        let populated = !s3.is_empty();
        let hit = s3.get(key(1)).is_some();
        check(DiagCode::StoreIndexOrder, !populated || hit, || {
            "index hit for a record whose bytes are not durable yet".to_string()
        });
    });
    let ok1 = w1.join();
    let ok2 = w2.join();
    reader.join();
    check(DiagCode::StoreTempCollision, ok1 && ok2, || {
        "a put failed: colliding temp names stole each other's rename".to_string()
    });
    check(
        DiagCode::StoreTempCollision,
        store.get(key(1)).is_some() && store.stats().rejected == 0,
        || "final read missed or saw a torn record".to_string(),
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_store_protocol_passes() {
    faults::TMP_NAME_COLLISION.store(false, Ordering::SeqCst);
    faults::INDEX_BEFORE_WRITE.store(false, Ordering::SeqCst);
    let report = explore(cfg(), write_race_body);
    assert!(
        report.is_clean(),
        "clean store protocol reported: {:?}",
        report.diags
    );
    assert!(
        report.schedules >= 100,
        "only {} schedules",
        report.schedules
    );
}

#[test]
fn tmp_seq_collision_is_caught_as_s005() {
    faults::INDEX_BEFORE_WRITE.store(false, Ordering::SeqCst);
    faults::TMP_NAME_COLLISION.store(true, Ordering::SeqCst);
    let report = explore(cfg(), write_race_body);
    faults::TMP_NAME_COLLISION.store(false, Ordering::SeqCst);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.code == DiagCode::StoreTempCollision),
        "expected ECO-S005 from the reintroduced TMP_SEQ collision, got {:?}",
        report.diags
    );
    let diag = report
        .diags
        .iter()
        .find(|d| d.code == DiagCode::StoreTempCollision)
        .unwrap();
    assert!(!diag.schedule.is_empty(), "failing schedule not attached");
}

#[test]
fn index_before_write_is_caught_as_s006() {
    faults::TMP_NAME_COLLISION.store(false, Ordering::SeqCst);
    faults::INDEX_BEFORE_WRITE.store(true, Ordering::SeqCst);
    // One writer, one reader: the violating window (index published, bytes
    // not yet written, reader reads) sits early in the schedule, so keep
    // the space small enough for DFS to back up into it.
    let report = explore(cfg(), || {
        let dir = scratch("inverted");
        let store = Arc::new(ResultStore::open(&dir).expect("open store"));
        let (s1, s2) = (store.clone(), store.clone());
        let writer = model::thread::spawn("writer", move || {
            let _ = s1.put(key(2), "prog", &counters(2));
        });
        let reader = model::thread::spawn("reader", move || {
            let populated = !s2.is_empty();
            let hit = s2.get(key(2)).is_some();
            check(DiagCode::StoreIndexOrder, !populated || hit, || {
                "index hit for a record whose bytes are not durable yet".to_string()
            });
        });
        writer.join();
        reader.join();
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
    faults::INDEX_BEFORE_WRITE.store(false, Ordering::SeqCst);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.code == DiagCode::StoreIndexOrder),
        "expected ECO-S006 from the inverted index publish, got {:?}",
        report.diags
    );
}

/// `gc` racing a writer on the real store, under the scheduler: eviction
/// must never leave an index entry without bytes or fail a concurrent put.
#[test]
fn gc_race_stays_consistent_under_exploration() {
    faults::TMP_NAME_COLLISION.store(false, Ordering::SeqCst);
    faults::INDEX_BEFORE_WRITE.store(false, Ordering::SeqCst);
    let report = explore(cfg(), || {
        let dir = scratch("gc");
        let store = Arc::new(ResultStore::open(&dir).expect("open store"));
        store.put(key(10), "prog", &counters(10)).expect("seed put");
        store.put(key(11), "prog", &counters(11)).expect("seed put");
        let (s1, s2) = (store.clone(), store.clone());
        let writer = model::thread::spawn("writer", move || {
            s1.put(key(12), "prog", &counters(12)).is_ok()
        });
        let collector = model::thread::spawn("gc", move || s2.gc(0).is_ok());
        let wrote = writer.join();
        let collected = collector.join();
        check(DiagCode::StoreIndexOrder, wrote && collected, || {
            "gc and put interfered: one of them failed".to_string()
        });
        // Reopening must agree with disk (index never points at nothing).
        drop(store);
        let reopened = ResultStore::open(&dir).expect("reopen store");
        for k in [key(10), key(11), key(12)] {
            let _ = reopened.get(k);
        }
        check(
            DiagCode::StoreIndexOrder,
            reopened.stats().rejected == 0,
            || "reopened store rejected a record (torn bytes on disk)".to_string(),
        );
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    });
    assert!(report.is_clean(), "gc race reported: {:?}", report.diags);
}
