//! The dense-matrix kernels studied by the paper, built as IR programs.
//!
//! * [`Kernel::matmul`] — Matrix Multiply, Figure 1(a): the KJI loop
//!   order over `C[I,J] += A[I,K] * B[K,J]`.
//! * [`Kernel::jacobi3d`] — 3-D Jacobi relaxation, Figure 2(a):
//!   a 6-point stencil from `B` into `A`.
//!
//! Two extension kernels exercise the optimizer beyond the paper's case
//! studies:
//!
//! * [`Kernel::matvec`] — dense matrix-vector multiply (`y += A*x`);
//! * [`Kernel::stencil5`] — 2-D 4-point Jacobi stencil;
//! * [`Kernel::syrk`] — symmetric rank-k update (`C += A*Aᵀ`);
//! * [`Kernel::matmul_transposed`] — `C += Aᵀ*B`.
//!
//! All kernels use 0-based loops, column-major arrays, and a single
//! problem-size parameter `N`.
//!
//! # Examples
//!
//! ```
//! let k = eco_kernels::Kernel::matmul();
//! assert_eq!(k.name, "mm");
//! assert_eq!(k.flops(100), 2 * 100 * 100 * 100);
//! assert!(k.program.to_string().contains("C[I,J] = C[I,J] + A[I,K]*B[K,J]"));
//! ```

use eco_ir::{AffineExpr, ArrayId, ArrayRef, Bound, Loop, Program, ScalarExpr, Stmt, VarId};

/// How many flops one run of a kernel performs, as a function of `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FlopFormula {
    /// `2 N^3` (matrix multiply).
    TwoNCubed,
    /// `6 (N-2)^3` (3-D Jacobi: 5 adds + 1 multiply per point).
    SixNMinus2Cubed,
    /// `2 N^2` (matrix-vector).
    TwoNSquared,
    /// `4 (N-2)^2` (2-D stencil: 3 adds + 1 multiply per point).
    FourNMinus2Squared,
}

impl FlopFormula {
    /// All formulas (for exhaustive tests).
    pub const ALL: [FlopFormula; 4] = [
        FlopFormula::TwoNCubed,
        FlopFormula::SixNMinus2Cubed,
        FlopFormula::TwoNSquared,
        FlopFormula::FourNMinus2Squared,
    ];
}

impl FlopFormula {
    /// Evaluates the formula at problem size `n`.
    pub fn eval(self, n: u64) -> u64 {
        match self {
            FlopFormula::TwoNCubed => 2 * n * n * n,
            FlopFormula::SixNMinus2Cubed => 6 * (n - 2) * (n - 2) * (n - 2),
            FlopFormula::TwoNSquared => 2 * n * n,
            FlopFormula::FourNMinus2Squared => 4 * (n - 2) * (n - 2),
        }
    }
}

/// A computational kernel: an IR program plus the metadata the
/// optimizer and benchmarks need.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short name (`"mm"`, `"jacobi"`, ...).
    pub name: String,
    /// The untransformed reference program (a perfect loop nest).
    pub program: Program,
    /// The problem-size parameter.
    pub size: VarId,
    /// The arrays whose final contents define the kernel's result.
    pub outputs: Vec<ArrayId>,
    /// Flop count formula.
    pub flop_formula: FlopFormula,
}

impl Kernel {
    /// Flops for one run at problem size `n`.
    pub fn flops(&self, n: u64) -> u64 {
        self.flop_formula.eval(n)
    }

    /// Matrix Multiply in the KJI order of the paper's Figure 1(a).
    pub fn matmul() -> Kernel {
        let mut p = Program::new("mm");
        let n = p.add_param("N");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let nn = vec![AffineExpr::var(n), AffineExpr::var(n)];
        let a = p.add_array("A", nn.clone());
        let b = p.add_array("B", nn.clone());
        let c = p.add_array("C", nn);
        let c_ref = ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let store = Stmt::Store {
            target: c_ref.clone(),
            value: ScalarExpr::add(
                ScalarExpr::Load(c_ref),
                ScalarExpr::mul(
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(i), AffineExpr::var(k)],
                    )),
                    ScalarExpr::Load(ArrayRef::new(
                        b,
                        vec![AffineExpr::var(k), AffineExpr::var(j)],
                    )),
                ),
            ),
        };
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(1)).into();
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 0.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        p.body.push(mk(k, vec![mk(j, vec![mk(i, vec![store])])]));
        Kernel {
            name: "mm".into(),
            program: p,
            size: n,
            outputs: vec![c],
            flop_formula: FlopFormula::TwoNCubed,
        }
    }

    /// 3-D Jacobi relaxation, the paper's Figure 2(a):
    /// `A[I,J,K] = c*(B[I-1,J,K]+B[I+1,J,K]+B[I,J-1,K]+B[I,J+1,K]+B[I,J,K-1]+B[I,J,K+1])`.
    pub fn jacobi3d() -> Kernel {
        let mut p = Program::new("jacobi");
        let n = p.add_param("N");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let dims = vec![AffineExpr::var(n), AffineExpr::var(n), AffineExpr::var(n)];
        let a = p.add_array("A", dims.clone());
        let b = p.add_array("B", dims);
        let idx = |di: i64, dj: i64, dk: i64| {
            ArrayRef::new(
                b,
                vec![
                    AffineExpr::var(i) + AffineExpr::constant(di),
                    AffineExpr::var(j) + AffineExpr::constant(dj),
                    AffineExpr::var(k) + AffineExpr::constant(dk),
                ],
            )
        };
        let sum = [
            idx(-1, 0, 0),
            idx(1, 0, 0),
            idx(0, -1, 0),
            idx(0, 1, 0),
            idx(0, 0, -1),
            idx(0, 0, 1),
        ]
        .into_iter()
        .map(ScalarExpr::Load)
        .reduce(ScalarExpr::add)
        .expect("six refs");
        let store = Stmt::Store {
            target: ArrayRef::new(
                a,
                vec![AffineExpr::var(i), AffineExpr::var(j), AffineExpr::var(k)],
            ),
            value: ScalarExpr::mul(ScalarExpr::Const(1.0 / 6.0), sum),
        };
        // DO K = 1, N-2 (0-based analogue of the paper's 2..N-1)
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(2)).into();
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 1.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        p.body.push(mk(k, vec![mk(j, vec![mk(i, vec![store])])]));
        Kernel {
            name: "jacobi".into(),
            program: p,
            size: n,
            outputs: vec![a],
            flop_formula: FlopFormula::SixNMinus2Cubed,
        }
    }

    /// Dense matrix-vector multiply `Y[I] += A[I,J] * X[J]` (extension
    /// kernel; exercises register reuse of `Y` and cache reuse of `X`).
    pub fn matvec() -> Kernel {
        let mut p = Program::new("mv");
        let n = p.add_param("N");
        let (j, i) = (p.add_loop_var("J"), p.add_loop_var("I"));
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let x = p.add_array("X", vec![AffineExpr::var(n)]);
        let y = p.add_array("Y", vec![AffineExpr::var(n)]);
        let y_ref = ArrayRef::new(y, vec![AffineExpr::var(i)]);
        let store = Stmt::Store {
            target: y_ref.clone(),
            value: ScalarExpr::add(
                ScalarExpr::Load(y_ref),
                ScalarExpr::mul(
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(i), AffineExpr::var(j)],
                    )),
                    ScalarExpr::Load(ArrayRef::new(x, vec![AffineExpr::var(j)])),
                ),
            ),
        };
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(1)).into();
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 0.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        p.body.push(mk(j, vec![mk(i, vec![store])]));
        Kernel {
            name: "mv".into(),
            program: p,
            size: n,
            outputs: vec![y],
            flop_formula: FlopFormula::TwoNSquared,
        }
    }

    /// 2-D 4-point Jacobi stencil
    /// `A[I,J] = 0.25*(B[I-1,J]+B[I+1,J]+B[I,J-1]+B[I,J+1])`
    /// (extension kernel).
    pub fn stencil5() -> Kernel {
        let mut p = Program::new("stencil5");
        let n = p.add_param("N");
        let (j, i) = (p.add_loop_var("J"), p.add_loop_var("I"));
        let dims = vec![AffineExpr::var(n), AffineExpr::var(n)];
        let a = p.add_array("A", dims.clone());
        let b = p.add_array("B", dims);
        let idx = |di: i64, dj: i64| {
            ArrayRef::new(
                b,
                vec![
                    AffineExpr::var(i) + AffineExpr::constant(di),
                    AffineExpr::var(j) + AffineExpr::constant(dj),
                ],
            )
        };
        let sum = [idx(-1, 0), idx(1, 0), idx(0, -1), idx(0, 1)]
            .into_iter()
            .map(ScalarExpr::Load)
            .reduce(ScalarExpr::add)
            .expect("four refs");
        let store = Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i), AffineExpr::var(j)]),
            value: ScalarExpr::mul(ScalarExpr::Const(0.25), sum),
        };
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(2)).into();
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 1.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        p.body.push(mk(j, vec![mk(i, vec![store])]));
        Kernel {
            name: "stencil5".into(),
            program: p,
            size: n,
            outputs: vec![a],
            flop_formula: FlopFormula::FourNMinus2Squared,
        }
    }

    /// Symmetric rank-k update on the full square,
    /// `C[I,J] += A[I,K] * A[J,K]` (extension kernel; one array read
    /// through two different access functions).
    pub fn syrk() -> Kernel {
        let mut p = Program::new("syrk");
        let n = p.add_param("N");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let nn = vec![AffineExpr::var(n), AffineExpr::var(n)];
        let a = p.add_array("A", nn.clone());
        let c = p.add_array("C", nn);
        let c_ref = ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let store = Stmt::Store {
            target: c_ref.clone(),
            value: ScalarExpr::add(
                ScalarExpr::Load(c_ref),
                ScalarExpr::mul(
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(i), AffineExpr::var(k)],
                    )),
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(j), AffineExpr::var(k)],
                    )),
                ),
            ),
        };
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(1)).into();
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 0.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        p.body.push(mk(k, vec![mk(j, vec![mk(i, vec![store])])]));
        Kernel {
            name: "syrk".into(),
            program: p,
            size: n,
            outputs: vec![c],
            flop_formula: FlopFormula::TwoNCubed,
        }
    }

    /// Transposed matrix multiply `C[I,J] += A[K,I] * B[K,J]`
    /// (extension kernel; both operands walked along the contiguous
    /// dimension by the reduction loop).
    pub fn matmul_transposed() -> Kernel {
        let mut p = Program::new("tmm");
        let n = p.add_param("N");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let nn = vec![AffineExpr::var(n), AffineExpr::var(n)];
        let a = p.add_array("A", nn.clone());
        let b = p.add_array("B", nn.clone());
        let c = p.add_array("C", nn);
        let c_ref = ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let store = Stmt::Store {
            target: c_ref.clone(),
            value: ScalarExpr::add(
                ScalarExpr::Load(c_ref),
                ScalarExpr::mul(
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(k), AffineExpr::var(i)],
                    )),
                    ScalarExpr::Load(ArrayRef::new(
                        b,
                        vec![AffineExpr::var(k), AffineExpr::var(j)],
                    )),
                ),
            ),
        };
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(1)).into();
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 0.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        p.body.push(mk(k, vec![mk(j, vec![mk(i, vec![store])])]));
        Kernel {
            name: "tmm".into(),
            program: p,
            size: n,
            outputs: vec![c],
            flop_formula: FlopFormula::TwoNCubed,
        }
    }

    /// All built-in kernels.
    pub fn all() -> Vec<Kernel> {
        vec![
            Kernel::matmul(),
            Kernel::jacobi3d(),
            Kernel::matvec(),
            Kernel::stencil5(),
            Kernel::syrk(),
            Kernel::matmul_transposed(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate_and_are_perfect_nests() {
        for k in Kernel::all() {
            k.program
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let (loops, body) = k
                .program
                .perfect_nest()
                .unwrap_or_else(|| panic!("{} not a perfect nest", k.name));
            assert!(!loops.is_empty());
            assert_eq!(body.len(), 1, "{}", k.name);
        }
    }

    #[test]
    fn matmul_prints_like_figure_1a() {
        let s = Kernel::matmul().program.to_string();
        assert!(s.contains("DO K = 0, N - 1"), "{s}");
        assert!(s.contains("DO J = 0, N - 1"), "{s}");
        assert!(s.contains("DO I = 0, N - 1"), "{s}");
        assert!(s.contains("C[I,J] = C[I,J] + A[I,K]*B[K,J]"), "{s}");
    }

    #[test]
    fn jacobi_prints_like_figure_2a() {
        let s = Kernel::jacobi3d().program.to_string();
        assert!(s.contains("DO K = 1, N - 2"), "{s}");
        assert!(s.contains("B[I - 1,J,K]"), "{s}");
        assert!(s.contains("B[I,J,K + 1]"), "{s}");
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(Kernel::matmul().flops(10), 2000);
        assert_eq!(Kernel::jacobi3d().flops(10), 6 * 512);
        assert_eq!(Kernel::matvec().flops(10), 200);
        assert_eq!(Kernel::stencil5().flops(10), 4 * 64);
    }

    #[test]
    fn kernels_have_distinct_names() {
        let names: Vec<_> = Kernel::all().into_iter().map(|k| k.name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn outputs_are_declared_arrays() {
        for k in Kernel::all() {
            for &o in &k.outputs {
                assert!(o.index() < k.program.arrays.len(), "{}", k.name);
            }
        }
    }

    #[test]
    fn syrk_reads_one_array_two_ways() {
        let k = Kernel::syrk();
        let s = k.program.to_string();
        assert!(s.contains("A[I,K]*A[J,K]"), "{s}");
        assert_eq!(k.flops(10), 2000);
    }

    #[test]
    fn tmm_walks_both_operands_by_k() {
        let k = Kernel::matmul_transposed();
        let s = k.program.to_string();
        assert!(s.contains("A[K,I]*B[K,J]"), "{s}");
    }

    #[test]
    fn flop_formula_all_is_exhaustive_and_positive() {
        for f in FlopFormula::ALL {
            assert!(f.eval(10) > 0);
        }
    }
}
