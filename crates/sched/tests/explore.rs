//! The checker must catch seeded concurrency bugs: each test plants one
//! classic defect and asserts the explorer finds it with the right ECO-S
//! code, while the clean variants stay clean.

use eco_sched::model::{self, check, Condvar, Mutex};
use eco_sched::{explore, Config, DiagCode};
use std::sync::Arc;

fn cfg(seed: u64) -> Config {
    Config {
        seed,
        ..Config::default()
    }
}

#[test]
fn lock_order_inversion_is_reported_as_s001() {
    let report = explore(cfg(0), || {
        let a = Arc::new(Mutex::labeled("lock.a", ()));
        let b = Arc::new(Mutex::labeled("lock.b", ()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = model::thread::spawn("inverted", move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        t.join();
    });
    let codes: Vec<DiagCode> = report.diags.iter().map(|d| d.code).collect();
    assert!(
        codes.contains(&DiagCode::LockOrderCycle),
        "expected ECO-S001 in {codes:?}"
    );
    // The inverted order is also an actual deadlock in some schedule.
    assert!(
        codes.contains(&DiagCode::Deadlock),
        "expected ECO-S004 in {codes:?}"
    );
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    // notify-before-wait with no predicate re-check: a schedule where the
    // notifier runs first strands the waiter forever.
    let report = explore(cfg(0), || {
        let cell = Arc::new((Mutex::labeled("cell.m", false), Condvar::labeled("cell.cv")));
        let c2 = cell.clone();
        let waiter = model::thread::spawn("waiter", move || {
            let g = c2.0.lock().unwrap();
            if !*g {
                // BUG: waits without re-checking the flag in a loop, and
                // the notifier does not hold the lock while setting it.
                let _g = c2.1.wait(g).unwrap();
            }
        });
        cell.1.notify_one();
        *cell.0.lock().unwrap() = true;
        waiter.join();
    });
    assert!(
        report.diags.iter().any(|d| d.code == DiagCode::Deadlock),
        "expected ECO-S004, got {:?}",
        report.diags
    );
    // The failing schedule is attached for replay.
    let diag = report
        .diags
        .iter()
        .find(|d| d.code == DiagCode::Deadlock)
        .unwrap();
    assert!(!diag.schedule.is_empty());
    assert!(diag.render().contains("ECO-S004"));
}

#[test]
fn lock_held_across_wait_is_reported_as_s002() {
    let report = explore(cfg(0), || {
        let outer = Arc::new(Mutex::labeled("outer", ()));
        let cell = Arc::new((
            Mutex::labeled("inner.m", false),
            Condvar::labeled("inner.cv"),
        ));
        let (o2, c2) = (outer.clone(), cell.clone());
        let t = model::thread::spawn("holder", move || {
            let _outer = o2.lock().unwrap();
            let g = c2.0.lock().unwrap();
            if !*g {
                let _g = c2.1.wait(g).unwrap();
            }
        });
        {
            let mut flag = cell.0.lock().unwrap();
            *flag = true;
        }
        cell.1.notify_one();
        t.join();
    });
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.code == DiagCode::LockHeldAcrossWait),
        "expected ECO-S002, got {:?}",
        report.diags
    );
}

#[test]
fn unjoined_thread_is_reported_as_s003() {
    let report = explore(cfg(0), || {
        let m = Arc::new(Mutex::labeled("m", 0u32));
        let m2 = m.clone();
        let _detached = model::thread::spawn("detached", move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        // BUG: never joined.
    });
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.code == DiagCode::ThreadNotJoined && d.message.contains("detached")),
        "expected ECO-S003, got {:?}",
        report.diags
    );
}

#[test]
fn racy_check_then_act_is_caught_with_the_models_code() {
    // A non-atomic read-modify-write through two lock sessions: the checker
    // must find the schedule where both threads read the same value.
    let report = explore(cfg(0), || {
        let m = Arc::new(Mutex::labeled("counter", 0u64));
        let threads: Vec<_> = (0..2)
            .map(|i| {
                let m = m.clone();
                model::thread::spawn(if i == 0 { "inc-a" } else { "inc-b" }, move || {
                    let v = *m.lock().unwrap();
                    *m.lock().unwrap() = v + 1;
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        let v = *m.lock().unwrap();
        check(DiagCode::RingOverflow, v == 2, || {
            format!("lost update: counter is {v}, expected 2")
        });
    });
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.code == DiagCode::RingOverflow && d.message.contains("lost update")),
        "expected the lost-update schedule, got {:?}",
        report.diags
    );
}

#[test]
fn same_seed_same_schedule_sequence() {
    let run = |seed: u64| {
        explore(cfg(seed), || {
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let m = m.clone();
                    model::thread::spawn(&format!("t{i}"), move || {
                        *m.lock().unwrap() += i;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        })
    };
    let (a1, a2, b) = (run(7), run(7), run(8));
    assert!(a1.is_clean());
    assert_eq!(
        a1.schedules, a2.schedules,
        "same seed must replay identically"
    );
    assert_eq!(a1.edges, a2.edges);
    // A different seed still explores the same space exhaustively here.
    assert_eq!(a1.schedules, b.schedules);
}

#[test]
fn shim_falls_back_to_std_outside_a_run() {
    // No explore() active: the instrumented types behave like std::sync.
    let m = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let m = m.clone();
            model::thread::spawn("plain", move || {
                for _ in 0..100 {
                    *m.lock().unwrap() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(*m.lock().unwrap(), 400);
}
