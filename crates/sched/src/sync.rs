//! The `sync` shim the service layer imports instead of `std::sync`.
//!
//! In normal builds every name here is a re-export of `std::sync` — zero
//! cost, zero behavior change. Under `--cfg eco_sched` the same names
//! resolve to the instrumented primitives in [`crate::model`], so every
//! acquire/release/load/store in the ported crates becomes a scheduling
//! point when a model run is active (and transparently falls back to `std`
//! when one is not).

#[cfg(not(eco_sched))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(eco_sched))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// A mutex carrying a stable label for lock-order analysis. In normal
/// builds the label is dropped and this is exactly `Mutex::new`.
#[cfg(not(eco_sched))]
#[inline]
pub fn labeled_mutex<T>(_label: &'static str, value: T) -> Mutex<T> {
    Mutex::new(value)
}

/// A condvar carrying a stable label for diagnostics. In normal builds
/// the label is dropped and this is exactly `Condvar::new`.
#[cfg(not(eco_sched))]
#[inline]
pub fn labeled_condvar(_label: &'static str) -> Condvar {
    Condvar::new()
}

#[cfg(eco_sched)]
pub fn labeled_mutex<T>(label: &'static str, value: T) -> Mutex<T> {
    Mutex::labeled(label, value)
}

#[cfg(eco_sched)]
pub fn labeled_condvar(label: &'static str) -> Condvar {
    Condvar::labeled(label)
}

#[cfg(eco_sched)]
pub use crate::sync_model::{Condvar, Mutex, MutexGuard};

#[cfg(eco_sched)]
pub use std::sync::Arc;

#[cfg(eco_sched)]
pub mod atomic {
    pub use crate::sync_model::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}
