//! # eco-sched — deterministic interleaving checker for the service layer
//!
//! PRs 6–9 made the reproducer concurrent: a thread-pool engine with
//! in-flight dedupe, a multi-threaded `eco serve` daemon, a shared disk
//! store with concurrent LRU GC, and lock-free metrics. Stress tests sample
//! schedules; this crate *enumerates* them. It is a zero-dependency,
//! loom-style model checker:
//!
//! * [`sync`] — the shim the service layer imports instead of `std::sync`.
//!   A plain re-export in normal builds; under `--cfg eco_sched` it routes
//!   every operation through the controlled scheduler.
//! * [`model`] — the instrumented primitives by their own names, available
//!   in every build, so checker models (and `eco lint --sched`) work
//!   without a special cfg.
//! * [`explore`] — DFS over bounded-preemption interleavings with a
//!   DPOR-lite reduction (commuting adjacent steps are skipped) and
//!   seeded-schedule replay via `ECO_SCHED_SEED`.
//! * [`DiagCode`] — stable `ECO-S001..` diagnostics: lock-order cycles,
//!   locks held across `Condvar::wait`, non-joined threads, deadlocks, and
//!   protocol-specific invariant violations.
//! * [`models`] — built-in ports of the three hottest shared-state
//!   protocols (store atomic-write + LRU GC, serve in-flight dedupe,
//!   engine memo/ring), run by `eco lint --sched`.
//!
//! ```
//! use eco_sched::model::{self, Mutex};
//! use std::sync::Arc;
//!
//! let report = eco_sched::explore(eco_sched::Config::default(), || {
//!     let counter = Arc::new(Mutex::labeled("demo.counter", 0u32));
//!     let c2 = counter.clone();
//!     let t = model::thread::spawn("adder", move || {
//!         *c2.lock().unwrap() += 1;
//!     });
//!     *counter.lock().unwrap() += 1;
//!     t.join();
//!     assert_eq!(*counter.lock().unwrap(), 2);
//! });
//! assert!(report.is_clean());
//! assert!(report.schedules >= 2);
//! ```

mod diag;
mod runtime;
mod sync_model;

pub mod models;
pub mod sync;

pub use diag::{DiagCode, SchedDiag};
pub use runtime::{explore, Config, Report};

/// Instrumented primitives under their own names, usable in any build.
pub mod model {
    pub use crate::runtime::active;
    pub use crate::sync_model::{atomic, check, thread, yield_point, Condvar, Mutex, MutexGuard};
}
