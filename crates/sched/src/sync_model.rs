//! Instrumented synchronization primitives, usable from model code in any
//! build. Inside an active [`crate::explore`] run every operation is a
//! scheduling point routed through the controlled scheduler; outside a run
//! they transparently delegate to `std::sync`, so code ported onto the shim
//! behaves identically when no checker is driving it.

use crate::diag::DiagCode;
use crate::runtime::{current, ObjCell, Runtime};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{LockResult, PoisonError};

/// A mutex whose acquire/release are scheduling points under exploration.
/// API mirrors the `std::sync::Mutex` subset the service layer uses.
pub struct Mutex<T: ?Sized> {
    obj: ObjCell,
    label: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases at drop like `std`'s.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    model: Option<(Arc<Runtime>, usize)>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            obj: ObjCell::new(),
            label: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// A mutex with a stable display name for lock-order reports.
    pub fn labeled(label: &'static str, value: T) -> Self {
        Mutex {
            obj: ObjCell::new(),
            label: Some(label),
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            Some((rt, me)) => {
                rt.acquire(me, self.obj.id(), self.label);
                let inner = self
                    .inner
                    .try_lock()
                    .expect("eco-sched: model mutex contended outside the scheduler");
                Ok(MutexGuard {
                    lock: self,
                    model: Some((rt, me)),
                    inner: Some(inner),
                })
            }
            None => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    model: None,
                    inner: Some(inner),
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    model: None,
                    inner: Some(poison.into_inner()),
                })),
            },
        }
    }

    pub fn into_inner(self) -> LockResult<T>
    where
        T: Sized,
    {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            if let Some((rt, me)) = self.model.take() {
                rt.release(me, self.lock.obj.id());
            }
        }
    }
}

/// A condition variable whose wait/notify are scheduling points under
/// exploration. Lost wakeups are modeled faithfully: a notify with no
/// waiters is a no-op, exactly like `std`.
pub struct Condvar {
    obj: ObjCell,
    label: Option<&'static str>,
    inner: std::sync::Condvar,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            obj: ObjCell::new(),
            label: None,
            inner: std::sync::Condvar::new(),
        }
    }

    /// A condvar with a stable display name for diagnostics.
    pub fn labeled(label: &'static str) -> Self {
        Condvar {
            obj: ObjCell::new(),
            label: Some(label),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            Some((rt, me)) => {
                let lock = guard.lock;
                drop(guard.inner.take());
                drop(guard);
                rt.cv_wait(me, self.obj.id(), lock.obj.id(), self.label);
                let inner = lock
                    .inner
                    .try_lock()
                    .expect("eco-sched: model mutex contended outside the scheduler");
                Ok(MutexGuard {
                    lock,
                    model: Some((rt, me)),
                    inner: Some(inner),
                })
            }
            None => {
                let lock = guard.lock;
                let inner = guard.inner.take().expect("guard already released");
                drop(guard);
                match self.inner.wait(inner) {
                    Ok(inner) => Ok(MutexGuard {
                        lock,
                        model: None,
                        inner: Some(inner),
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        lock,
                        model: None,
                        inner: Some(poison.into_inner()),
                    })),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match current() {
            Some((rt, me)) => rt.cv_notify(me, self.obj.id(), false, self.label),
            None => self.inner.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match current() {
            Some((rt, me)) => rt.cv_notify(me, self.obj.id(), true, self.label),
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Instrumented atomics. Only the types and operations the service layer
/// actually uses are provided; `Ordering` is re-exported from `std` since
/// the controlled scheduler serializes every access anyway.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Instrumented counterpart of the `std` atomic: every access is
            /// a scheduling point inside an exploration.
            pub struct $name {
                obj: super::ObjCell,
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    $name {
                        obj: super::ObjCell::new(),
                        inner: <$std>::new(v),
                    }
                }

                fn touch(&self, write: bool) {
                    if let Some((rt, me)) = super::current() {
                        rt.atomic_op(me, self.obj.id(), write);
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    self.touch(false);
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    self.touch(true);
                    self.inner.store(v, order)
                }

                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    self.touch(true);
                    self.inner.fetch_add(v, order)
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    self.touch(true);
                    self.inner.swap(v, order)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Instrumented `AtomicBool` (separate because `fetch_add` does not
    /// exist on the `std` type).
    pub struct AtomicBool {
        obj: super::ObjCell,
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                obj: super::ObjCell::new(),
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        fn touch(&self, write: bool) {
            if let Some((rt, me)) = super::current() {
                rt.atomic_op(me, self.obj.id(), write);
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.touch(false);
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            self.touch(true);
            self.inner.store(v, order)
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            self.touch(true);
            self.inner.swap(v, order)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }
}

/// Model threads: spawn/join are scheduling points inside an exploration and
/// plain `std::thread` otherwise.
pub mod thread {
    use super::current;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    enum Inner<T> {
        Model {
            rt: Arc<crate::runtime::Runtime>,
            me: usize,
            tid: usize,
            slot: Arc<std::sync::Mutex<Option<T>>>,
        },
        Std(std::thread::JoinHandle<T>),
    }

    /// Handle for a model thread; `join` blocks (as a scheduling point under
    /// exploration) until the thread finishes and returns its value.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Join the thread and return its result. Unlike `std`, a panicking
        /// model thread aborts the whole schedule (recorded as a
        /// diagnostic), so there is no `Result` to unwrap.
        pub fn join(self) -> T {
            match self.0 {
                Inner::Model { rt, me, tid, slot } => {
                    rt.join_point(me, tid);
                    slot.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("joined model thread left no result")
                }
                Inner::Std(h) => h.join().expect("spawned thread panicked"),
            }
        }
    }

    /// Spawn a model thread. Inside an exploration the new thread only runs
    /// when the scheduler grants it; outside it is a plain OS thread.
    pub fn spawn<T, F>(name: &str, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match current() {
            Some((rt, me)) => {
                let tid = rt.register_thread(name.to_string());
                let slot: Arc<std::sync::Mutex<Option<T>>> = Arc::new(std::sync::Mutex::new(None));
                let rt2 = rt.clone();
                let slot2 = slot.clone();
                let handle = std::thread::spawn(move || {
                    crate::runtime::set_current(rt2.clone(), tid);
                    if rt2.first_park(tid) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => {
                                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            }
                            Err(p) => rt2.handle_thread_panic(tid, &*p),
                        }
                    }
                    rt2.thread_exit(tid);
                    crate::runtime::clear_current();
                });
                rt.add_real_handle(handle);
                rt.spawn_point(me);
                JoinHandle(Inner::Model { rt, me, tid, slot })
            }
            None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        }
    }
}

/// Explicit scheduling point. Inside an exploration this lets the scheduler
/// interleave other threads here (used to mark effect boundaries that the
/// checker cannot see, e.g. between a temp-file write and its rename);
/// outside it is free.
pub fn yield_point(_site: &'static str) {
    if let Some((rt, me)) = current() {
        rt.yield_point(me);
    }
}

/// Assert a model invariant. On failure inside an exploration the violation
/// is recorded under `code` with the failing schedule attached and the run
/// unwinds; outside an exploration it panics like `assert!`.
pub fn check(code: DiagCode, cond: bool, msg: impl FnOnce() -> String) {
    if cond {
        return;
    }
    match current() {
        Some((rt, _)) => rt.violation(code, msg()),
        None => panic!("{}: {}", code, msg()),
    }
}
