//! Stable diagnostics for the interleaving checker and lock-order analysis.
//!
//! Codes mirror the `ECO-E001..` scheme of `eco-verify`: each check that the
//! scheduler or a protocol model performs maps to one stable `ECO-S` code, so
//! CI and humans can grep for a code and know exactly which invariant broke.

use std::fmt;

/// Stable diagnostic codes (`ECO-S001` ...), one per scheduler/model check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `ECO-S001`: the acquisition graph accumulated across all explored
    /// schedules contains a cycle — two threads can each hold one lock of
    /// the cycle while requesting the next (deadlock potential).
    LockOrderCycle,
    /// `ECO-S002`: a thread entered `Condvar::wait` while holding a lock
    /// *other* than the mutex it waits on; a notifier that needs that lock
    /// can never run.
    LockHeldAcrossWait,
    /// `ECO-S003`: the model's main body returned while a spawned thread
    /// had not been joined.
    ThreadNotJoined,
    /// `ECO-S004`: an explored schedule reached a state where every
    /// unfinished thread is blocked (actual deadlock, not just potential).
    Deadlock,
    /// `ECO-S005`: the store atomic-write protocol produced a temp-file
    /// collision — two in-flight writers chose the same temporary name and
    /// one rename destroyed or published the other's bytes.
    StoreTempCollision,
    /// `ECO-S006`: the store index published an entry before the data file
    /// was durable — a concurrent reader saw an index hit with missing or
    /// stale bytes on disk.
    StoreIndexOrder,
    /// `ECO-S007`: in the serve in-flight dedupe protocol, a waiter
    /// observed response bytes that differ from the owner's response
    /// (byte-identity violation).
    DedupeByteMismatch,
    /// `ECO-S008`: a bounded completed-ring or memo publish invariant
    /// broke — the ring exceeded its capacity or a memo key was published
    /// twice with different values.
    RingOverflow,
    /// `ECO-S009`: a model thread panicked for a reason not covered by a
    /// more specific code.
    ModelPanic,
}

impl DiagCode {
    /// The stable textual code, e.g. `"ECO-S001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::LockOrderCycle => "ECO-S001",
            DiagCode::LockHeldAcrossWait => "ECO-S002",
            DiagCode::ThreadNotJoined => "ECO-S003",
            DiagCode::Deadlock => "ECO-S004",
            DiagCode::StoreTempCollision => "ECO-S005",
            DiagCode::StoreIndexOrder => "ECO-S006",
            DiagCode::DedupeByteMismatch => "ECO-S007",
            DiagCode::RingOverflow => "ECO-S008",
            DiagCode::ModelPanic => "ECO-S009",
        }
    }

    /// One-line human description of the class of failure.
    pub fn title(&self) -> &'static str {
        match self {
            DiagCode::LockOrderCycle => "lock-order cycle (deadlock potential)",
            DiagCode::LockHeldAcrossWait => "lock held across Condvar::wait",
            DiagCode::ThreadNotJoined => "thread not joined at model exit",
            DiagCode::Deadlock => "deadlock: all unfinished threads blocked",
            DiagCode::StoreTempCollision => "store temp-file name collision",
            DiagCode::StoreIndexOrder => "store index published before data durable",
            DiagCode::DedupeByteMismatch => "in-flight dedupe byte-identity violation",
            DiagCode::RingOverflow => "bounded ring/memo publish invariant broken",
            DiagCode::ModelPanic => "model thread panicked",
        }
    }

    /// Every code, in catalog order (for docs and tests).
    pub fn all() -> [DiagCode; 9] {
        [
            DiagCode::LockOrderCycle,
            DiagCode::LockHeldAcrossWait,
            DiagCode::ThreadNotJoined,
            DiagCode::Deadlock,
            DiagCode::StoreTempCollision,
            DiagCode::StoreIndexOrder,
            DiagCode::DedupeByteMismatch,
            DiagCode::RingOverflow,
            DiagCode::ModelPanic,
        ]
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from an explored schedule (or from the post-hoc lock-order
/// analysis, in which case `schedule` is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedDiag {
    pub code: DiagCode,
    pub message: String,
    /// The thread chosen at each choice point of the failing schedule.
    /// Replay the exact interleaving with `ECO_SCHED_SEED=<seed>` — the
    /// explorer revisits schedules in the same order for the same seed.
    pub schedule: Vec<usize>,
    /// Seed the explorer ran under when the schedule was found.
    pub seed: u64,
}

impl SchedDiag {
    /// Render as a stable single paragraph, mirroring `Certificate::render`.
    pub fn render(&self) -> String {
        let mut out = format!("{} {}: {}", self.code, self.code.title(), self.message);
        if !self.schedule.is_empty() {
            let steps: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
            out.push_str(&format!(
                "\n  schedule (seed {}): [{}]",
                self.seed,
                steps.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_sequential() {
        for (i, c) in DiagCode::all().iter().enumerate() {
            assert_eq!(c.as_str(), format!("ECO-S00{}", i + 1));
        }
    }

    #[test]
    fn render_includes_code_and_schedule() {
        let d = SchedDiag {
            code: DiagCode::Deadlock,
            message: "t0 holds a, wants b; t1 holds b, wants a".into(),
            schedule: vec![0, 1, 0, 1],
            seed: 7,
        };
        let r = d.render();
        assert!(r.contains("ECO-S004"), "{r}");
        assert!(r.contains("[0,1,0,1]"), "{r}");
        assert!(r.contains("seed 7"), "{r}");
    }
}
