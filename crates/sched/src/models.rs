//! Built-in checker models of the three hottest shared-state protocols in
//! the service layer. Each model is a faithful, self-contained port of the
//! real protocol's lock/condvar structure (the in-crate `eco_sched` tests
//! additionally drive the *real* code under `--cfg eco_sched`); running them
//! feeds the lock-order analysis and proves the clean protocols clean.
//!
//! `eco lint --sched` runs all three and renders the combined report.

use crate::diag::DiagCode;
use crate::model::{self, atomic::AtomicU64, atomic::Ordering, check, yield_point, Condvar, Mutex};
use crate::{explore, Config, Report};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Outcome of one built-in model run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Stable model name (used in CI artifacts and docs).
    pub name: &'static str,
    /// What the model covers, one line.
    pub covers: &'static str,
    pub report: Report,
}

/// Run every built-in model under `cfg` (the seed is shared; each model is
/// explored independently). Deterministic: same config, same reports.
pub fn run_builtin(cfg: &Config) -> Vec<ModelReport> {
    vec![
        ModelReport {
            name: "store-write-gc",
            covers: "store write_atomic + LRU index vs concurrent reader and gc",
            report: explore(cfg.clone(), store_write_gc),
        },
        ModelReport {
            name: "serve-inflight-dedupe",
            covers: "serve whole-request dedupe: owner/waiter response-byte identity",
            report: explore(cfg.clone(), serve_inflight_dedupe),
        },
        ModelReport {
            name: "engine-memo-ring",
            covers: "engine memo dedup_waits + bounded completed ring",
            report: explore(cfg.clone(), engine_memo_ring),
        },
    ]
}

// ---------------------------------------------------------------------------
// Model (a): store `write_atomic` + LRU index + `gc` vs readers/writers.
//
// Mirrors `eco_store::ResultStore`: writers build the payload file under a
// unique temp name *outside* the index lock, atomically rename it into
// place, then take the lock to publish the index entry; `get` and `gc` do
// their filesystem work while holding the index lock. The "filesystem" is a
// map behind its own lock (each op is one atomic syscall), with explicit
// yield points at the effect boundaries the real code has.
// ---------------------------------------------------------------------------

struct StoreModel {
    /// The index half of `ResultStore::inner` (key -> logical clock).
    index: Mutex<BTreeMap<&'static str, u64>>,
    /// The directory: file name -> payload bytes.
    fs: Mutex<BTreeMap<String, Vec<u8>>>,
    /// Port of the real `TMP_SEQ` uniqueness counter.
    tmp_seq: AtomicU64,
    clock: AtomicU64,
}

impl StoreModel {
    fn put(&self, key: &'static str, payload: Vec<u8>) {
        // write_atomic: unique temp name, write, yield, rename.
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = format!(".{key}.{seq}.tmp");
        self.fs.lock().unwrap().insert(tmp.clone(), payload.clone());
        yield_point("store.write_atomic.pre_rename");
        {
            let mut fs = self.fs.lock().unwrap();
            let bytes = fs.remove(&tmp);
            check(DiagCode::StoreTempCollision, bytes.is_some(), || {
                format!("temp file {tmp} vanished before rename (stolen by a colliding writer)")
            });
            fs.insert(key.to_string(), bytes.unwrap());
        }
        // Publish the index entry only after the data is durable.
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        self.index.lock().unwrap().insert(key, now);
    }

    fn get(&self, key: &'static str) -> Option<Vec<u8>> {
        let index = self.index.lock().unwrap();
        index.get(key)?;
        // The real `get` reads the data file while holding `inner`.
        let bytes = self.fs.lock().unwrap().get(key).cloned();
        check(DiagCode::StoreIndexOrder, bytes.is_some(), || {
            format!("index hit for {key} but the data file is missing")
        });
        bytes
    }

    fn gc(&self, max_entries: usize) {
        // The real `gc` evicts oldest-first while holding `inner`.
        let mut index = self.index.lock().unwrap();
        while index.len() > max_entries {
            let victim = *index.iter().min_by_key(|(_, &clock)| clock).unwrap().0;
            index.remove(victim);
            self.fs.lock().unwrap().remove(victim);
        }
    }
}

fn store_write_gc() {
    let store = Arc::new(StoreModel {
        index: Mutex::labeled("store.inner", BTreeMap::new()),
        fs: Mutex::labeled("store.fs", BTreeMap::new()),
        tmp_seq: AtomicU64::new(0),
        clock: AtomicU64::new(0),
    });

    let s1 = store.clone();
    let w1 = model::thread::spawn("writer-a", move || {
        s1.put("alpha", vec![1; 4]);
        s1.put("beta", vec![2; 4]);
    });
    let s2 = store.clone();
    let w2 = model::thread::spawn("writer-b", move || {
        s2.put("alpha", vec![3; 4]);
        s2.gc(1);
    });
    let s3 = store.clone();
    let reader = model::thread::spawn("reader", move || {
        let _ = s3.get("alpha");
        let _ = s3.get("beta");
    });

    w1.join();
    w2.join();
    reader.join();

    // Quiescent check: every surviving index entry has bytes on disk, and
    // any "alpha" bytes are one writer's payload, never interleaved.
    let index = store.index.lock().unwrap();
    let fs = store.fs.lock().unwrap();
    for key in index.keys() {
        let bytes = fs.get(*key);
        check(DiagCode::StoreIndexOrder, bytes.is_some(), || {
            format!("index entry {key} survived with no data file")
        });
        if *key == "alpha" {
            let b = bytes.unwrap();
            check(
                DiagCode::StoreTempCollision,
                *b == vec![1; 4] || *b == vec![3; 4],
                || format!("alpha bytes are neither writer's payload: {b:?}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Model (b): serve whole-request in-flight dedupe.
//
// Mirrors `InflightRequest`/`with_inflight` in `eco_bench::serve`: the first
// thread to register a key becomes the owner, computes the response, fills
// a Mutex+Condvar cell, and removes the key; waiters block on the cell and
// must observe the owner's exact response bytes.
// ---------------------------------------------------------------------------

struct InflightCellModel {
    done: Mutex<Option<String>>,
    cv: Condvar,
}

struct InflightModel {
    inflight: Mutex<BTreeMap<u64, Arc<InflightCellModel>>>,
    generation: AtomicU64,
}

impl InflightModel {
    /// Port of `with_inflight`: returns `(generation, response)`.
    fn run(&self, key: u64, who: &str) -> (u64, String) {
        let (cell, owner_gen) = {
            let mut map = self.inflight.lock().unwrap();
            match map.get(&key).cloned() {
                Some(cell) => (cell, None),
                None => {
                    let cell = Arc::new(InflightCellModel {
                        done: Mutex::labeled("serve.inflight.cell", None),
                        cv: Condvar::labeled("serve.inflight.cv"),
                    });
                    map.insert(key, cell.clone());
                    let generation = self.generation.fetch_add(1, Ordering::Relaxed);
                    (cell, Some(generation))
                }
            }
        };
        match owner_gen {
            Some(generation) => {
                let response = format!("resp:{generation}:{who}");
                {
                    let mut done = cell.done.lock().unwrap();
                    *done = Some(response.clone());
                }
                cell.cv.notify_all();
                self.inflight.lock().unwrap().remove(&key);
                (generation, response)
            }
            None => {
                let mut done = cell.done.lock().unwrap();
                loop {
                    if let Some(response) = done.clone() {
                        let generation: u64 = response.split(':').nth(1).unwrap().parse().unwrap();
                        return (generation, response);
                    }
                    done = cell.cv.wait(done).unwrap();
                }
            }
        }
    }
}

fn serve_inflight_dedupe() {
    let inflight = Arc::new(InflightModel {
        inflight: Mutex::labeled("serve.inflight", BTreeMap::new()),
        generation: AtomicU64::new(0),
    });

    let handles: Vec<_> = ["client-a", "client-b", "client-c"]
        .iter()
        .map(|who| {
            let m = inflight.clone();
            let who = *who;
            model::thread::spawn(who, move || m.run(42, who))
        })
        .collect();
    let results: Vec<(u64, String)> = handles.into_iter().map(|h| h.join()).collect();

    // Byte identity: everyone who joined the same in-flight generation got
    // the owner's exact bytes.
    let mut by_gen: BTreeMap<u64, Vec<&String>> = BTreeMap::new();
    for (generation, response) in &results {
        by_gen.entry(*generation).or_default().push(response);
    }
    for (generation, responses) in &by_gen {
        check(
            DiagCode::DedupeByteMismatch,
            responses.iter().all(|r| *r == responses[0]),
            || format!("generation {generation} produced differing responses: {responses:?}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Model (c): engine memo `dedup_waits` + the 8-deep completed ring.
//
// Mirrors `Engine::eval_batch` classification (lock order: memo before
// inflight), the per-key `InflightCell` owner/waiter handoff, and the serve
// `watch`/`trace` completed ring (`COMPLETED_RING = 8`).
// ---------------------------------------------------------------------------

const RING_CAP: usize = 8;

struct EngineModel {
    memo: Mutex<BTreeMap<u64, u64>>,
    inflight: Mutex<BTreeMap<u64, Arc<InflightCellModel>>>,
    stats: Mutex<EngineStatsModel>,
    ring: Mutex<VecDeque<u64>>,
}

#[derive(Default)]
struct EngineStatsModel {
    computed: u64,
    memo_hits: u64,
    dedup_waits: u64,
}

impl EngineModel {
    fn eval(&self, key: u64) -> u64 {
        // Classification holds `memo` then `inflight` (documented order).
        let cell = {
            let memo = self.memo.lock().unwrap();
            if let Some(&v) = memo.get(&key) {
                self.stats.lock().unwrap().memo_hits += 1;
                self.push_completed(v);
                return v;
            }
            let mut inflight = self.inflight.lock().unwrap();
            let existing = inflight.get(&key).cloned();
            match existing {
                Some(cell) => Some(cell),
                None => {
                    inflight.insert(
                        key,
                        Arc::new(InflightCellModel {
                            done: Mutex::labeled("engine.cell", None),
                            cv: Condvar::labeled("engine.cell.cv"),
                        }),
                    );
                    None
                }
            }
        };
        match cell {
            None => {
                // Owner: compute, publish to memo, retire the cell, fill it.
                let value = key * 10;
                self.stats.lock().unwrap().computed += 1;
                {
                    let mut memo = self.memo.lock().unwrap();
                    let prev = memo.insert(key, value);
                    check(DiagCode::RingOverflow, prev.is_none(), || {
                        format!("memo key {key} published twice")
                    });
                }
                let cell = self.inflight.lock().unwrap().remove(&key).unwrap();
                {
                    let mut done = cell.done.lock().unwrap();
                    *done = Some(value.to_string());
                }
                cell.cv.notify_all();
                self.push_completed(value);
                value
            }
            Some(cell) => {
                // Waiter: block on the cell, then account the dedupe.
                let mut done = cell.done.lock().unwrap();
                let value = loop {
                    if let Some(v) = done.as_ref() {
                        break v.parse::<u64>().unwrap();
                    }
                    done = cell.cv.wait(done).unwrap();
                };
                drop(done);
                self.stats.lock().unwrap().dedup_waits += 1;
                self.push_completed(value);
                value
            }
        }
    }

    fn push_completed(&self, value: u64) {
        let mut ring = self.ring.lock().unwrap();
        ring.push_back(value);
        while ring.len() > RING_CAP {
            ring.pop_front();
        }
        let len = ring.len();
        check(DiagCode::RingOverflow, len <= RING_CAP, || {
            format!("completed ring grew to {len} (cap {RING_CAP})")
        });
    }
}

fn engine_memo_ring() {
    let engine = Arc::new(EngineModel {
        memo: Mutex::labeled("engine.memo", BTreeMap::new()),
        inflight: Mutex::labeled("engine.inflight", BTreeMap::new()),
        stats: Mutex::labeled("engine.stats", EngineStatsModel::default()),
        ring: Mutex::labeled("serve.completed_ring", VecDeque::new()),
    });

    let handles: Vec<_> = [("eval-a", 7u64), ("eval-b", 7), ("eval-c", 9)]
        .iter()
        .map(|(name, key)| {
            let e = engine.clone();
            let key = *key;
            model::thread::spawn(name, move || e.eval(key))
        })
        .collect();
    let results: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();

    check(
        DiagCode::DedupeByteMismatch,
        results[0] == 70 && results[1] == 70 && results[2] == 90,
        || format!("eval results wrong: {results:?}"),
    );
    let stats = engine.stats.lock().unwrap();
    let total = stats.computed + stats.memo_hits + stats.dedup_waits;
    check(DiagCode::RingOverflow, total == 3, || {
        format!(
            "dedupe accounting lost a request: computed {} + memo_hits {} + dedup_waits {} != 3",
            stats.computed, stats.memo_hits, stats.dedup_waits
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_models_are_clean_and_deterministic() {
        let cfg = Config {
            seed: 1,
            ..Config::default()
        };
        let first = run_builtin(&cfg);
        for m in &first {
            assert!(
                m.report.is_clean(),
                "model {} reported: {:?}",
                m.name,
                m.report.diags
            );
            assert!(m.report.schedules >= 2, "model {} barely explored", m.name);
        }
        let second = run_builtin(&cfg);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report.schedules, b.report.schedules, "model {}", a.name);
            assert_eq!(a.report.edges, b.report.edges, "model {}", a.name);
        }
    }
}
