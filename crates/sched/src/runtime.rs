//! The controlled scheduler and DFS schedule explorer.
//!
//! Model threads are real OS threads, but exactly one is ever allowed to run:
//! every instrumented operation (mutex acquire/release, condvar wait/notify,
//! atomic access, spawn/join, explicit yield point) parks the calling thread
//! and hands the run token to the scheduler, which picks the next thread
//! according to the schedule currently being explored. Exploration is a
//! depth-first walk over scheduling choice points with two reductions:
//!
//! * **bounded preemption** — a runnable thread is only switched away from at
//!   most `max_preemptions` times per schedule (CHESS-style), and
//! * **DPOR-lite** — a preemptive alternative is only explored when the two
//!   adjacent pending operations *conflict* (same object, at least one
//!   write); commuting adjacent steps are skipped.
//!
//! Determinism: all scheduler state lives in `BTreeMap`s/`Vec`s, runnable
//! sets are ordered by thread id, and the only tie-break is a splitmix hash
//! of `(seed, depth)` — the same seed always yields the same sequence of
//! explored schedules, which is what makes `ECO_SCHED_SEED` replay work.

use crate::diag::{DiagCode, SchedDiag};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Sentinel for "no thread holds the run token".
const NONE: usize = usize::MAX;

/// Explorer configuration. `Default` gives the values CI runs with.
#[derive(Debug, Clone)]
pub struct Config {
    /// Seed for schedule-order tie-breaks (`ECO_SCHED_SEED`).
    pub seed: u64,
    /// Maximum preemptive context switches per schedule.
    pub max_preemptions: usize,
    /// Hard cap on explored schedules; the report is marked truncated if hit.
    pub max_schedules: u64,
    /// Stop exploring after the first aborting diagnostic.
    pub stop_on_first: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0,
            max_preemptions: 2,
            max_schedules: 4_000,
            stop_on_first: true,
        }
    }
}

impl Config {
    /// Default config with the seed taken from `ECO_SCHED_SEED` (if set).
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(s) = std::env::var("ECO_SCHED_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                cfg.seed = v;
            }
        }
        cfg
    }
}

/// Result of exploring one model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of complete schedules (distinct interleavings) executed.
    pub schedules: u64,
    /// True if `max_schedules` stopped the walk before exhaustion.
    pub truncated: bool,
    /// All diagnostics found, deduplicated by (code, message).
    pub diags: Vec<SchedDiag>,
    /// Lock acquisition edges (`held -> acquired`) seen across all schedules.
    pub edges: Vec<(String, String)>,
    /// The seed the walk ran under.
    pub seed: u64,
}

impl Report {
    /// True when no diagnostic of any kind was recorded.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// One instrumented operation, declared *before* it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Thread registered but has not run yet.
    Start,
    Lock(u64),
    Unlock(u64),
    CvNotify(u64),
    AtLoad(u64),
    AtWrite(u64),
    /// Explicit yield point (e.g. between a temp write and its rename).
    Yield,
    Spawn,
    Join(usize),
}

fn op_obj(op: Op) -> Option<(u64, bool)> {
    // (object id, is-write)
    match op {
        Op::Lock(i) | Op::Unlock(i) => Some((i, true)),
        Op::CvNotify(i) => Some((i, true)),
        Op::AtLoad(i) => Some((i, false)),
        Op::AtWrite(i) => Some((i, true)),
        Op::Start | Op::Yield | Op::Spawn | Op::Join(_) => None,
    }
}

/// DPOR-lite conflict test: do two adjacent pending operations fail to
/// commute? Yield points conflict with each other (their effects — file I/O
/// and the like — are invisible to the checker, so reorderings must be
/// explored).
fn conflicts(a: Op, b: Op) -> bool {
    if a == Op::Yield && b == Op::Yield {
        return true;
    }
    match (op_obj(a), op_obj(b)) {
        (Some((oa, wa)), Some((ob, wb))) => oa == ob && (wa || wb),
        _ => false,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Parked in `Condvar::wait`; `pending` holds the mutex re-acquire op.
    CvWaiting(u64),
    Finished,
}

#[derive(Debug)]
struct Th {
    name: String,
    status: Status,
    pending: Op,
    held: Vec<u64>,
    joined: bool,
}

/// A DFS choice point: thread options in exploration order, and the index of
/// the option the *next* run will take.
#[derive(Debug)]
struct Point {
    options: Vec<usize>,
    next: usize,
}

struct State {
    threads: Vec<Th>,
    running: usize,
    choice_idx: usize,
    preemptions: usize,
    abort: bool,
    hard_failure: bool,
    trace: Vec<usize>,
    lock_owner: BTreeMap<u64, usize>,
    names: BTreeMap<u64, String>,
    reg_seq: u64,
    // Exploration state, persistent across runs of one `explore` call.
    stack: Vec<Point>,
    diags: Vec<SchedDiag>,
    edges: BTreeSet<(String, String)>,
    schedules: u64,
    real_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Runtime {
    state: StdMutex<State>,
    cv: StdCondvar,
    cfg: Config,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Runtime>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Option<(Arc<Runtime>, usize)> {
    // An unwinding thread (e.g. a Drop impl flushing state after a recorded
    // violation) must not re-enter the scheduler: fall back to plain std
    // behavior so teardown cannot double-panic or self-deadlock.
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(rt: Arc<Runtime>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// True while the calling thread is a registered model thread of an active
/// exploration (instrumented primitives fall back to `std` otherwise).
pub fn active() -> bool {
    current().is_some()
}

/// Payload used to unwind model threads when a run is aborted.
pub(crate) struct AbortRun;

fn panic_abort() -> ! {
    panic::panic_any(AbortRun)
}

/// Global object-id allocator; ids are only assigned on first *model* use,
/// so fallback (non-explore) usage costs one relaxed load.
static NEXT_OBJ: AtomicU64 = AtomicU64::new(1);

pub(crate) struct ObjCell {
    id: AtomicU64,
}

impl ObjCell {
    pub(crate) const fn new() -> Self {
        ObjCell {
            id: AtomicU64::new(0),
        }
    }

    pub(crate) fn id(&self) -> u64 {
        let v = self.id.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        let fresh = NEXT_OBJ.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }
}

fn seed_mix(seed: u64, d: u64) -> u64 {
    let mut x = seed ^ d.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Runtime {
    fn new(cfg: Config) -> Self {
        Runtime {
            state: StdMutex::new(State {
                threads: Vec::new(),
                running: NONE,
                choice_idx: 0,
                preemptions: 0,
                abort: false,
                hard_failure: false,
                trace: Vec::new(),
                lock_owner: BTreeMap::new(),
                names: BTreeMap::new(),
                reg_seq: 0,
                stack: Vec::new(),
                diags: Vec::new(),
                edges: BTreeSet::new(),
                schedules: 0,
                real_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            cfg,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a per-run display name for an object the first time it is
    /// touched in this run.
    fn ensure_name(&self, st: &mut State, id: u64, kind: &str, label: Option<&'static str>) {
        if !st.names.contains_key(&id) {
            let name = match label {
                Some(l) => l.to_string(),
                None => {
                    let n = format!("{kind}#{}", st.reg_seq);
                    st.reg_seq += 1;
                    n
                }
            };
            st.names.insert(id, name);
        }
    }

    fn name_of(st: &State, id: u64) -> String {
        st.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("obj#{id}"))
    }

    /// Is thread `t`'s pending operation executable right now?
    fn executable(st: &State, t: usize) -> bool {
        let th = &st.threads[t];
        if th.status != Status::Ready {
            return false;
        }
        match th.pending {
            Op::Lock(id) => !st.lock_owner.contains_key(&id),
            Op::Join(target) => st.threads[target].status == Status::Finished,
            _ => true,
        }
    }

    fn runnable(st: &State) -> Vec<usize> {
        (0..st.threads.len())
            .filter(|&t| Self::executable(st, t))
            .collect()
    }

    fn push_diag(&self, st: &mut State, code: DiagCode, message: String, with_trace: bool) {
        if st
            .diags
            .iter()
            .any(|d| d.code == code && d.message == message)
        {
            return;
        }
        st.diags.push(SchedDiag {
            code,
            message,
            schedule: if with_trace {
                st.trace.clone()
            } else {
                Vec::new()
            },
            seed: self.cfg.seed,
        });
    }

    /// Record a hard failure and wake everyone so the run can unwind.
    fn abort_run(&self, st: &mut State, code: DiagCode, message: String) {
        self.push_diag(st, code, message, true);
        st.abort = true;
        st.hard_failure = true;
        st.running = NONE;
        self.cv.notify_all();
    }

    /// Pick the next thread to run. Called with the state lock held, by the
    /// thread that currently has the token (or by run teardown).
    fn choose_next(&self, st: &mut State) {
        let runnable = Self::runnable(st);
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.running = NONE;
                self.cv.notify_all();
                return;
            }
            let mut parts = Vec::new();
            for th in st.threads.iter() {
                let what = match (th.status, th.pending) {
                    (Status::Finished, _) => continue,
                    (Status::CvWaiting(cv), _) => {
                        format!("waiting on condvar {}", Self::name_of(st, cv))
                    }
                    (_, Op::Lock(id)) => {
                        let owner = st
                            .lock_owner
                            .get(&id)
                            .map(|&o| st.threads[o].name.clone())
                            .unwrap_or_else(|| "?".into());
                        format!("blocked on lock {} held by {owner}", Self::name_of(st, id))
                    }
                    (_, Op::Join(t)) => format!("joining unfinished thread {}", st.threads[t].name),
                    (_, op) => format!("blocked at {op:?}"),
                };
                parts.push(format!("{}: {what}", th.name));
            }
            self.abort_run(st, DiagCode::Deadlock, parts.join("; "));
            return;
        }

        let yielder = st.running;
        let yielder_runnable = yielder != NONE && runnable.contains(&yielder);
        let free_choice = !yielder_runnable || st.threads[yielder].pending == Op::Spawn;

        let mut options: Vec<usize> = Vec::new();
        if free_choice {
            // The previous thread blocked/finished (or just spawned a
            // thread): every runnable thread is a zero-cost alternative.
            let def = if yielder_runnable {
                yielder
            } else {
                runnable[(seed_mix(self.cfg.seed, st.choice_idx as u64) as usize) % runnable.len()]
            };
            options.push(def);
            for &u in &runnable {
                if u != def {
                    options.push(u);
                }
            }
        } else {
            // Default: keep running the current thread. Alternatives are
            // preemptions, taken only within budget and only when the two
            // adjacent operations conflict (DPOR-lite). A thread that has
            // not run yet always counts as conflicting: its first real
            // operation is unknown until it is scheduled.
            options.push(yielder);
            if st.preemptions < self.cfg.max_preemptions {
                let here = st.threads[yielder].pending;
                for &u in &runnable {
                    if u != yielder
                        && (st.threads[u].pending == Op::Start
                            || conflicts(here, st.threads[u].pending))
                    {
                        options.push(u);
                    }
                }
            }
        }

        let chosen = if options.len() <= 1 {
            options[0]
        } else {
            let d = st.choice_idx;
            if d >= st.stack.len() {
                st.stack.push(Point { options, next: 0 });
            }
            st.choice_idx += 1;
            let p = &st.stack[d];
            debug_assert!(p.next < p.options.len());
            let c = p.options[p.next];
            debug_assert!(
                runnable.contains(&c),
                "replay divergence: model is nondeterministic (chose t{c} from {runnable:?})"
            );
            c
        };

        if yielder_runnable && chosen != yielder && st.threads[yielder].pending != Op::Spawn {
            st.preemptions += 1;
        }
        st.trace.push(chosen);
        st.running = chosen;
        self.cv.notify_all();
    }

    /// Declare the calling thread's next operation, hand over the token, and
    /// park until this thread is scheduled again.
    fn switch(&self, me: usize, op: Op) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic_abort();
        }
        st.threads[me].pending = op;
        self.choose_next(&mut st);
        loop {
            if st.abort {
                drop(st);
                panic_abort();
            }
            if st.running == me {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    // ---- instrumented operation entry points -------------------------------

    pub(crate) fn acquire(&self, me: usize, id: u64, label: Option<&'static str>) {
        {
            let mut st = self.lock();
            self.ensure_name(&mut st, id, "lock", label);
        }
        self.switch(me, Op::Lock(id));
        let mut st = self.lock();
        debug_assert!(!st.lock_owner.contains_key(&id));
        st.lock_owner.insert(id, me);
        let held: Vec<u64> = st.threads[me].held.clone();
        for h in held {
            let edge = (Self::name_of(&st, h), Self::name_of(&st, id));
            st.edges.insert(edge);
        }
        st.threads[me].held.push(id);
    }

    pub(crate) fn release(&self, me: usize, id: u64) {
        {
            let st = self.lock();
            if st.abort {
                // Unwinding guards must not reschedule.
                return;
            }
        }
        self.switch(me, Op::Unlock(id));
        let mut st = self.lock();
        st.lock_owner.remove(&id);
        st.threads[me].held.retain(|&h| h != id);
    }

    /// Atomically release `mutex`, park on `cv`, and re-acquire once
    /// notified. The caller has already dropped the real guard.
    pub(crate) fn cv_wait(&self, me: usize, cv: u64, mutex: u64, label: Option<&'static str>) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic_abort();
        }
        self.ensure_name(&mut st, cv, "condvar", label);
        let others: Vec<String> = st.threads[me]
            .held
            .iter()
            .filter(|&&h| h != mutex)
            .map(|&h| Self::name_of(&st, h))
            .collect();
        if !others.is_empty() {
            let msg = format!(
                "{} waits on {} while holding {}",
                st.threads[me].name,
                Self::name_of(&st, cv),
                others.join(", ")
            );
            self.push_diag(&mut st, DiagCode::LockHeldAcrossWait, msg, true);
        }
        // Effect: release the mutex and park on the condvar.
        st.lock_owner.remove(&mutex);
        st.threads[me].held.retain(|&h| h != mutex);
        st.threads[me].status = Status::CvWaiting(cv);
        st.threads[me].pending = Op::Lock(mutex);
        self.choose_next(&mut st);
        loop {
            if st.abort {
                drop(st);
                panic_abort();
            }
            if st.threads[me].status == Status::Ready && st.running == me {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        // Scheduled with the mutex free: take it back.
        debug_assert!(!st.lock_owner.contains_key(&mutex));
        st.lock_owner.insert(mutex, me);
        st.threads[me].held.push(mutex);
    }

    pub(crate) fn cv_notify(&self, me: usize, cv: u64, all: bool, label: Option<&'static str>) {
        {
            let mut st = self.lock();
            self.ensure_name(&mut st, cv, "condvar", label);
        }
        self.switch(me, Op::CvNotify(cv));
        let mut st = self.lock();
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::CvWaiting(cv))
            .map(|(i, _)| i)
            .collect();
        for (n, w) in waiters.into_iter().enumerate() {
            if all || n == 0 {
                st.threads[w].status = Status::Ready;
            }
        }
    }

    pub(crate) fn atomic_op(&self, me: usize, id: u64, write: bool) {
        {
            let mut st = self.lock();
            self.ensure_name(&mut st, id, "atomic", None);
        }
        let op = if write {
            Op::AtWrite(id)
        } else {
            Op::AtLoad(id)
        };
        self.switch(me, op);
    }

    pub(crate) fn yield_point(&self, me: usize) {
        self.switch(me, Op::Yield);
    }

    // ---- threads -----------------------------------------------------------

    pub(crate) fn register_thread(&self, name: String) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads.push(Th {
            name,
            status: Status::Ready,
            pending: Op::Start,
            held: Vec::new(),
            joined: false,
        });
        tid
    }

    pub(crate) fn add_real_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().real_handles.push(h);
    }

    /// Park a freshly spawned model thread until its first grant. Returns
    /// false if the run aborted before this thread ever ran (the caller must
    /// skip the thread body).
    pub(crate) fn first_park(&self, me: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.abort {
                return false;
            }
            if st.running == me {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn spawn_point(&self, me: usize) {
        self.switch(me, Op::Spawn);
    }

    pub(crate) fn join_point(&self, me: usize, target: usize) {
        self.switch(me, Op::Join(target));
        let mut st = self.lock();
        st.threads[target].joined = true;
    }

    pub(crate) fn thread_exit(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        if st.abort {
            self.cv.notify_all();
        } else {
            self.choose_next(&mut st);
        }
    }

    pub(crate) fn handle_thread_panic(&self, me: usize, payload: &(dyn std::any::Any + Send)) {
        if payload.downcast_ref::<AbortRun>().is_some() {
            return;
        }
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "model thread panicked".into());
        let mut st = self.lock();
        let msg = format!("{}: {msg}", st.threads[me].name);
        self.abort_run(&mut st, DiagCode::ModelPanic, msg);
    }

    /// Record a model-invariant violation on the calling thread and unwind.
    pub(crate) fn violation(&self, code: DiagCode, message: String) -> ! {
        {
            let mut st = self.lock();
            st.abort = true;
            st.hard_failure = true;
            self.push_diag(&mut st, code, message, true);
            self.cv.notify_all();
        }
        panic_abort()
    }
}

/// Serialize explorations per process: instrumented statics (e.g. the store's
/// `TMP_SEQ`) are shared, so two concurrent walks would perturb each other.
static EXPLORE_GUARD: StdMutex<()> = StdMutex::new(());

/// Exhaustively explore the bounded interleavings of `body` and report what
/// was found. `body` is re-run once per schedule; it must be deterministic
/// given a schedule (fresh state per call, no wall-clock or OS randomness).
pub fn explore<F: Fn()>(cfg: Config, body: F) -> Report {
    assert!(
        current().is_none(),
        "nested eco_sched::explore is not supported"
    );
    let _guard = EXPLORE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let seed = cfg.seed;
    let rt = Arc::new(Runtime::new(cfg));

    // Suppress the default "thread panicked" chatter for controlled unwinds.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|info| {
        if info.payload().downcast_ref::<AbortRun>().is_none() {
            // A genuine panic: stay quiet too — it is caught, recorded as a
            // diagnostic, and surfaced in the report.
        }
    }));

    let mut truncated = false;
    loop {
        // ---- begin one run -------------------------------------------------
        {
            let mut st = rt.lock();
            st.threads.clear();
            st.threads.push(Th {
                name: "main".into(),
                status: Status::Ready,
                pending: Op::Start,
                held: Vec::new(),
                joined: true,
            });
            st.running = 0;
            st.choice_idx = 0;
            st.preemptions = 0;
            st.abort = false;
            st.trace.clear();
            st.lock_owner.clear();
            st.names.clear();
            st.reg_seq = 0;
        }
        CURRENT.with(|c| *c.borrow_mut() = Some((rt.clone(), 0)));

        let result = panic::catch_unwind(AssertUnwindSafe(&body));

        // ---- end the run ---------------------------------------------------
        {
            let mut st = rt.lock();
            if let Err(p) = result {
                if p.downcast_ref::<AbortRun>().is_none() {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "model body panicked".into());
                    let msg = format!("main: {msg}");
                    rt.abort_run(&mut st, DiagCode::ModelPanic, msg);
                }
            } else {
                for i in 1..st.threads.len() {
                    if !st.threads[i].joined {
                        let msg =
                            format!("thread {} was not joined at model exit", st.threads[i].name);
                        rt.push_diag(&mut st, DiagCode::ThreadNotJoined, msg, false);
                    }
                }
            }
            st.threads[0].status = Status::Finished;
            if !st.abort {
                rt.choose_next(&mut st);
            } else {
                rt.cv.notify_all();
            }
            while !st.threads.iter().all(|t| t.status == Status::Finished) {
                st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.schedules += 1;
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        let handles: Vec<_> = rt.lock().real_handles.drain(..).collect();
        for h in handles {
            let _ = h.join();
        }

        // ---- advance the DFS stack ----------------------------------------
        let mut st = rt.lock();
        if st.hard_failure && rt.cfg.stop_on_first {
            break;
        }
        if st.schedules >= rt.cfg.max_schedules {
            truncated = !st.stack.is_empty();
            break;
        }
        let mut advanced = false;
        while let Some(p) = st.stack.last_mut() {
            p.next += 1;
            if p.next < p.options.len() {
                advanced = true;
                break;
            }
            st.stack.pop();
        }
        if !advanced {
            break;
        }
    }
    panic::set_hook(prev_hook);

    let st = rt.lock();
    let mut diags = st.diags.clone();
    diags.extend(lock_order_cycles(&st.edges, seed));
    Report {
        schedules: st.schedules,
        truncated,
        diags,
        edges: st.edges.iter().cloned().collect(),
        seed,
    }
}

/// Detect cycles in the accumulated acquisition graph and render each as an
/// `ECO-S001` diagnostic. Deterministic: nodes are visited in sorted order.
fn lock_order_cycles(edges: &BTreeSet<(String, String)>, seed: u64) -> Vec<SchedDiag> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut diags = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if done.contains(start) {
            continue;
        }
        // DFS from `start` looking for a path back to a node on the stack.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(start);
        while let Some((node, idx)) = stack.last_mut() {
            let next = adj.get(node).and_then(|v| v.get(*idx)).copied();
            *idx += 1;
            match next {
                Some(n) => {
                    if let Some(pos) = path.iter().position(|&p| p == n) {
                        let mut cycle: Vec<&str> = path[pos..].to_vec();
                        cycle.push(n);
                        let msg = format!("acquisition cycle: {}", cycle.join(" -> "));
                        let d = SchedDiag {
                            code: DiagCode::LockOrderCycle,
                            message: msg,
                            schedule: Vec::new(),
                            seed,
                        };
                        if !diags.contains(&d) {
                            diags.push(d);
                        }
                    } else if !seen.contains(n) {
                        seen.insert(n);
                        path.push(n);
                        stack.push((n, 0));
                    }
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
        done.extend(seen);
    }
    diags
}
