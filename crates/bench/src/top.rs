//! `eco top` — a polling dashboard over a running daemon's `metrics`
//! op (DESIGN.md §"Operating the daemon").
//!
//! Each tick sends one `metrics` request, parses the Prometheus text
//! with [`eco_metrics::parse_exposition`], and renders a four-section
//! summary (serve / engine / store / sweep) with counter totals,
//! per-second deltas against the previous tick, hit rates and latency
//! quantiles. `--once` takes a single snapshot and prints it without
//! rates or screen control — the deterministic mode the CI
//! observability job asserts on.
//!
//! Rendering is a pure function of two expositions
//! ([`render_top`]), so the dashboard is unit-testable without a
//! daemon.

use crate::serve;
use eco_core::events::Json;
use eco_metrics::{parse_exposition, Exposition};
use std::path::Path;

/// One snapshot older than the current one, with the seconds elapsed
/// between them — the basis for per-second rates.
pub struct Baseline<'a> {
    /// The previous tick's parsed exposition.
    pub prev: &'a Exposition,
    /// Seconds between the two snapshots (> 0).
    pub elapsed_secs: f64,
}

fn fmt_count(v: f64) -> String {
    if v >= 10_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v >= 10_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{}", v as u64)
    }
}

fn fmt_us(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1}s", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}ms", v / 1_000.0)
    } else {
        format!("{}us", v as u64)
    }
}

fn pct(part: f64, whole: f64) -> String {
    if whole <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * part / whole)
    }
}

/// Renders one dashboard frame from the current exposition, with
/// per-second rates when a [`Baseline`] is given. Pure: same inputs,
/// same text.
pub fn render_top(cur: &Exposition, base: Option<&Baseline<'_>>) -> String {
    let rate = |name: &str| -> String {
        match base {
            Some(b) if b.elapsed_secs > 0.0 => {
                let d = (cur.total(name) - b.prev.total(name)).max(0.0);
                format!("{:7.1}/s", d / b.elapsed_secs)
            }
            _ => "        -".to_string(),
        }
    };
    let quantiles = |name: &str, labels: &[(&str, &str)]| -> String {
        let q = |q: f64| {
            cur.quantile(name, labels, q)
                .map_or_else(|| "-".to_string(), fmt_us)
        };
        format!("p50 {} p90 {} p99 {}", q(0.50), q(0.90), q(0.99))
    };

    let mut out = String::new();
    // serve: totals, rates, in-flight, then the per-op breakdown.
    let requests = cur.total("eco_serve_requests_total");
    out.push_str(&format!(
        "serve    requests {:>8} {}   errors {}  deduped {}  slow {}  in-flight {}\n",
        fmt_count(requests),
        rate("eco_serve_requests_total"),
        fmt_count(cur.total("eco_serve_errors_total")),
        fmt_count(cur.total("eco_serve_deduped_requests_total")),
        fmt_count(cur.total("eco_serve_slow_requests_total")),
        fmt_count(cur.total("eco_serve_inflight")),
    ));
    let mut ops: Vec<(&str, f64)> = cur
        .samples
        .iter()
        .filter(|s| s.name == "eco_serve_requests_total" && s.value > 0.0)
        .filter_map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "op")
                .map(|(_, v)| (v.as_str(), s.value))
        })
        .collect();
    ops.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite counts")
            .then(a.0.cmp(b.0))
    });
    for (op, count) in ops {
        out.push_str(&format!(
            "         {op:<12} {:>8}   {}\n",
            fmt_count(count),
            quantiles("eco_serve_request_duration_us", &[("op", op)]),
        ));
    }

    // engine: work totals, hit rates, eval latency.
    let requested = cur.total("eco_engine_points_requested_total");
    let evaluated = cur.total("eco_engine_points_evaluated_total");
    let memo = cur.total("eco_engine_memo_hits_total");
    out.push_str(&format!(
        "engine   points {:>8} {}   evaluated {}  memo {} ({})  store {}  dedup {}  errors {}\n",
        fmt_count(requested),
        rate("eco_engine_points_requested_total"),
        fmt_count(evaluated),
        fmt_count(memo),
        pct(memo, requested),
        fmt_count(cur.total("eco_engine_store_hits_total")),
        fmt_count(cur.total("eco_engine_dedup_waits_total")),
        fmt_count(cur.total("eco_engine_eval_errors_total")),
    ));
    out.push_str(&format!(
        "         eval {}   plans {}  ff windows {}  ff accesses {}\n",
        quantiles("eco_engine_eval_duration_us", &[]),
        fmt_count(cur.total("eco_engine_plan_compiles_total")),
        fmt_count(cur.total("eco_engine_ff_windows_total")),
        fmt_count(cur.total("eco_engine_ff_accesses_total")),
    ));

    // store: persistent-result-store traffic.
    let hits = cur.total("eco_store_hits_total");
    let misses = cur.total("eco_store_misses_total");
    out.push_str(&format!(
        "store    hits {:>8} ({})  misses {}  puts {}  rejected {}  gc evicted {}  written {}\n",
        fmt_count(hits),
        pct(hits, hits + misses),
        fmt_count(misses),
        fmt_count(cur.total("eco_store_puts_total")),
        fmt_count(cur.total("eco_store_rejected_total")),
        fmt_count(cur.total("eco_store_gc_evicted_total")),
        fmt_count(cur.total("eco_store_bytes_written_total")),
    ));

    // sweep: shard lifecycle inside the daemon.
    out.push_str(&format!(
        "sweep    shards started {}  completed {}  failed {}  resumed {}  points/s {}\n",
        fmt_count(cur.total("eco_sweep_shards_started_total")),
        fmt_count(cur.total("eco_sweep_shards_completed_total")),
        fmt_count(cur.total("eco_sweep_shards_failed_total")),
        fmt_count(cur.total("eco_sweep_shards_resumed_total")),
        fmt_count(cur.total("eco_sweep_points_per_second")),
    ));
    out
}

/// One `metrics` round trip: scrape and parse the daemon's exposition.
///
/// # Errors
///
/// Returns a message when the request fails or the text does not
/// parse as a Prometheus exposition.
pub fn scrape(socket: &Path) -> Result<Exposition, String> {
    let response = serve::request(socket, &Json::obj().field("op", Json::str("metrics")))?;
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("metrics request failed")
            .to_string());
    }
    let text = response
        .get("metrics")
        .and_then(Json::as_str)
        .ok_or("metrics response has no 'metrics' field")?;
    parse_exposition(text)
}

/// Runs the dashboard: a single deterministic frame (`once`), or a
/// clear-screen poll loop every `interval_secs` until the daemon goes
/// away.
///
/// # Errors
///
/// Returns a message when the first scrape fails; once the loop is
/// running, a scrape failure (daemon shut down) ends it cleanly.
pub fn run(socket: &Path, once: bool, interval_secs: f64) -> Result<(), String> {
    let mut prev = scrape(socket)?;
    if once {
        print!("{}", render_top(&prev, None));
        return Ok(());
    }
    let interval = std::time::Duration::from_secs_f64(interval_secs.max(0.1));
    loop {
        std::thread::sleep(interval);
        let Ok(cur) = scrape(socket) else {
            println!("eco top: daemon at {} went away", socket.display());
            return Ok(());
        };
        // ANSI clear-screen + home, like top(1).
        print!(
            "\x1b[2J\x1b[Heco top — {} (every {:.1}s, ctrl-c to quit)\n{}",
            socket.display(),
            interval.as_secs_f64(),
            render_top(
                &cur,
                Some(&Baseline {
                    prev: &prev,
                    elapsed_secs: interval.as_secs_f64(),
                })
            )
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exposition(text: &str) -> Exposition {
        parse_exposition(text).expect("test exposition parses")
    }

    #[test]
    fn render_is_deterministic_and_sectioned() {
        let cur = exposition(
            "# TYPE eco_serve_requests_total counter\n\
             eco_serve_requests_total{op=\"ping\"} 3\n\
             eco_serve_requests_total{op=\"tune\"} 2\n\
             # TYPE eco_serve_request_duration_us histogram\n\
             eco_serve_request_duration_us_bucket{le=\"100\",op=\"tune\"} 1\n\
             eco_serve_request_duration_us_bucket{le=\"+Inf\",op=\"tune\"} 2\n\
             eco_serve_request_duration_us_sum{op=\"tune\"} 5000\n\
             eco_serve_request_duration_us_count{op=\"tune\"} 2\n\
             # TYPE eco_engine_points_requested_total counter\n\
             eco_engine_points_requested_total 100\n\
             # TYPE eco_engine_memo_hits_total counter\n\
             eco_engine_memo_hits_total 25\n\
             # TYPE eco_store_hits_total counter\n\
             eco_store_hits_total 8\n\
             # TYPE eco_store_misses_total counter\n\
             eco_store_misses_total 2\n",
        );
        let a = render_top(&cur, None);
        let b = render_top(&cur, None);
        assert_eq!(a, b, "same exposition renders the same frame");
        for section in ["serve", "engine", "store", "sweep"] {
            assert!(
                a.lines().any(|l| l.starts_with(section)),
                "frame has a {section} section:\n{a}"
            );
        }
        // ping (3 requests) sorts above tune (2) in the per-op table.
        let ping = a.find("ping").expect("ping row");
        let tune = a.find("tune").expect("tune row");
        assert!(ping < tune, "per-op rows sort by count desc");
        assert!(a.contains("memo 25 (25%)"), "memo hit rate:\n{a}");
        assert!(a.contains("(80%)"), "store hit rate:\n{a}");
        // No baseline → no rates.
        assert!(a.contains("-"), "rates blank without a baseline");
    }

    #[test]
    fn rates_use_the_baseline_delta() {
        let prev = exposition("eco_serve_requests_total{op=\"ping\"} 10\n");
        let cur = exposition("eco_serve_requests_total{op=\"ping\"} 30\n");
        let frame = render_top(
            &cur,
            Some(&Baseline {
                prev: &prev,
                elapsed_secs: 2.0,
            }),
        );
        assert!(
            frame.contains("10.0/s"),
            "20 new requests over 2s is 10.0/s:\n{frame}"
        );
    }
}
