//! Shared harness for regenerating the paper's tables and figures.
//!
//! The `repro` binary (in `src/bin/repro.rs`) drives these helpers; the
//! Criterion benches reuse them at smaller sizes. See DESIGN.md §7 for
//! the experiment index and EXPERIMENTS.md for recorded results.

pub mod cli;
pub mod figures;
pub mod serve;
pub mod sweep;
pub mod top;

use eco_exec::{measure, Counters, EvalJob, Evaluator, LayoutOptions, Params};
use eco_ir::{AffineExpr, Program};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use eco_transform::{
    copy_in, insert_prefetch, scalar_replace, tile_nest, unroll_and_jam, CopyDim, CopySpec,
    LoopSel, TileSpec,
};

/// Measures `program` at problem size `n` on `machine`.
///
/// # Panics
///
/// Panics if the program fails to execute (all harness programs are
/// verified by the test suite first).
pub fn counters_at(program: &Program, kernel: &Kernel, n: i64, machine: &MachineDesc) -> Counters {
    let params = Params::new().with(kernel.size, n);
    measure(program, &params, machine, &LayoutOptions::default())
        .unwrap_or_else(|e| panic!("{} at N={n}: {e}", program.name))
}

/// MFLOPS of `program` at problem size `n` on `machine`.
pub fn mflops_at(program: &Program, kernel: &Kernel, n: i64, machine: &MachineDesc) -> f64 {
    counters_at(program, kernel, n, machine).mflops(machine.clock_mhz)
}

/// Measures `program` at problem size `n` through an [`Evaluator`],
/// picking up memoization, parallelism and tracing from the engine.
///
/// # Panics
///
/// Panics if the program fails to execute, like [`counters_at`].
pub fn counters_at_with(
    engine: &dyn Evaluator,
    program: &Program,
    kernel: &Kernel,
    n: i64,
) -> Counters {
    let params = Params::new().with(kernel.size, n);
    let job = EvalJob::new(program.clone(), params).with_label(format!("{}/N={n}", program.name));
    engine
        .eval(job)
        .unwrap_or_else(|e| panic!("{} at N={n}: {e}", program.name))
}

/// MFLOPS of `program` at problem size `n` through an [`Evaluator`].
///
/// # Panics
///
/// Panics if the program fails to execute, like [`counters_at`].
pub fn mflops_at_with(engine: &dyn Evaluator, program: &Program, kernel: &Kernel, n: i64) -> f64 {
    counters_at_with(engine, program, kernel, n).mflops(engine.machine().clock_mhz)
}

/// Runs a whole figure sweep through an [`Evaluator`] as one batch: one
/// MFLOPS series per `(name, program-for-size)` entry over `sizes`.
///
/// All `series × sizes` points are submitted together so the engine can
/// evaluate them in parallel; results come back in submission order, so
/// the resulting [`Sweep`] (and its CSV) is identical whatever the
/// thread count.
///
/// # Panics
///
/// Panics if any point fails to execute, like [`counters_at`].
pub fn mflops_sweep(
    engine: &dyn Evaluator,
    kernel: &Kernel,
    sizes: &[i64],
    series: &[(&str, &dyn Fn(i64) -> Program)],
) -> Sweep {
    let mut jobs = Vec::with_capacity(series.len() * sizes.len());
    for (name, program_for) in series {
        for &n in sizes {
            let program = program_for(n);
            let params = Params::new().with(kernel.size, n);
            let label = format!("{name}/N={n}");
            jobs.push(EvalJob::new(program, params).with_label(label));
        }
    }
    let clock = engine.machine().clock_mhz;
    let results = engine.eval_batch(&jobs);
    let mut sweep = Sweep {
        sizes: sizes.to_vec(),
        series: Vec::with_capacity(series.len()),
    };
    for (si, (name, _)) in series.iter().enumerate() {
        let ys = (0..sizes.len())
            .map(|i| {
                let r = &results[si * sizes.len() + i];
                match r {
                    Ok(c) => c.mflops(clock),
                    Err(e) => panic!("{name} at N={}: {e}", sizes[i]),
                }
            })
            .collect();
        sweep.series.push((name.to_string(), ys));
    }
    sweep
}

/// Builds a Table-1-style Matrix Multiply version: optional tiling of
/// each loop (a size of 1 leaves the loop untiled, like the table's
/// `TI = 1` rows), a 4×4 register tile, and optional prefetching of
/// every array at distance 2.
///
/// # Panics
///
/// Panics on transformation failure (parameters in Table 1 are valid).
pub fn mm_table_row(ti: u64, tj: u64, tk: u64, prefetch: bool) -> Program {
    let kernel = Kernel::matmul();
    let p = &kernel.program;
    let (kv, jv, iv) = (
        p.var_by_name("K").expect("K"),
        p.var_by_name("J").expect("J"),
        p.var_by_name("I").expect("I"),
    );
    let mut tiles = Vec::new();
    let mut order = Vec::new();
    for (v, t) in [(kv, tk), (jv, tj), (iv, ti)] {
        if t > 1 {
            tiles.push(TileSpec { var: v, tile: t });
            order.push(LoopSel::Control(v));
        }
    }
    order.extend([LoopSel::Point(jv), LoopSel::Point(iv), LoopSel::Point(kv)]);
    let (mut program, _) = tile_nest(p, &tiles, &order).expect("tile");
    program = unroll_and_jam(&program, iv, 4).expect("uaj i");
    program = unroll_and_jam(&program, jv, 4).expect("uaj j");
    program = scalar_replace(&program, kv, Some(32)).expect("scalar");
    if prefetch {
        for name in ["A", "B"] {
            let a = program.array_by_name(name).expect("array");
            program = insert_prefetch(&program, kv, a, 2).expect("prefetch");
        }
    }
    program.name = format!("mm TI={ti} TJ={tj} TK={tk} pref={prefetch}");
    program
}

/// Builds a Table-1-style Jacobi version: optional tiling (size 1 =
/// untiled), a 2×2 register tile on the outer loops, rotating register
/// replacement along `I`, and optional prefetching at distance 2.
///
/// # Panics
///
/// Panics on transformation failure.
pub fn jacobi_table_row(ti: u64, tj: u64, tk: u64, prefetch: bool) -> Program {
    let kernel = Kernel::jacobi3d();
    let p = &kernel.program;
    let (kv, jv, iv) = (
        p.var_by_name("K").expect("K"),
        p.var_by_name("J").expect("J"),
        p.var_by_name("I").expect("I"),
    );
    let mut tiles = Vec::new();
    let mut order = Vec::new();
    for (v, t) in [(iv, ti), (jv, tj), (kv, tk)] {
        if t > 1 {
            tiles.push(TileSpec { var: v, tile: t });
            order.push(LoopSel::Control(v));
        }
    }
    order.extend([LoopSel::Point(kv), LoopSel::Point(jv), LoopSel::Point(iv)]);
    let (mut program, _) = tile_nest(p, &tiles, &order).expect("tile");
    program = unroll_and_jam(&program, kv, 2).expect("uaj k");
    program = unroll_and_jam(&program, jv, 2).expect("uaj j");
    program = scalar_replace(&program, iv, Some(32)).expect("scalar");
    if prefetch {
        for name in ["B", "A"] {
            let a = program.array_by_name(name).expect("array");
            program = insert_prefetch(&program, iv, a, 2).expect("prefetch");
        }
    }
    program.name = format!("jacobi TI={ti} TJ={tj} TK={tk} pref={prefetch}");
    program
}

/// Builds the paper's Figure 1(b)/(c)-style hand-parameterized copy
/// variant, used by the copy-vs-no-copy ablation.
///
/// # Panics
///
/// Panics on transformation failure.
pub fn mm_copy_variant(ti: u64, tj: u64, tk: u64, copy: bool) -> Program {
    let kernel = Kernel::matmul();
    let p = &kernel.program;
    let (kv, jv, iv) = (
        p.var_by_name("K").expect("K"),
        p.var_by_name("J").expect("J"),
        p.var_by_name("I").expect("I"),
    );
    let tiles = [
        TileSpec { var: kv, tile: tk },
        TileSpec { var: jv, tile: tj },
        TileSpec { var: iv, tile: ti },
    ];
    let order = [
        LoopSel::Control(kv),
        LoopSel::Control(jv),
        LoopSel::Control(iv),
        LoopSel::Point(jv),
        LoopSel::Point(iv),
        LoopSel::Point(kv),
    ];
    let (mut program, controls) = tile_nest(p, &tiles, &order).expect("tile");
    let (kk, jj, ii) = (controls[0], controls[1], controls[2]);
    program = unroll_and_jam(&program, iv, 4).expect("uaj i");
    program = unroll_and_jam(&program, jv, 4).expect("uaj j");
    program = scalar_replace(&program, kv, Some(32)).expect("scalar");
    if copy {
        let b = program.array_by_name("B").expect("B");
        program = copy_in(
            &program,
            &CopySpec {
                at: jj,
                array: b,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: tk,
                    },
                    CopyDim {
                        lo: AffineExpr::var(jj),
                        extent: tj,
                    },
                ],
                buffer_name: "P".into(),
            },
        )
        .expect("copy B");
        let a = program.array_by_name("A").expect("A");
        program = copy_in(
            &program,
            &CopySpec {
                at: ii,
                array: a,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(ii),
                        extent: ti,
                    },
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: tk,
                    },
                ],
                buffer_name: "Q".into(),
            },
        )
        .expect("copy A");
    }
    program.name = format!("mm_copyvar copy={copy}");
    program
}

/// A figure's data: one MFLOPS series per implementation over a size
/// sweep.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    /// Problem sizes (x-axis).
    pub sizes: Vec<i64>,
    /// `(series name, MFLOPS per size)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Sweep {
    /// Renders as CSV (`size,series1,series2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("N");
        for (name, _) in &self.series {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (i, n) in self.sizes.iter().enumerate() {
            out.push_str(&n.to_string());
            for (_, ys) in &self.series {
                out.push_str(&format!(",{:.1}", ys[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned text table with min/avg/max per series,
    /// like the prose summaries in §4.
    pub fn to_table(&self) -> String {
        let mut out = format!("{:>6}", "N");
        for (name, _) in &self.series {
            out.push_str(&format!("{name:>12}"));
        }
        out.push('\n');
        for (i, n) in self.sizes.iter().enumerate() {
            out.push_str(&format!("{n:>6}"));
            for (_, ys) in &self.series {
                out.push_str(&format!("{:>12.1}", ys[i]));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>6}", "stats"));
        for (_, ys) in &self.series {
            let (min, max) = ys
                .iter()
                .fold((f64::MAX, f64::MIN), |(a, b), &y| (a.min(y), b.max(y)));
            let avg = ys.iter().sum::<f64>() / ys.len() as f64;
            out.push_str(&format!("{:>12}", format!("{min:.0}/{avg:.0}/{max:.0}")));
        }
        out.push_str("  (min/avg/max)\n");
        out
    }

    /// The average of a named series.
    pub fn average(&self, name: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ys)| ys.iter().sum::<f64>() / ys.len() as f64)
    }
}

/// The problem sizes used for the Matrix Multiply figures on the scaled
/// machines: the paper's 100–3500 range maps to 24–320 at 1/32 scale
/// (capacity ∝ N² for 2-D data), with power-of-two sizes included to
/// expose conflict-miss pathologies.
pub fn mm_figure_sizes() -> Vec<i64> {
    vec![
        24, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 288, 320,
    ]
}

/// The problem sizes for the Jacobi figures: the paper's 40–270 maps to
/// 13–85 at 1/32 scale (capacity ∝ N³ for 3-D data).
pub fn jacobi_figure_sizes() -> Vec<i64> {
    vec![12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 56, 64, 72, 80]
}

/// The scale factor applied to both machines for the figure sweeps.
pub const FIGURE_SCALE: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use eco_exec::{interpret, ArrayLayout, Storage};

    fn assert_correct(program: &Program, kernel: &Kernel, n: i64) {
        let run = |p: &Program| {
            let pr = Params::new().with(kernel.size, n);
            let layout = ArrayLayout::new(p, &pr, &LayoutOptions::default()).expect("layout");
            let mut st = Storage::seeded(&layout, 5);
            interpret(p, &pr, &layout, &mut st).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            st
        };
        let want = run(&kernel.program);
        let got = run(program);
        for &o in &kernel.outputs {
            assert!(
                want.max_abs_diff(&got, o) < 1e-9,
                "{} wrong at N={n}",
                program.name
            );
        }
    }

    #[test]
    fn table1_mm_rows_are_correct() {
        let kernel = Kernel::matmul();
        for (ti, tj, tk, pf) in [(1, 32, 64, false), (8, 32, 32, false), (16, 64, 16, true)] {
            assert_correct(&mm_table_row(ti, tj, tk, pf), &kernel, 37);
        }
    }

    #[test]
    fn table1_jacobi_rows_are_correct() {
        let kernel = Kernel::jacobi3d();
        for (ti, tj, tk, pf) in [
            (1, 1, 1, false),
            (1, 1, 1, true),
            (1, 16, 8, false),
            (30, 16, 1, true),
        ] {
            assert_correct(&jacobi_table_row(ti, tj, tk, pf), &kernel, 21);
        }
    }

    #[test]
    fn copy_variant_is_correct_both_ways() {
        let kernel = Kernel::matmul();
        for copy in [false, true] {
            assert_correct(&mm_copy_variant(8, 8, 8, copy), &kernel, 29);
        }
    }

    #[test]
    fn sweep_rendering() {
        let s = Sweep {
            sizes: vec![10, 20],
            series: vec![("ECO".into(), vec![100.0, 200.0])],
        };
        let csv = s.to_csv();
        assert!(csv.starts_with("N,ECO\n10,100.0\n20,200.0\n"), "{csv}");
        let t = s.to_table();
        assert!(t.contains("100/150/200"), "{t}");
        assert_eq!(s.average("ECO"), Some(150.0));
        assert_eq!(s.average("missing"), None);
    }

    #[test]
    fn mflops_helper_is_positive() {
        let kernel = Kernel::matmul();
        let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
        let m = mflops_at(&kernel.program, &kernel, 16, &machine);
        assert!(m > 0.0);
    }

    #[test]
    fn batched_sweep_matches_serial_measurement() {
        use eco_exec::Engine;
        let kernel = Kernel::matmul();
        let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
        let engine = Engine::new(machine.clone());
        let sizes = [12i64, 16, 20];
        let ident = |_n: i64| kernel.program.clone();
        let sweep = mflops_sweep(&engine, &kernel, &sizes, &[("base", &ident)]);
        assert_eq!(sweep.series.len(), 1);
        for (i, &n) in sizes.iter().enumerate() {
            let want = mflops_at(&kernel.program, &kernel, n, &machine);
            let got = sweep.series[0].1[i];
            assert!((want - got).abs() < 1e-12, "N={n}: {want} vs {got}");
        }
        assert!(engine.stats().evaluated > 0);
        // the same batch again is served entirely from the memo cache
        let again = mflops_sweep(&engine, &kernel, &sizes, &[("base", &ident)]);
        assert_eq!(sweep.to_csv(), again.to_csv());
        assert!(engine.stats().cache_hits >= sizes.len() as u64);
    }
}
