//! The figure registry: one table describing every committed figure,
//! plus the serial runner and the tuning helpers the shard executor
//! shares with it.
//!
//! Before this table existed, the fig4a/fig4b/fig5a/fig5b dispatch was
//! repeated in every `repro` subcommand (run one, run all, check,
//! bench). Now [`FIGURES`] is the single source of truth: each entry
//! names the figure, its kernel family and its machine, and
//! [`FigureDef::spec`] turns it into the [`SweepSpec`] the sweep
//! planner ([`eco_core::SweepPlan`]) splits into shards. The serial
//! [`run`] here is the reference implementation the sharded path must
//! reproduce byte-for-byte (see `crate::sweep`).

use crate::cli::EngineFlags;
use crate::{jacobi_figure_sizes, mflops_sweep, mm_figure_sizes, Sweep, FIGURE_SCALE};
use eco_baselines::{atlas_mm_with, native, vendor_mm_with};
use eco_core::{
    run_manifest, Engine, EngineConfig, Evaluator, FamilySpec, Optimizer, SearchOptions, SweepSpec,
    TuneResponse, Tuned,
};
use eco_ir::Program;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::fs;

/// Search budget of the ATLAS-like baseline on the MM figures.
pub const ATLAS_SEARCH_N: i64 = 96;

/// Tuning size of the vendor-library stand-in on the MM figures.
pub const VENDOR_SEARCH_N: i64 = 120;

/// Which paper figure family a [`FigureDef`] belongs to: Figure 4
/// (Matrix Multiply) or Figure 5 (Jacobi).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Figure 4: MM against Native, the ATLAS-like search and the
    /// vendor stand-in.
    Mm,
    /// Figure 5: Jacobi against Native.
    Jacobi,
}

/// One committed figure: its output name (`results/<name>.csv`), kind
/// and target machine.
#[derive(Debug, Clone, Copy)]
pub struct FigureDef {
    /// Figure label ("fig4a", …) — names the output files.
    pub name: &'static str,
    /// MM or Jacobi.
    pub kind: FigureKind,
    /// The unscaled machine (scaled by [`FIGURE_SCALE`] in [`FigureDef::spec`]).
    machine: fn() -> MachineDesc,
}

/// Every committed figure, in `results/` order.
pub const FIGURES: &[FigureDef] = &[
    FigureDef {
        name: "fig4a",
        kind: FigureKind::Mm,
        machine: MachineDesc::sgi_r10000,
    },
    FigureDef {
        name: "fig4b",
        kind: FigureKind::Mm,
        machine: MachineDesc::ultrasparc_iie,
    },
    FigureDef {
        name: "fig5a",
        kind: FigureKind::Jacobi,
        machine: MachineDesc::sgi_r10000,
    },
    FigureDef {
        name: "fig5b",
        kind: FigureKind::Jacobi,
        machine: MachineDesc::ultrasparc_iie,
    },
];

/// Looks a figure up by name.
pub fn figure(name: &str) -> Option<&'static FigureDef> {
    FIGURES.iter().find(|f| f.name == name)
}

impl FigureDef {
    /// The full-size machine the figure targets (for banners; the
    /// sweeps run on the scaled version from [`FigureDef::spec`]).
    pub fn machine_full(&self) -> MachineDesc {
        (self.machine)()
    }

    /// The figure's sweep specification: kernel, scaled machine, ECO
    /// search budget, series families in column order, and sizes.
    pub fn spec(&self) -> SweepSpec {
        self.spec_with_scale(FIGURE_SCALE)
    }

    /// Like [`FigureDef::spec`], but at an explicit machine scale
    /// factor (1 = the full-size machine). The committed goldens are
    /// produced at [`FIGURE_SCALE`]; other scales exist for the nightly
    /// full-size sweep, whose outputs are never diffed against
    /// `results/`.
    pub fn spec_with_scale(&self, scale: usize) -> SweepSpec {
        let machine = if scale == 1 {
            self.machine_full()
        } else {
            self.machine_full().scaled(scale)
        };
        match self.kind {
            FigureKind::Mm => SweepSpec {
                figure: self.name.to_string(),
                kernel: Kernel::matmul(),
                machine,
                search_n: 120,
                families: vec![
                    FamilySpec::new("ECO", true),
                    FamilySpec::new("Native", false),
                    FamilySpec::new("ATLAS", true),
                    FamilySpec::new("Vendor", true),
                ],
                sizes: mm_figure_sizes(),
            },
            FigureKind::Jacobi => SweepSpec {
                figure: self.name.to_string(),
                kernel: Kernel::jacobi3d(),
                machine,
                search_n: 40,
                families: vec![
                    FamilySpec::new("ECO", true),
                    FamilySpec::new("Native", false),
                ],
                sizes: jacobi_figure_sizes(),
            },
        }
    }

    /// The figure's stdout banner.
    pub fn banner(&self) -> String {
        let machine = self.machine_full();
        match self.kind {
            FigureKind::Mm => format!(
                "== Figure 4 ({}): Matrix Multiply MFLOPS vs size on {} ==",
                self.name, machine.name
            ),
            FigureKind::Jacobi => format!(
                "== Figure 5 ({}): Jacobi MFLOPS vs size on {} ==",
                self.name, machine.name
            ),
        }
    }
}

/// Engine settings shared by every figure path: the CLI engine flags
/// (threads, backend, result store) and the optional JSONL telemetry
/// directories (one file per label).
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Threads, backend and result store (`--threads`/`--engine`/`--store`).
    pub flags: EngineFlags,
    /// `--trace DIR`: one evaluation trace file per label.
    pub trace_dir: Option<String>,
    /// `--events DIR`: one structured event stream per label.
    pub events_dir: Option<String>,
}

impl RunOpts {
    /// Builds the engine for one labelled command.
    ///
    /// # Panics
    ///
    /// Panics when the engine cannot be constructed (bad store or
    /// telemetry path).
    pub fn engine(&self, machine: &MachineDesc, label: &str) -> Engine {
        let mut cfg = self.flags.apply(EngineConfig::new());
        if let Some(dir) = &self.trace_dir {
            let _ = fs::create_dir_all(dir);
            cfg = cfg.trace(format!("{dir}/{label}.jsonl"));
        }
        if let Some(dir) = &self.events_dir {
            let _ = fs::create_dir_all(dir);
            cfg = cfg.events(format!("{dir}/{label}.events.jsonl"));
        }
        Engine::with_config(machine.clone(), cfg)
            .unwrap_or_else(|e| panic!("engine for {label}: {e}"))
    }

    /// The deterministic subset of the engine configuration recorded in
    /// run manifests (backend and memoization; never threads, paths or
    /// the store — a warm run must produce the same bytes as a cold
    /// one).
    pub fn manifest_config(&self) -> EngineConfig {
        EngineConfig::new().backend(self.flags.backend)
    }
}

/// Prints the engine's work totals in the format every `repro` command
/// uses.
pub fn print_engine_stats(engine: &Engine) {
    let s = engine.stats();
    println!(
        "   engine: {} points requested, {} evaluated, {} memo hits ({:.0}% hit rate), {} thread(s)",
        s.requested,
        s.evaluated,
        s.cache_hits,
        s.hit_rate() * 100.0,
        engine.threads()
    );
    if let Some(store) = engine.store_stats() {
        println!(
            "   store: {} hits, {} misses, {} puts",
            store.hits, store.misses, store.puts
        );
    }
}

/// The search options ECO uses for the figures (also recorded in the
/// run manifests, so keep this the single source of truth).
///
/// # Panics
///
/// Panics when the options fail validation (they are constants).
pub fn eco_search_opts(search_n: i64) -> SearchOptions {
    SearchOptions::builder()
        .search_n(search_n)
        .max_variants(2)
        // tune on a conflict-prone (power-of-two) size too (see
        // SearchOptions docs)
        .robustness_sizes(vec![(search_n as u64).next_power_of_two() as i64])
        // statically certify every candidate, also in release builds:
        // the golden manifests record the flag, and CI's golden-results
        // job doubles as the "certification never rejects a real
        // search point" check
        .certify(true)
        .build()
        .unwrap_or_else(|e| panic!("search options: {e}"))
}

/// ECO, tuned once per machine and reused across sizes (the paper: "our
/// implementation selected variant v2 with UI=UJ=4, TI=16, TJ=512,
/// TK=128 for all array sizes"). The search runs against the shared
/// `engine`, so revisited points are memo hits.
///
/// # Panics
///
/// Panics when the tuning search fails.
pub fn tune_eco(kernel: &Kernel, engine: &Engine, search_n: i64) -> Tuned {
    let mut opt = Optimizer::new(engine.machine().clone());
    opt.opts = eco_search_opts(search_n);
    opt.run_with(kernel, engine)
        .unwrap_or_else(|e| panic!("ECO tuning failed: {e}"))
}

/// The figure's run manifest: built right after tuning, while the
/// engine stats still describe the search alone (deterministic at any
/// thread count because batching is, and identical against a warm
/// store because store hits count as evaluated work).
pub fn figure_manifest(
    kernel: &Kernel,
    engine: &Engine,
    manifest_config: &EngineConfig,
    search_n: i64,
    tuned: &Tuned,
) -> String {
    let report = TuneResponse {
        tuned: tuned.clone(),
        engine: engine.stats(),
    };
    run_manifest(
        &kernel.name,
        engine.machine(),
        &eco_search_opts(search_n),
        manifest_config,
        &report,
    )
    .render()
}

/// A family's size-parameterized measurement program, as returned by
/// [`family_programs`].
pub type ProgramFor = Box<dyn Fn(i64) -> Program>;

/// Runs `family`'s search (if it has one) against `engine` and returns
/// its program-for-size closure, plus the [`Tuned`] result when the
/// family is ECO (the figure manifest is built from it).
///
/// The family-specific search budgets ([`ATLAS_SEARCH_N`],
/// [`VENDOR_SEARCH_N`]) live here so the serial runner and the shard
/// executor cannot disagree on them. With `verbose` the "picked" lines
/// of the serial figure output are printed.
///
/// # Errors
///
/// Returns a message for an unknown family name or a failed baseline
/// search.
pub fn family_programs(
    family: &str,
    kernel: &Kernel,
    engine: &Engine,
    search_n: i64,
    verbose: bool,
) -> Result<(ProgramFor, Option<Tuned>), String> {
    match family {
        "ECO" => {
            let eco = tune_eco(kernel, engine, search_n);
            if verbose {
                println!(
                    "   ECO picked {} with {:?}, prefetches {:?} ({} search points)",
                    eco.variant.name, eco.params, eco.prefetches, eco.stats.points
                );
            }
            let program = eco.program.clone();
            Ok((Box::new(move |_n| program.clone()), Some(eco)))
        }
        "Native" => {
            let nat = native(kernel, engine.machine()).map_err(|e| format!("native: {e}"))?;
            Ok((Box::new(move |n| nat.for_size(n).clone()), None))
        }
        "ATLAS" => {
            let atlas = atlas_mm_with(engine, ATLAS_SEARCH_N).map_err(|e| format!("atlas: {e}"))?;
            if verbose {
                println!(
                    "   ATLAS-like picked NB={} {}x{} ({} search points)",
                    atlas.nb, atlas.mu_nu.0, atlas.mu_nu.1, atlas.points
                );
            }
            Ok((Box::new(move |n| atlas.program.for_size(n).clone()), None))
        }
        "Vendor" => {
            let vendor =
                vendor_mm_with(engine, VENDOR_SEARCH_N).map_err(|e| format!("vendor: {e}"))?;
            Ok((Box::new(move |n| vendor.for_size(n).clone()), None))
        }
        other => Err(format!("unknown series family '{other}'")),
    }
}

/// Runs one figure serially: every family's search and the whole
/// measurement batch on one engine. This is the reference
/// implementation the sharded path (`crate::sweep`) must reproduce
/// byte-for-byte. Returns the sweep and the figure's run manifest.
///
/// # Panics
///
/// Panics when tuning, a baseline search or a measurement fails
/// (committed figures are expected to run cleanly).
pub fn run(def: &FigureDef, opts: &RunOpts) -> (Sweep, String) {
    let spec = def.spec();
    println!("{}", def.banner());
    let engine = opts.engine(&spec.machine, def.name);
    let mut manifest = String::new();
    let mut families: Vec<(String, ProgramFor)> = Vec::new();
    for family in &spec.families {
        let (programs, tuned) =
            family_programs(&family.name, &spec.kernel, &engine, spec.search_n, true)
                .unwrap_or_else(|e| panic!("{}: {e}", def.name));
        if let Some(tuned) = tuned {
            // Built right after the ECO search, while the engine stats
            // still describe the search alone.
            manifest = figure_manifest(
                &spec.kernel,
                &engine,
                &opts.manifest_config(),
                spec.search_n,
                &tuned,
            );
        }
        families.push((family.name.clone(), programs));
    }
    let series: Vec<(&str, &dyn Fn(i64) -> Program)> = families
        .iter()
        .map(|(name, f)| (name.as_str(), f.as_ref() as &dyn Fn(i64) -> Program))
        .collect();
    let sweep = mflops_sweep(&engine, &spec.kernel, &spec.sizes, &series);
    print!("{}", sweep.to_table());
    print_engine_stats(&engine);
    println!();
    (sweep, manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_committed_figures_in_order() {
        let names: Vec<&str> = FIGURES.iter().map(|f| f.name).collect();
        assert_eq!(names, ["fig4a", "fig4b", "fig5a", "fig5b"]);
        assert!(figure("fig5a").is_some());
        assert!(figure("fig6z").is_none());
    }

    #[test]
    fn specs_match_the_figure_definitions() {
        let mm = figure("fig4a").expect("fig4a").spec();
        assert_eq!(mm.kernel.name, Kernel::matmul().name);
        assert_eq!(mm.search_n, 120);
        let fams: Vec<&str> = mm.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fams, ["ECO", "Native", "ATLAS", "Vendor"]);
        assert_eq!(mm.sizes, mm_figure_sizes());
        assert_eq!(mm.machine, MachineDesc::sgi_r10000().scaled(FIGURE_SCALE));

        let jac = figure("fig5b").expect("fig5b").spec();
        assert_eq!(jac.kernel.name, Kernel::jacobi3d().name);
        assert_eq!(jac.search_n, 40);
        assert_eq!(jac.families.len(), 2);
        assert_eq!(
            jac.machine,
            MachineDesc::ultrasparc_iie().scaled(FIGURE_SCALE)
        );
    }

    #[test]
    fn banners_name_the_full_machines() {
        assert!(figure("fig4b")
            .expect("fig4b")
            .banner()
            .contains("Matrix Multiply"));
        assert!(figure("fig5a").expect("fig5a").banner().contains("Jacobi"));
    }

    #[test]
    fn family_programs_rejects_unknown_families() {
        let def = figure("fig5a").expect("fig5a");
        let spec = def.spec();
        let engine = RunOpts::default().engine(&spec.machine, "figures-test");
        // (the Ok side holds a closure, which has no Debug impl, so no
        // expect_err here)
        let err = match family_programs("BLAS9", &spec.kernel, &engine, 8, false) {
            Ok(_) => panic!("unknown family accepted"),
            Err(e) => e,
        };
        assert!(err.contains("BLAS9"));
    }
}
