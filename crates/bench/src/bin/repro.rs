//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! repro table1       Table 1: counter variation across parameter sets
//! repro table2       Table 2: machine descriptions
//! repro table3       Table 3: compiler flags (substitution note)
//! repro table4       Table 4: Matrix Multiply variants on the SGI
//! repro fig4a        Figure 4(a): MM MFLOPS vs size, SGI (scaled)
//! repro fig4b        Figure 4(b): MM MFLOPS vs size, UltraSparc (scaled)
//! repro fig5a        Figure 5(a): Jacobi MFLOPS vs size, SGI (scaled)
//! repro fig5b        Figure 5(b): Jacobi MFLOPS vs size, Sun (scaled)
//! repro searchcost   §4.3: search points, ECO vs the ATLAS-like search
//! repro modelvsearch Ablation: model-only parameters vs guided search
//! repro prefetch     Ablation: prefetch on/off and distance sweep
//! repro copyablation Ablation: copy vs no-copy at pathological sizes
//! repro padding      Ablation: array padding stabilizes Jacobi (§4.2)
//! repro strategies   Ablation: guided vs grid vs random search
//! repro attribution  Analysis: per-array miss attribution (mm1 vs mm4)
//! repro modelrank    Analysis: static-model ranking vs measured ranking
//! repro smoke        Timing smoke test: prints evaluated-points/sec
//! repro bench        Benchmark trajectory: smoke throughput plus wall
//!                    time, points/sec and manifest fingerprint per
//!                    figure, as JSON (`--bench-out FILE`); compare two
//!                    trajectories with `eco report --compare`
//! repro plan FIG     Print the figure's deterministic shard plan
//!                    (`--plan-out FILE` writes it instead)
//! repro shard --shard FILE
//!                    Execute one shard manifest (the worker entry
//!                    point `repro sweep` spawns); with `--store DIR`
//!                    the completion record lands in the store,
//!                    otherwise the result document goes to stdout
//! repro sweep FIG    Plan, execute and gather one figure as a sharded
//!                    sweep: a local worker pool (`--workers N`) or an
//!                    `eco serve` daemon (`--remote SOCKET`) against a
//!                    shared result store; a killed sweep resumes on
//!                    re-run, skipping completed shards
//! repro all          Everything above the sweep commands, also written
//!                    to results/
//! repro check        Golden-results gate: regenerate every committed
//!                    figure CSV and run manifest in memory and diff
//!                    them byte-for-byte against results/; also
//!                    validates the event streams the regeneration just
//!                    emitted with the emitter's invariant checker;
//!                    exits nonzero on any drift. With `--workers N`
//!                    (N > 1) the figures regenerate through the
//!                    sharded sweep path instead — same bytes required
//! ```
//!
//! options (after the command):
//!   --threads N      evaluation threads (0 = auto, the default)
//!   --engine E       plan (compiled, default) or reference (tree-walker)
//!   --store DIR      persistent result store: a second run against the
//!                    same DIR warm-starts from the first one's results
//!                    (same bytes out, far fewer simulations)
//!   --trace DIR      write a JSONL evaluation trace per command to DIR
//!   --events DIR     write a structured event stream per command to DIR
//!                    (sweep workers always write theirs under the
//!                    sweep directory's events/)
//!   --workers N      figures/all/check/sweep: shard the figure across
//!                    N parallel worker processes (1 = serial)
//!   --shard-sizes K  measure sizes per shard in the plan (default 4)
//!   --sweep-dir DIR  root for sweep artifacts (default .eco-sweep);
//!                    each figure works in DIR/FIG
//!   --remote SOCKET  sweep: execute shards on an eco serve daemon
//!                    instead of spawning local workers
//!   --plan-out FILE  plan only: write the plan JSON to FILE
//!   --sweep FIG      bench only: also record sweep wall time at
//!                    --workers 1 vs N (default 4) in the trajectory
//!   --figure-scale K sweep only: machine scale factor (default 32, the
//!                    golden scale; 1 = the full-size machine — the
//!                    nightly CI budget run, never diffed vs results/)
//!   --json FILE      smoke only: also write the throughput as JSON
//!   --bench-out FILE bench only: write the trajectory JSON to FILE
//!   --smoke-only     bench only: skip the per-figure measurements
//!
//! All measurements flow through one [`eco_core::Engine`] per command:
//! batches are evaluated in parallel, repeated points are served from
//! the memo cache, and results come back in submission order, so every
//! table, CSV and manifest is byte-identical whatever `--threads` says
//! — the property `repro check` (and the CI golden-results job) gates.
//! The sharded path extends the same property across process
//! boundaries: one fresh engine per shard plus the shared store
//! reproduces the serial bytes, which `repro check --workers N` gates.
//!
//! CSV and manifest output for each figure is written to `results/`
//! when it exists (created by `repro all`).

use eco_analysis::NestInfo;
use eco_baselines::{atlas_mm_with, model_only};
use eco_bench::figures::{self, FigureDef, RunOpts};
use eco_bench::sweep::{run_sweep, SweepConfig};
use eco_bench::{
    counters_at_with, jacobi_table_row, mflops_at_with, mm_copy_variant, mm_table_row, Sweep,
    FIGURE_SCALE,
};
use eco_core::events::Json;
use eco_core::{
    derive_variants, describe_variant, EngineConfig, Evaluator, Optimizer, SearchOptions, Shard,
};
use eco_machine::MachineDesc;
use eco_store::ResultStore;
use std::fs;
use std::path::PathBuf;

use eco_bench::cli::EngineFlags;
use eco_kernels::Kernel;

/// Everything the command line can say: the engine/telemetry options
/// shared with the library runners ([`RunOpts`]), plus the
/// command-specific flags.
struct ReproOpts {
    run: RunOpts,
    json: Option<String>,
    bench_out: Option<String>,
    smoke_only: bool,
    workers: usize,
    shard: Option<String>,
    sweep_dir: String,
    plan_out: Option<String>,
    shard_sizes: usize,
    remote: Option<String>,
    sweep_fig: Option<String>,
    figure_scale: usize,
    positional: Vec<String>,
}

impl ReproOpts {
    /// Whether figure commands should go through the sharded sweep
    /// path instead of the serial runner.
    fn sharded(&self) -> bool {
        self.workers > 1 || self.remote.is_some()
    }

    /// The sweep working directory for one figure.
    fn figure_sweep_dir(&self, name: &str) -> PathBuf {
        PathBuf::from(&self.sweep_dir).join(name)
    }

    /// The shared store a figure's sweep runs against: `--store` if
    /// given, otherwise one inside the figure's sweep directory.
    fn figure_store(&self, sweep_dir: &std::path::Path) -> PathBuf {
        match &self.run.flags.store {
            Some(dir) => PathBuf::from(dir),
            None => sweep_dir.join("store"),
        }
    }

    fn sweep_config(&self, sweep_dir: PathBuf, workers: usize, verbose: bool) -> SweepConfig {
        let store = self.figure_store(&sweep_dir);
        SweepConfig {
            opts: self.run.clone(),
            workers,
            sizes_per_shard: self.shard_sizes,
            store,
            sweep_dir,
            worker_exe: std::env::current_exe()
                .unwrap_or_else(|e| panic!("cannot locate the repro binary: {e}")),
            remote: self.remote.as_ref().map(PathBuf::from),
            verbose,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<ReproOpts, String> {
    let mut flags = EngineFlags::new();
    let mut run = RunOpts::default();
    let mut json = None;
    let mut bench_out = None;
    let mut smoke_only = false;
    let mut workers = 1usize;
    let mut shard = None;
    let mut sweep_dir = ".eco-sweep".to_string();
    let mut plan_out = None;
    let mut shard_sizes = 4usize;
    let mut remote = None;
    let mut sweep_fig = None;
    let mut figure_scale = FIGURE_SCALE;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                run.trace_dir = Some(it.next().ok_or("--trace needs a directory")?.clone());
            }
            "--events" => {
                run.events_dir = Some(it.next().ok_or("--events needs a directory")?.clone());
            }
            "--json" => {
                json = Some(it.next().ok_or("--json needs a file")?.clone());
            }
            "--bench-out" => {
                bench_out = Some(it.next().ok_or("--bench-out needs a file")?.clone());
            }
            "--smoke-only" => smoke_only = true,
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a count")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?;
            }
            "--shard" => {
                shard = Some(it.next().ok_or("--shard needs a file")?.clone());
            }
            "--sweep-dir" => {
                sweep_dir = it.next().ok_or("--sweep-dir needs a directory")?.clone();
            }
            "--plan-out" => {
                plan_out = Some(it.next().ok_or("--plan-out needs a file")?.clone());
            }
            "--shard-sizes" => {
                shard_sizes = it
                    .next()
                    .ok_or("--shard-sizes needs a count")?
                    .parse()
                    .map_err(|_| "--shard-sizes needs a number".to_string())?;
            }
            "--remote" => {
                remote = Some(it.next().ok_or("--remote needs a socket path")?.clone());
            }
            "--sweep" => {
                sweep_fig = Some(it.next().ok_or("--sweep needs a figure name")?.clone());
            }
            "--figure-scale" => {
                figure_scale = it
                    .next()
                    .ok_or("--figure-scale needs a factor")?
                    .parse()
                    .map_err(|_| "--figure-scale needs a number".to_string())?;
                if figure_scale == 0 {
                    return Err("--figure-scale must be positive".to_string());
                }
            }
            other => {
                if !flags.accept(other, &mut it)? {
                    if other.starts_with('-') {
                        return Err(format!("unknown option {other}"));
                    }
                    positional.push(other.to_string());
                }
            }
        }
    }
    run.flags = flags;
    Ok(ReproOpts {
        run,
        json,
        bench_out,
        smoke_only,
        workers,
        shard,
        sweep_dir,
        plan_out,
        shard_sizes,
        remote,
        sweep_fig,
        figure_scale,
        positional,
    })
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => ("all".to_string(), Vec::new()),
    };
    let opts = match parse_opts(&rest) {
        Ok(o) => o,
        Err(e) => die(&e),
    };
    match cmd.as_str() {
        "table1" => table1(&opts.run),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "searchcost" => searchcost(&opts.run),
        "modelvsearch" => modelvsearch(&opts.run),
        "prefetch" => prefetch_ablation(&opts.run),
        "copyablation" => copy_ablation(&opts.run),
        "padding" => padding_ablation(&opts.run),
        "strategies" => strategies_ablation(&opts.run),
        "attribution" => attribution(),
        "modelrank" => model_rank(&opts.run),
        "smoke" | "--smoke" => smoke(&opts),
        "bench" => bench(&opts),
        "check" => check(&opts),
        "plan" => plan_cmd(&opts),
        "shard" => shard_cmd(&opts),
        "sweep" => sweep_cmd(&opts),
        "all" => {
            let _ = fs::create_dir_all("results");
            table2();
            table3();
            table4();
            table1(&opts.run);
            for def in figures::FIGURES {
                save(def.name, figure_output(def, &opts));
            }
            searchcost(&opts.run);
            modelvsearch(&opts.run);
            prefetch_ablation(&opts.run);
            copy_ablation(&opts.run);
            padding_ablation(&opts.run);
            strategies_ablation(&opts.run);
            attribution();
            model_rank(&opts.run);
        }
        name => match figures::figure(name) {
            Some(def) => drop(figure_output(def, &opts)),
            None => die(&format!(
                "unknown command {name}; see the module docs for the list"
            )),
        },
    }
}

fn save(name: &str, out: (Sweep, String)) {
    if fs::metadata("results").is_ok() {
        let _ = fs::write(format!("results/{name}.csv"), out.0.to_csv());
        let _ = fs::write(format!("results/{name}.manifest.json"), out.1);
    }
}

// ---------------------------------------------------------------- sweeps

/// One figure's outputs, by whichever path the options select: the
/// serial runner, or the sharded sweep (`--workers`/`--remote`).
fn figure_output(def: &'static FigureDef, opts: &ReproOpts) -> (Sweep, String) {
    if !opts.sharded() {
        return figures::run(def, &opts.run);
    }
    println!("{}", def.banner());
    let config = opts.sweep_config(opts.figure_sweep_dir(def.name), opts.workers, true);
    let outcome = match run_sweep(&def.spec(), &config) {
        Ok(o) => o,
        Err(e) => die(&e),
    };
    print!("{}", outcome.sweep.to_table());
    println!(
        "   sweep: {} shard(s) planned, {} executed, {} skipped in {:.1}s ({} worker(s))",
        outcome.planned, outcome.executed, outcome.skipped, outcome.wall_secs, config.workers
    );
    println!();
    (outcome.sweep, outcome.manifest)
}

/// `repro plan FIG`: print (or write) the figure's shard plan.
fn plan_cmd(opts: &ReproOpts) {
    let name = opts
        .positional
        .first()
        .unwrap_or_else(|| die("plan: which figure? (repro plan fig4a)"));
    let def = figures::figure(name).unwrap_or_else(|| die(&format!("plan: unknown figure {name}")));
    let plan = match eco_core::SweepPlan::plan(&def.spec(), opts.shard_sizes) {
        Ok(p) => p,
        Err(e) => die(&e),
    };
    let text = plan.to_json().render();
    match &opts.plan_out {
        Some(path) => {
            fs::write(path, &text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!(
                "wrote plan for {name} to {path} ({} shards, fingerprint {:#018x})",
                plan.shards.len(),
                plan.fingerprint()
            );
        }
        None => print!("{text}"),
    }
}

/// `repro shard --shard FILE`: the worker entry point. Executes one
/// shard manifest on a fresh engine; with `--store` the result becomes
/// the shard's completion record, otherwise it goes to stdout.
fn shard_cmd(opts: &ReproOpts) {
    let path = opts
        .shard
        .as_ref()
        .unwrap_or_else(|| die("shard: --shard FILE required"));
    let text =
        fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let shard = Shard::from_json(&doc).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let fp = shard.fingerprint();
    let label = format!("{fp:016x}");
    let mut cfg = opts.run.flags.apply(EngineConfig::new());
    if let Some(dir) = &opts.run.trace_dir {
        let _ = fs::create_dir_all(dir);
        cfg = cfg.trace(format!("{dir}/{label}.jsonl"));
    }
    if let Some(dir) = &opts.run.events_dir {
        let _ = fs::create_dir_all(dir);
        cfg = cfg.events(format!("{dir}/{label}.events.jsonl"));
    }
    let result = eco_bench::sweep::execute_shard(&shard, cfg)
        .unwrap_or_else(|e| die(&format!("shard {label}: {e}")));
    match &opts.run.flags.store {
        Some(dir) => {
            let store =
                ResultStore::open(dir).unwrap_or_else(|e| die(&format!("store {dir}: {e}")));
            store
                .mark_shard_complete(fp, &result)
                .unwrap_or_else(|e| die(&format!("cannot record completion: {e}")));
            println!(
                "shard {fp:#018x} complete ({} {}/{})",
                shard.figure,
                shard.family,
                shard.kind.as_str()
            );
        }
        None => print!("{}", result.render()),
    }
}

/// `repro sweep FIG`: the full plan → execute → gather pipeline for one
/// figure, writing the gathered CSV and manifest under the sweep
/// directory.
fn sweep_cmd(opts: &ReproOpts) {
    let name = opts
        .positional
        .first()
        .unwrap_or_else(|| die("sweep: which figure? (repro sweep fig4a --workers 4)"));
    let def =
        figures::figure(name).unwrap_or_else(|| die(&format!("sweep: unknown figure {name}")));
    println!("{}", def.banner());
    if opts.figure_scale != FIGURE_SCALE {
        println!(
            "   (machine scale 1/{} — outputs will NOT match the committed goldens)",
            opts.figure_scale
        );
    }
    let sweep_dir = opts.figure_sweep_dir(def.name);
    let config = opts.sweep_config(sweep_dir.clone(), opts.workers, true);
    let outcome = match run_sweep(&def.spec_with_scale(opts.figure_scale), &config) {
        Ok(o) => o,
        Err(e) => die(&e),
    };
    print!("{}", outcome.sweep.to_table());
    println!(
        "   sweep: {} shard(s) planned, {} executed, {} skipped in {:.1}s ({} worker(s))",
        outcome.planned, outcome.executed, outcome.skipped, outcome.wall_secs, config.workers
    );
    let csv = sweep_dir.join(format!("{}.csv", def.name));
    let manifest = sweep_dir.join(format!("{}.manifest.json", def.name));
    fs::write(&csv, outcome.sweep.to_csv())
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", csv.display())));
    fs::write(&manifest, &outcome.manifest)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", manifest.display())));
    println!("   wrote {} and {}", csv.display(), manifest.display());
}

/// Regenerates every committed figure CSV and run manifest in memory
/// and diffs them byte-for-byte against `results/`; exits nonzero on
/// any drift or missing file. This is the golden-results gate CI runs.
///
/// The regeneration always emits event streams, and every stream is
/// then run through [`eco_events::check_stream`], so the gate also
/// covers the emitter's structural invariants, not just the
/// CSV/manifest bytes. Serially that means one stream per figure (to
/// `--events DIR`, or a scratch directory); with `--workers N` the
/// figures regenerate through the sharded sweep path in scratch sweep
/// directories, and the orchestrator stream plus every worker stream
/// is validated instead.
fn check(opts: &ReproOpts) {
    if opts.sharded() {
        return check_sharded(opts);
    }
    let scratch_events = opts.run.events_dir.is_none();
    let events_dir = opts.run.events_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("eco-check-events-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let run = RunOpts {
        flags: opts.run.flags.clone(),
        trace_dir: opts.run.trace_dir.clone(),
        events_dir: Some(events_dir.clone()),
    };
    println!("== check: regenerated outputs vs committed results/ ==");
    let mut drift = 0usize;
    for def in figures::FIGURES {
        let (sweep, manifest) = figures::run(def, &run);
        drift += diff_against_golden(def.name, &sweep, &manifest);
    }
    for def in figures::FIGURES {
        let path = format!("{events_dir}/{}.events.jsonl", def.name);
        drift += validate_stream(&path);
    }
    if scratch_events {
        let _ = fs::remove_dir_all(&events_dir);
    }
    finish_check(drift);
}

/// The `--workers N` variant of [`check`]: every figure regenerates
/// through the sharded sweep path in a scratch directory (cold store —
/// resume must not leak into the gate) and must still reproduce the
/// committed bytes.
fn check_sharded(opts: &ReproOpts) {
    let root = std::env::temp_dir().join(format!("eco-check-sweep-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    println!(
        "== check: sharded regeneration ({} workers) vs committed results/ ==",
        opts.workers.max(1)
    );
    let mut drift = 0usize;
    for def in figures::FIGURES {
        let sweep_dir = root.join(def.name);
        let mut config = opts.sweep_config(sweep_dir.clone(), opts.workers, false);
        config.store = sweep_dir.join("store");
        match run_sweep(&def.spec(), &config) {
            Ok(outcome) => {
                drift += diff_against_golden(def.name, &outcome.sweep, &outcome.manifest);
            }
            Err(e) => {
                println!("   FAILED  {} ({e})", def.name);
                drift += 1;
                continue;
            }
        }
        drift += validate_stream(&sweep_dir.join("sweep.events.jsonl").to_string_lossy());
        let events = sweep_dir.join("events");
        let mut worker_streams = Vec::new();
        if let Ok(entries) = fs::read_dir(&events) {
            for entry in entries.flatten() {
                worker_streams.push(entry.path());
            }
        }
        worker_streams.sort();
        if worker_streams.is_empty() {
            println!("   MISSING {} (no worker event streams)", events.display());
            drift += 1;
        }
        for path in worker_streams {
            drift += validate_stream(&path.to_string_lossy());
        }
    }
    let _ = fs::remove_dir_all(&root);
    finish_check(drift);
}

/// Diffs one figure's regenerated CSV and manifest against the
/// committed `results/` files, printing one line per file; returns the
/// number of drifting files.
fn diff_against_golden(name: &str, sweep: &Sweep, manifest: &str) -> usize {
    let mut drift = 0usize;
    let files = [
        (format!("results/{name}.csv"), sweep.to_csv()),
        (
            format!("results/{name}.manifest.json"),
            manifest.to_string(),
        ),
    ];
    for (path, fresh) in files {
        match fs::read_to_string(&path) {
            Ok(committed) if committed == fresh => println!("   OK      {path}"),
            Ok(_) => {
                println!("   DRIFT   {path}");
                drift += 1;
            }
            Err(e) => {
                println!("   MISSING {path} ({e})");
                drift += 1;
            }
        }
    }
    drift
}

/// Runs one event stream file through the emitter's invariant checker;
/// returns 1 on failure.
fn validate_stream(path: &str) -> usize {
    match fs::read_to_string(path) {
        Ok(text) => match eco_core::events::check_stream(&text) {
            Ok(summary) => {
                println!(
                    "   OK      {path} ({} records, stream invariants hold)",
                    summary.records
                );
                0
            }
            Err(e) => {
                println!("   INVALID {path} ({e})");
                1
            }
        },
        Err(e) => {
            println!("   MISSING {path} ({e})");
            1
        }
    }
}

fn finish_check(drift: usize) {
    if drift > 0 {
        eprintln!("repro check: {drift} file(s) drifted from the committed golden results");
        std::process::exit(1);
    }
    println!("   all golden results reproduced byte-for-byte");
}

// ---------------------------------------------------------------- T1

fn table1(run: &RunOpts) {
    println!("== Table 1: performance variation with optimization parameters ==");
    println!("   (1/32-scale SGI R10000 model; MM at N=200, Jacobi at N=48;");
    println!("    tile sizes scaled with the caches, see DESIGN.md)");
    println!(
        "{:6} {:>4} {:>4} {:>4} {:>5} {:>14} {:>12} {:>12} {:>12} {:>16}",
        "ver", "TI", "TJ", "TK", "Pref", "Loads", "L1 misses", "L2 misses", "TLB misses", "Cycles"
    );
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "table1");
    let mm = Kernel::matmul();
    let rows: [(u64, u64, u64, bool); 5] = [
        (1, 4, 32, false),  // mm1: L1-focused, lowest L1 misses
        (2, 64, 64, false), // mm2: the TLB blow-up row
        (8, 32, 16, false), // mm3: all loops tiled, lowest L2 misses
        (4, 16, 16, false), // mm4: the balanced row
        (4, 16, 16, true),  // mm5: balanced + prefetch: lowest cycles
    ];
    for (i, &(ti, tj, tk, pf)) in rows.iter().enumerate() {
        let p = mm_table_row(ti, tj, tk, pf);
        let c = counters_at_with(&engine, &p, &mm, 200);
        println!(
            "mm{:<3} {:>5} {:>4} {:>4} {:>5} {:>14} {:>12} {:>12} {:>12} {:>16}",
            i + 1,
            ti,
            tj,
            tk,
            if pf { "yes" } else { "no" },
            c.loads_incl_prefetch(),
            c.cache_misses[0],
            c.cache_misses[1],
            c.tlb_misses,
            c.cycles()
        );
    }
    let jac = Kernel::jacobi3d();
    let jrows: [(u64, u64, u64, bool); 6] = [
        (1, 1, 1, false),  // j1: untiled
        (1, 1, 1, true),   // j2: untiled + prefetch (~20% gain)
        (1, 4, 4, false),  // j3: J and K tiled for L1
        (1, 4, 4, true),   // j4: j3 + prefetch
        (24, 4, 1, false), // j5: I and J tiled
        (24, 4, 1, true),  // j6: j5 + prefetch
    ];
    for (i, &(ti, tj, tk, pf)) in jrows.iter().enumerate() {
        let p = jacobi_table_row(ti, tj, tk, pf);
        let c = counters_at_with(&engine, &p, &jac, 48);
        println!(
            "j{:<4} {:>5} {:>4} {:>4} {:>5} {:>14} {:>12} {:>12} {:>12} {:>16}",
            i + 1,
            ti,
            tj,
            tk,
            if pf { "yes" } else { "no" },
            c.loads_incl_prefetch(),
            c.cache_misses[0],
            c.cache_misses[1],
            c.tlb_misses,
            c.cycles()
        );
    }
    println!();
}

// ---------------------------------------------------------------- T2

fn table2() {
    println!("== Table 2: machine descriptions ==");
    for m in [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()] {
        println!("{m}");
        println!("  scaled for figures: {}", m.scaled(FIGURE_SCALE));
    }
    println!();
}

fn table3() {
    println!("== Table 3: compilers, optimization flags and BLAS versions ==");
    println!("Not applicable in this reproduction: there are no native");
    println!("compilers or vendor libraries. The stand-ins are:");
    println!("  ECO     -> eco-core two-phase optimizer (this repo)");
    println!("  Native  -> eco-baselines::native (model-driven, no copy/prefetch)");
    println!("  ATLAS   -> eco-baselines::atlas_mm (pure empirical, own code shape)");
    println!("  Vendor  -> eco-baselines::vendor_mm (hand-tuned fixed parameters)");
    println!("The paper's roundoff=3 reassociation licence corresponds to the");
    println!("is_reduction escape in eco-analysis::dependence.");
    println!();
}

// ---------------------------------------------------------------- T4

fn table4() {
    println!("== Table 4: Matrix Multiply variants on the SGI ==");
    let k = Kernel::matmul();
    let machine = MachineDesc::sgi_r10000();
    let nest = NestInfo::from_program(&k.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &k.program);
    for v in &variants {
        println!("{}:", v.name);
        print!("{}", describe_variant(v, &nest, &k.program));
    }
    println!();
}

// ---------------------------------------------------------------- §4.3

fn searchcost(run: &RunOpts) {
    println!("== §4.3: cost of search (points executed) ==");
    for (machine_full, tag) in [
        (MachineDesc::sgi_r10000(), "searchcost-sgi"),
        (MachineDesc::ultrasparc_iie(), "searchcost-sun"),
    ] {
        let machine = machine_full.scaled(FIGURE_SCALE);
        let engine = run.engine(&machine, tag);
        let mm = figures::tune_eco(&Kernel::matmul(), &engine, 96);
        let jc = figures::tune_eco(&Kernel::jacobi3d(), &engine, 36);
        let atlas = atlas_mm_with(&engine, 96).expect("atlas");
        println!("{}:", machine_full.name);
        println!(
            "  ECO   MM: {:>4} points ({} variants derived, {} searched)",
            mm.stats.points, mm.stats.variants_derived, mm.stats.variants_searched
        );
        println!("  ECO   Jacobi: {:>4} points", jc.stats.points);
        println!(
            "  ATLAS MM: {:>4} points  (ECO is {:.1}x smaller)",
            atlas.points,
            atlas.points as f64 / mm.stats.points as f64
        );
        figures::print_engine_stats(&engine);
    }
    println!();
}

// ---------------------------------------------------------------- ablations

fn modelvsearch(run: &RunOpts) {
    println!("== Ablation: model-only parameters vs guided empirical search ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "modelvsearch");
    let kernel = Kernel::matmul();
    let eco = figures::tune_eco(&kernel, &engine, 120);
    let model = model_only(&kernel, &machine).expect("model");
    let sizes = [64, 128, 192, 256];
    println!("{:>6} {:>12} {:>12}", "N", "model-only", "ECO search");
    for n in sizes {
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            mflops_at_with(&engine, model.for_size(n), &kernel, n),
            mflops_at_with(&engine, &eco.program, &kernel, n)
        );
    }
    println!();
}

fn prefetch_ablation(run: &RunOpts) {
    println!("== Ablation: prefetch on/off and distance sensitivity ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "prefetch");
    let jac = Kernel::jacobi3d();
    println!("Jacobi N=48 (1/32-scale SGI), j3/j4-style (TJ=4, TK=4):");
    let base = jacobi_table_row(1, 4, 4, false);
    let cb = counters_at_with(&engine, &base, &jac, 48);
    println!("  no prefetch: {:>12} cycles", cb.cycles());
    let with = jacobi_table_row(1, 4, 4, true);
    let cw = counters_at_with(&engine, &with, &jac, 48);
    println!(
        "  prefetch d=2: {:>11} cycles ({:+.1}%)",
        cw.cycles(),
        (cw.cycles() as f64 / cb.cycles() as f64 - 1.0) * 100.0
    );
    let mm = Kernel::matmul();
    println!("MM N=200 (1/32-scale SGI), mm4/mm5-style (TI=4, TJ=16, TK=16):");
    let base = mm_table_row(4, 16, 16, false);
    let cb = counters_at_with(&engine, &base, &mm, 200);
    println!("  no prefetch: {:>12} cycles", cb.cycles());
    let with = mm_table_row(4, 16, 16, true);
    let cw = counters_at_with(&engine, &with, &mm, 200);
    println!(
        "  prefetch d=2: {:>11} cycles ({:+.1}%)",
        cw.cycles(),
        (cw.cycles() as f64 / cb.cycles() as f64 - 1.0) * 100.0
    );
    println!();
}

fn copy_ablation(run: &RunOpts) {
    println!("== Ablation: copy optimization at pathological sizes ==");
    println!("   (scaled SGI; power-of-two N puts columns in the same sets)");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "copyablation");
    let kernel = Kernel::matmul();
    println!("{:>6} {:>12} {:>12}", "N", "no copy", "copy");
    for n in [96, 128, 160, 256] {
        let nc = mm_copy_variant(8, 16, 16, false);
        let wc = mm_copy_variant(8, 16, 16, true);
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            mflops_at_with(&engine, &nc, &kernel, n),
            mflops_at_with(&engine, &wc, &kernel, n)
        );
    }
    println!();
}

fn padding_ablation(run: &RunOpts) {
    use eco_transform::pad_all_arrays;
    println!("== Ablation: array padding stabilizes Jacobi (§4.2) ==");
    println!("   (the paper: \"manual experiments show that array padding");
    println!("    can be used to stabilize this behavior\")");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "padding");
    let kernel = Kernel::jacobi3d();
    let base = jacobi_table_row(1, 4, 4, true);
    let padded = pad_all_arrays(&base, 3).expect("pad");
    println!("{:>6} {:>12} {:>12}", "N", "unpadded", "padded");
    for n in [24i64, 32, 40, 48, 64, 72] {
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            mflops_at_with(&engine, &base, &kernel, n),
            mflops_at_with(&engine, &padded, &kernel, n)
        );
    }
    println!();
}

fn strategies_ablation(run: &RunOpts) {
    use eco_core::SearchStrategy;
    println!("== Ablation: guided search vs heuristic alternatives ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "strategies");
    let kernel = Kernel::matmul();
    let eval_n = 96i64;
    println!(
        "{:>10} {:>8} {:>12}  (MM, measured at N={eval_n})",
        "strategy", "points", "MFLOPS"
    );
    for (name, strategy) in [
        ("guided", SearchStrategy::Guided),
        ("grid", SearchStrategy::Grid { max_points: 100 }),
        (
            "random",
            SearchStrategy::Random {
                points: 40,
                seed: 42,
            },
        ),
    ] {
        let opts = SearchOptions::builder()
            .search_n(120)
            .max_variants(2)
            .robustness_sizes(vec![128])
            .strategy(strategy)
            .build()
            .expect("search options");
        let mut opt = Optimizer::new(machine.clone());
        opt.opts = opts;
        let tuned = opt.run_with(&kernel, &engine).expect("optimize");
        println!(
            "{name:>10} {:>8} {:>12.1}",
            tuned.stats.points,
            mflops_at_with(&engine, &tuned.program, &kernel, eval_n)
        );
    }
    figures::print_engine_stats(&engine);
    println!();
}

fn attribution() {
    use eco_exec::{measure_attributed, LayoutOptions, Params};
    println!("== Analysis: per-array miss attribution (Table 1 rows) ==");
    println!("   (mm1 exploits B's reuse; the balanced mm4 spreads misses)");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let kernel = Kernel::matmul();
    for (label, ti, tj, tk) in [("mm1", 1u64, 4u64, 32u64), ("mm4", 4, 16, 16)] {
        let p = mm_table_row(ti, tj, tk, false);
        let params = Params::new().with(kernel.size, 200);
        let c =
            measure_attributed(&p, &params, &machine, &LayoutOptions::default()).expect("measure");
        println!("{label} (TI={ti} TJ={tj} TK={tk}):");
        println!(
            "  {:>6} {:>12} {:>12} {:>12} {:>10}",
            "array", "accesses", "L1 misses", "L2 misses", "TLB"
        );
        for (i, t) in c.per_tag.iter().enumerate() {
            if t.accesses == 0 {
                continue;
            }
            println!(
                "  {:>6} {:>12} {:>12} {:>12} {:>10}",
                p.array(eco_ir::ArrayId(i as u32)).name,
                t.accesses,
                t.misses[0],
                t.misses[1],
                t.tlb_misses
            );
        }
    }
    println!();
}

/// Offline-safe throughput check for CI: simulates a fixed mix of
/// unique MM and Jacobi points (no memo hits) and prints
/// evaluated-points/sec. No threshold — the number is informational, so
/// slow runners never fail the build; compare `--engine plan` against
/// `--engine reference` to see the lowering speedup in the log.
/// What one smoke run measured, for the JSON outputs.
struct SmokeResult {
    machine: String,
    backend: String,
    threads: usize,
    points: u64,
    secs: f64,
}

impl SmokeResult {
    fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.secs.max(1e-9)
    }

    fn to_json(&self) -> Json {
        // `machine` and `backend` are stamped exactly like the full
        // `repro bench` trajectory, so `eco report --compare` pairs a
        // smoke-only file against a committed full one by value, not
        // by notes-only fallback.
        Json::obj()
            .field("machine", Json::str(&self.machine))
            .field("backend", Json::str(&self.backend))
            .field("threads", Json::UInt(self.threads as u64))
            .field("points", Json::UInt(self.points))
            .field("secs", Json::Float(self.secs))
            .field("points_per_sec", Json::Float(self.points_per_sec()))
    }
}

fn smoke(opts: &ReproOpts) {
    let result = run_smoke(&opts.run);
    if let Some(path) = &opts.json {
        fs::write(path, result.to_json().render())
            .unwrap_or_else(|e| panic!("cannot write smoke json {path}: {e}"));
    }
    println!();
}

fn run_smoke(run: &RunOpts) -> SmokeResult {
    use eco_exec::{EvalJob, Params};
    use std::time::Instant;
    println!("== smoke: evaluation throughput ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "smoke");
    let mm = Kernel::matmul();
    let jac = Kernel::jacobi3d();
    let mut jobs = Vec::new();
    for n in [64i64, 96, 128, 160, 200] {
        for &(ti, tj, tk, pf) in &[
            (1u64, 4u64, 32u64, false),
            (4, 16, 16, false),
            (4, 16, 16, true),
            (8, 32, 16, false),
        ] {
            jobs.push(
                EvalJob::new(mm_table_row(ti, tj, tk, pf), Params::new().with(mm.size, n))
                    .with_label(format!("smoke/mm/{ti}x{tj}x{tk}/{n}")),
            );
        }
    }
    for n in [24i64, 36, 48] {
        for &(ti, tj, tk, pf) in &[
            (1u64, 1u64, 1u64, false),
            (1, 4, 4, true),
            (24, 4, 1, false),
        ] {
            jobs.push(
                EvalJob::new(
                    jacobi_table_row(ti, tj, tk, pf),
                    Params::new().with(jac.size, n),
                )
                .with_label(format!("smoke/jacobi/{ti}x{tj}x{tk}/{n}")),
            );
        }
    }
    let started = Instant::now();
    let results = engine.eval_batch(&jobs);
    let secs = started.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let evaluated = engine.stats().evaluated;
    println!(
        "   engine={:?} threads={}: {evaluated} points in {secs:.2}s -> {:.1} points/sec ({ok}/{} ok)",
        engine.backend(),
        engine.threads(),
        evaluated as f64 / secs,
        results.len()
    );
    assert_eq!(ok, results.len(), "smoke points must all simulate cleanly");
    SmokeResult {
        machine: machine.name.clone(),
        backend: format!("{:?}", engine.backend()),
        threads: engine.threads(),
        points: evaluated,
        secs,
    }
}

/// `repro bench`: one benchmark-trajectory measurement — smoke
/// throughput plus, unless `--smoke-only`, wall time / points/sec /
/// manifest fingerprint for each reproduced figure; with `--sweep FIG`
/// also the sweep wall time of that figure at `--workers 1` vs N
/// (default 4), run in scratch directories with cold stores. The JSON
/// goes to `--bench-out FILE` (and stdout otherwise); compare two of
/// these files with `eco report --compare OLD NEW`.
fn bench(opts: &ReproOpts) {
    use std::hash::Hasher;
    use std::time::Instant;
    println!("== bench: benchmark trajectory ==");
    let smoke = run_smoke(&opts.run);
    let mut figures_json = Json::obj();
    if !opts.smoke_only {
        for def in figures::FIGURES {
            let started = Instant::now();
            let (_, manifest) = figures::run(def, &opts.run);
            let wall = started.elapsed().as_secs_f64();
            let points = Json::parse(&manifest)
                .ok()
                .and_then(|doc| {
                    doc.get_path("engine_stats.requested")
                        .and_then(Json::as_u64)
                })
                .unwrap_or(0);
            let mut h = eco_core::events::Fnv64::new();
            h.write(manifest.as_bytes());
            figures_json = figures_json.field(
                def.name,
                Json::obj()
                    .field("wall_secs", Json::Float(wall))
                    .field("points", Json::UInt(points))
                    .field(
                        "points_per_sec",
                        Json::Float(points as f64 / wall.max(1e-9)),
                    )
                    .field("manifest_fingerprint", Json::fingerprint(h.finish())),
            );
        }
    }
    let sweep_section = opts.sweep_fig.as_ref().map(|name| bench_sweep(name, opts));
    let mut doc = Json::obj()
        .field("bench_version", Json::UInt(1))
        .field("generator", Json::str("repro bench"))
        .field(
            "machine",
            Json::str(&MachineDesc::sgi_r10000().scaled(FIGURE_SCALE).name),
        )
        .field("smoke", smoke.to_json());
    if !opts.smoke_only {
        doc = doc.field("figures", figures_json);
    }
    if let Some(section) = sweep_section {
        doc = doc.field("sweep", section);
    }
    match &opts.bench_out {
        Some(path) => {
            fs::write(path, doc.render())
                .unwrap_or_else(|e| panic!("cannot write trajectory {path}: {e}"));
            println!("   wrote trajectory to {path}");
        }
        None => print!("{}", doc.render()),
    }
}

/// The `--sweep FIG` section of the trajectory: wall time of a cold
/// sharded sweep at one worker vs several, in scratch directories.
fn bench_sweep(name: &str, opts: &ReproOpts) -> Json {
    let def = figures::figure(name)
        .unwrap_or_else(|| die(&format!("bench: unknown --sweep figure {name}")));
    let workers = if opts.workers > 1 { opts.workers } else { 4 };
    let root = std::env::temp_dir().join(format!("eco-bench-sweep-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let mut walls = [0.0f64; 2];
    for (slot, w) in [1usize, workers].into_iter().enumerate() {
        let sweep_dir = root.join(format!("{name}-w{w}"));
        let mut config = opts.sweep_config(sweep_dir.clone(), w, false);
        config.store = sweep_dir.join("store");
        config.remote = None;
        let outcome = match run_sweep(&def.spec(), &config) {
            Ok(o) => o,
            Err(e) => die(&e),
        };
        walls[slot] = outcome.wall_secs;
        println!(
            "   sweep {name} workers={w}: {} shard(s) in {:.1}s",
            outcome.planned, outcome.wall_secs
        );
    }
    let _ = fs::remove_dir_all(&root);
    Json::obj()
        .field("figure", Json::str(name))
        .field("workers", Json::UInt(workers as u64))
        .field("serial_secs", Json::Float(walls[0]))
        .field("sharded_secs", Json::Float(walls[1]))
        .field("speedup", Json::Float(walls[0] / walls[1].max(1e-9)))
}

fn model_rank(run: &RunOpts) {
    use eco_core::{generate, model};
    use eco_exec::{EvalJob, Params};
    println!("== Analysis: static cost model vs measurement (variant ranking) ==");
    println!("   (the paper: the space is \"difficult to model analytically\")");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = run.engine(&machine, "modelrank");
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let opt = Optimizer::new(machine.clone());
    let n = 120u64;
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    for v in &variants {
        let params = opt.initial_params(v);
        let Ok(program) = generate(&kernel, &nest, v, &params, &machine) else {
            continue;
        };
        let est = model::estimate(&nest, v, &params, &machine, n);
        let exec = Params::new().with(kernel.size, n as i64);
        let job = EvalJob::new(program, exec).with_label(format!("{}/modelrank", v.name));
        let Ok(c) = engine.eval(job) else {
            continue;
        };
        rows.push((v.name.clone(), est.cycles, c.cycles()));
    }
    let mut by_model: Vec<usize> = (0..rows.len()).collect();
    by_model.sort_by(|&a, &b| rows[a].1.total_cmp(&rows[b].1));
    let mut by_meas: Vec<usize> = (0..rows.len()).collect();
    by_meas.sort_by_key(|&i| rows[i].2);
    println!(
        "{:>6} {:>16} {:>14} {:>11} {:>11}",
        "var", "model cycles", "meas cycles", "model rank", "meas rank"
    );
    for (i, (name, est, meas)) in rows.iter().enumerate() {
        println!(
            "{name:>6} {est:>16.0} {meas:>14} {:>11} {:>11}",
            by_model.iter().position(|&x| x == i).expect("rank") + 1,
            by_meas.iter().position(|&x| x == i).expect("rank") + 1
        );
    }
    let inversions: usize = (0..rows.len())
        .map(|i| {
            let mr = by_model.iter().position(|&x| x == i).expect("rank");
            let sr = by_meas.iter().position(|&x| x == i).expect("rank");
            mr.abs_diff(sr)
        })
        .sum();
    println!(
        "total rank displacement {inversions} over {} variants; model's #1 {} measured #1",
        rows.len(),
        if by_model.first() == by_meas.first() {
            "matches"
        } else {
            "is NOT the"
        },
    );
    println!();
}
