//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! repro table1       Table 1: counter variation across parameter sets
//! repro table2       Table 2: machine descriptions
//! repro table3       Table 3: compiler flags (substitution note)
//! repro table4       Table 4: Matrix Multiply variants on the SGI
//! repro fig4a        Figure 4(a): MM MFLOPS vs size, SGI (scaled)
//! repro fig4b        Figure 4(b): MM MFLOPS vs size, UltraSparc (scaled)
//! repro fig5a        Figure 5(a): Jacobi MFLOPS vs size, SGI (scaled)
//! repro fig5b        Figure 5(b): Jacobi MFLOPS vs size, Sun (scaled)
//! repro searchcost   §4.3: search points, ECO vs the ATLAS-like search
//! repro modelvsearch Ablation: model-only parameters vs guided search
//! repro prefetch     Ablation: prefetch on/off and distance sweep
//! repro copyablation Ablation: copy vs no-copy at pathological sizes
//! repro padding      Ablation: array padding stabilizes Jacobi (§4.2)
//! repro strategies   Ablation: guided vs grid vs random search
//! repro attribution  Analysis: per-array miss attribution (mm1 vs mm4)
//! repro modelrank    Analysis: static-model ranking vs measured ranking
//! repro smoke        Timing smoke test: prints evaluated-points/sec
//! repro bench        Benchmark trajectory: smoke throughput plus wall
//!                    time, points/sec and manifest fingerprint per
//!                    figure, as JSON (`--bench-out FILE`); compare two
//!                    trajectories with `eco report --compare`
//! repro all          Everything above, also written to results/
//! repro check        Golden-results gate: regenerate every committed
//!                    figure CSV and run manifest in memory and diff
//!                    them byte-for-byte against results/; also
//!                    validates the event streams the regeneration just
//!                    emitted with the emitter's invariant checker;
//!                    exits nonzero on any drift
//!
//! options (after the command):
//!   --threads N      evaluation threads (0 = auto, the default)
//!   --engine E       plan (compiled, default) or reference (tree-walker)
//!   --store DIR      persistent result store: a second run against the
//!                    same DIR warm-starts from the first one's results
//!                    (same bytes out, far fewer simulations)
//!   --trace DIR      write a JSONL evaluation trace per command to DIR
//!   --events DIR     write a structured event stream per command to DIR
//!   --json FILE      smoke only: also write the throughput as JSON
//!   --bench-out FILE bench only: write the trajectory JSON to FILE
//!   --smoke-only     bench only: skip the per-figure measurements
//! ```
//!
//! All measurements flow through one [`eco_core::Engine`] per command:
//! batches are evaluated in parallel, repeated points are served from
//! the memo cache, and results come back in submission order, so every
//! table, CSV and manifest is byte-identical whatever `--threads` says
//! — the property `repro check` (and the CI golden-results job) gates.
//!
//! CSV and manifest output for each figure is written to `results/`
//! when it exists (created by `repro all`).

use eco_analysis::NestInfo;
use eco_baselines::{atlas_mm_with, model_only, native, vendor_mm_with};
use eco_bench::cli::EngineFlags;
use eco_bench::{
    counters_at_with, jacobi_figure_sizes, jacobi_table_row, mflops_at_with, mflops_sweep,
    mm_copy_variant, mm_figure_sizes, mm_table_row, Sweep, FIGURE_SCALE,
};
use eco_core::events::Json;
use eco_core::{
    derive_variants, describe_variant, run_manifest, Engine, EngineConfig, Evaluator, Optimizer,
    SearchOptions, TuneResponse, Tuned,
};
use eco_ir::Program;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::fs;

/// Engine settings shared by every command: the shared engine flags
/// (threads, backend, result store) and the optional JSONL telemetry
/// directories (one file per command label).
struct EngineOpts {
    flags: EngineFlags,
    trace_dir: Option<String>,
    events_dir: Option<String>,
    json: Option<String>,
    bench_out: Option<String>,
    smoke_only: bool,
}

impl EngineOpts {
    fn engine(&self, machine: &MachineDesc, label: &str) -> Engine {
        let mut cfg = self.flags.apply(EngineConfig::new());
        if let Some(dir) = &self.trace_dir {
            let _ = fs::create_dir_all(dir);
            cfg = cfg.trace(format!("{dir}/{label}.jsonl"));
        }
        if let Some(dir) = &self.events_dir {
            let _ = fs::create_dir_all(dir);
            cfg = cfg.events(format!("{dir}/{label}.events.jsonl"));
        }
        Engine::with_config(machine.clone(), cfg)
            .unwrap_or_else(|e| panic!("engine for {label}: {e}"))
    }

    /// The deterministic subset of the engine configuration recorded in
    /// run manifests (backend and memoization; never threads, paths or
    /// the store — a warm run must produce the same bytes as a cold
    /// one).
    fn manifest_config(&self) -> EngineConfig {
        EngineConfig::new().backend(self.flags.backend)
    }
}

fn parse_engine_opts(args: &[String]) -> Result<EngineOpts, String> {
    let mut flags = EngineFlags::new();
    let mut trace_dir = None;
    let mut events_dir = None;
    let mut json = None;
    let mut bench_out = None;
    let mut smoke_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                trace_dir = Some(it.next().ok_or("--trace needs a directory")?.clone());
            }
            "--events" => {
                events_dir = Some(it.next().ok_or("--events needs a directory")?.clone());
            }
            "--json" => {
                json = Some(it.next().ok_or("--json needs a file")?.clone());
            }
            "--bench-out" => {
                bench_out = Some(it.next().ok_or("--bench-out needs a file")?.clone());
            }
            "--smoke-only" => smoke_only = true,
            other => {
                if !flags.accept(other, &mut it)? {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    Ok(EngineOpts {
        flags,
        trace_dir,
        events_dir,
        json,
        bench_out,
        smoke_only,
    })
}

fn print_engine_stats(engine: &Engine) {
    let s = engine.stats();
    println!(
        "   engine: {} points requested, {} evaluated, {} memo hits ({:.0}% hit rate), {} thread(s)",
        s.requested,
        s.evaluated,
        s.cache_hits,
        s.hit_rate() * 100.0,
        engine.threads()
    );
    if let Some(store) = engine.store_stats() {
        println!(
            "   store: {} hits, {} misses, {} puts",
            store.hits, store.misses, store.puts
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => ("all".to_string(), Vec::new()),
    };
    let eopts = match parse_engine_opts(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    match cmd.as_str() {
        "table1" => table1(&eopts),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "fig4a" => drop(fig4(&MachineDesc::sgi_r10000(), "fig4a", &eopts)),
        "fig4b" => drop(fig4(&MachineDesc::ultrasparc_iie(), "fig4b", &eopts)),
        "fig5a" => drop(fig5(&MachineDesc::sgi_r10000(), "fig5a", &eopts)),
        "fig5b" => drop(fig5(&MachineDesc::ultrasparc_iie(), "fig5b", &eopts)),
        "searchcost" => searchcost(&eopts),
        "modelvsearch" => modelvsearch(&eopts),
        "prefetch" => prefetch_ablation(&eopts),
        "copyablation" => copy_ablation(&eopts),
        "padding" => padding_ablation(&eopts),
        "strategies" => strategies_ablation(&eopts),
        "attribution" => attribution(),
        "modelrank" => model_rank(&eopts),
        "smoke" | "--smoke" => smoke(&eopts),
        "bench" => bench(&eopts),
        "check" => check(&eopts),
        "all" => {
            let _ = fs::create_dir_all("results");
            table2();
            table3();
            table4();
            table1(&eopts);
            save("fig4a", fig4(&MachineDesc::sgi_r10000(), "fig4a", &eopts));
            save(
                "fig4b",
                fig4(&MachineDesc::ultrasparc_iie(), "fig4b", &eopts),
            );
            save("fig5a", fig5(&MachineDesc::sgi_r10000(), "fig5a", &eopts));
            save(
                "fig5b",
                fig5(&MachineDesc::ultrasparc_iie(), "fig5b", &eopts),
            );
            searchcost(&eopts);
            modelvsearch(&eopts);
            prefetch_ablation(&eopts);
            copy_ablation(&eopts);
            padding_ablation(&eopts);
            strategies_ablation(&eopts);
            attribution();
            model_rank(&eopts);
        }
        other => {
            eprintln!("unknown command {other}; see the module docs for the list");
            std::process::exit(2);
        }
    }
}

fn save(name: &str, out: (Sweep, String)) {
    if fs::metadata("results").is_ok() {
        let _ = fs::write(format!("results/{name}.csv"), out.0.to_csv());
        let _ = fs::write(format!("results/{name}.manifest.json"), out.1);
    }
}

/// Regenerates every committed figure CSV and run manifest in memory
/// and diffs them byte-for-byte against `results/`; exits nonzero on
/// any drift or missing file. This is the golden-results gate CI runs.
///
/// The regeneration always emits event streams (to `--events DIR`, or a
/// scratch directory when none is given), and every stream is then run
/// through [`eco_events::check_stream`], so the gate also covers the
/// emitter's structural invariants, not just the CSV/manifest bytes.
fn check(eopts: &EngineOpts) {
    let scratch_events = eopts.events_dir.is_none();
    let events_dir = eopts.events_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("eco-check-events-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let eopts = EngineOpts {
        flags: eopts.flags.clone(),
        trace_dir: eopts.trace_dir.clone(),
        events_dir: Some(events_dir.clone()),
        json: eopts.json.clone(),
        bench_out: None,
        smoke_only: false,
    };
    let outputs = [
        ("fig4a", fig4(&MachineDesc::sgi_r10000(), "fig4a", &eopts)),
        (
            "fig4b",
            fig4(&MachineDesc::ultrasparc_iie(), "fig4b", &eopts),
        ),
        ("fig5a", fig5(&MachineDesc::sgi_r10000(), "fig5a", &eopts)),
        (
            "fig5b",
            fig5(&MachineDesc::ultrasparc_iie(), "fig5b", &eopts),
        ),
    ];
    println!("== check: regenerated outputs vs committed results/ ==");
    let mut drift = 0usize;
    for (name, (sweep, manifest)) in outputs {
        let files = [
            (format!("results/{name}.csv"), sweep.to_csv()),
            (format!("results/{name}.manifest.json"), manifest),
        ];
        for (path, fresh) in files {
            match fs::read_to_string(&path) {
                Ok(committed) if committed == fresh => println!("   OK      {path}"),
                Ok(_) => {
                    println!("   DRIFT   {path}");
                    drift += 1;
                }
                Err(e) => {
                    println!("   MISSING {path} ({e})");
                    drift += 1;
                }
            }
        }
    }
    for name in ["fig4a", "fig4b", "fig5a", "fig5b"] {
        let path = format!("{events_dir}/{name}.events.jsonl");
        match fs::read_to_string(&path) {
            Ok(text) => match eco_core::events::check_stream(&text) {
                Ok(summary) => println!(
                    "   OK      {path} ({} records, stream invariants hold)",
                    summary.records
                ),
                Err(e) => {
                    println!("   INVALID {path} ({e})");
                    drift += 1;
                }
            },
            Err(e) => {
                println!("   MISSING {path} ({e})");
                drift += 1;
            }
        }
    }
    if scratch_events {
        let _ = fs::remove_dir_all(&events_dir);
    }
    if drift > 0 {
        eprintln!("repro check: {drift} file(s) drifted from the committed golden results");
        std::process::exit(1);
    }
    println!("   all golden results reproduced byte-for-byte");
}

/// The search options ECO uses for the figures (also recorded in the
/// run manifests, so keep this the single source of truth).
fn eco_search_opts(search_n: i64) -> SearchOptions {
    SearchOptions::builder()
        .search_n(search_n)
        .max_variants(2)
        // tune on a conflict-prone (power-of-two) size too (see
        // SearchOptions docs)
        .robustness_sizes(vec![(search_n as u64).next_power_of_two() as i64])
        // statically certify every candidate, also in release builds:
        // the golden manifests record the flag, and CI's golden-results
        // job doubles as the "certification never rejects a real
        // search point" check
        .certify(true)
        .build()
        .unwrap_or_else(|e| panic!("search options: {e}"))
}

/// ECO, tuned once per machine and reused across sizes (the paper: "our
/// implementation selected variant v2 with UI=UJ=4, TI=16, TJ=512,
/// TK=128 for all array sizes"). The search runs against the shared
/// `engine`, so revisited points are memo hits.
fn tune_eco(kernel: &Kernel, engine: &Engine, search_n: i64) -> Tuned {
    let mut opt = Optimizer::new(engine.machine().clone());
    opt.opts = eco_search_opts(search_n);
    opt.run_with(kernel, engine)
        .unwrap_or_else(|e| panic!("ECO tuning failed: {e}"))
}

/// The figure's run manifest: built right after tuning, while the
/// engine stats still describe the search alone (deterministic at any
/// thread count because batching is).
fn figure_manifest(
    kernel: &Kernel,
    engine: &Engine,
    eopts: &EngineOpts,
    search_n: i64,
    tuned: &Tuned,
) -> String {
    let report = TuneResponse {
        tuned: tuned.clone(),
        engine: engine.stats(),
    };
    run_manifest(
        &kernel.name,
        engine.machine(),
        &eco_search_opts(search_n),
        &eopts.manifest_config(),
        &report,
    )
    .render()
}

// ---------------------------------------------------------------- T1

fn table1(eopts: &EngineOpts) {
    println!("== Table 1: performance variation with optimization parameters ==");
    println!("   (1/32-scale SGI R10000 model; MM at N=200, Jacobi at N=48;");
    println!("    tile sizes scaled with the caches, see DESIGN.md)");
    println!(
        "{:6} {:>4} {:>4} {:>4} {:>5} {:>14} {:>12} {:>12} {:>12} {:>16}",
        "ver", "TI", "TJ", "TK", "Pref", "Loads", "L1 misses", "L2 misses", "TLB misses", "Cycles"
    );
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "table1");
    let mm = Kernel::matmul();
    let rows: [(u64, u64, u64, bool); 5] = [
        (1, 4, 32, false),  // mm1: L1-focused, lowest L1 misses
        (2, 64, 64, false), // mm2: the TLB blow-up row
        (8, 32, 16, false), // mm3: all loops tiled, lowest L2 misses
        (4, 16, 16, false), // mm4: the balanced row
        (4, 16, 16, true),  // mm5: balanced + prefetch: lowest cycles
    ];
    for (i, &(ti, tj, tk, pf)) in rows.iter().enumerate() {
        let p = mm_table_row(ti, tj, tk, pf);
        let c = counters_at_with(&engine, &p, &mm, 200);
        println!(
            "mm{:<3} {:>5} {:>4} {:>4} {:>5} {:>14} {:>12} {:>12} {:>12} {:>16}",
            i + 1,
            ti,
            tj,
            tk,
            if pf { "yes" } else { "no" },
            c.loads_incl_prefetch(),
            c.cache_misses[0],
            c.cache_misses[1],
            c.tlb_misses,
            c.cycles()
        );
    }
    let jac = Kernel::jacobi3d();
    let jrows: [(u64, u64, u64, bool); 6] = [
        (1, 1, 1, false),  // j1: untiled
        (1, 1, 1, true),   // j2: untiled + prefetch (~20% gain)
        (1, 4, 4, false),  // j3: J and K tiled for L1
        (1, 4, 4, true),   // j4: j3 + prefetch
        (24, 4, 1, false), // j5: I and J tiled
        (24, 4, 1, true),  // j6: j5 + prefetch
    ];
    for (i, &(ti, tj, tk, pf)) in jrows.iter().enumerate() {
        let p = jacobi_table_row(ti, tj, tk, pf);
        let c = counters_at_with(&engine, &p, &jac, 48);
        println!(
            "j{:<4} {:>5} {:>4} {:>4} {:>5} {:>14} {:>12} {:>12} {:>12} {:>16}",
            i + 1,
            ti,
            tj,
            tk,
            if pf { "yes" } else { "no" },
            c.loads_incl_prefetch(),
            c.cache_misses[0],
            c.cache_misses[1],
            c.tlb_misses,
            c.cycles()
        );
    }
    println!();
}

// ---------------------------------------------------------------- T2

fn table2() {
    println!("== Table 2: machine descriptions ==");
    for m in [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()] {
        println!("{m}");
        println!("  scaled for figures: {}", m.scaled(FIGURE_SCALE));
    }
    println!();
}

fn table3() {
    println!("== Table 3: compilers, optimization flags and BLAS versions ==");
    println!("Not applicable in this reproduction: there are no native");
    println!("compilers or vendor libraries. The stand-ins are:");
    println!("  ECO     -> eco-core two-phase optimizer (this repo)");
    println!("  Native  -> eco-baselines::native (model-driven, no copy/prefetch)");
    println!("  ATLAS   -> eco-baselines::atlas_mm (pure empirical, own code shape)");
    println!("  Vendor  -> eco-baselines::vendor_mm (hand-tuned fixed parameters)");
    println!("The paper's roundoff=3 reassociation licence corresponds to the");
    println!("is_reduction escape in eco-analysis::dependence.");
    println!();
}

// ---------------------------------------------------------------- T4

fn table4() {
    println!("== Table 4: Matrix Multiply variants on the SGI ==");
    let k = Kernel::matmul();
    let machine = MachineDesc::sgi_r10000();
    let nest = NestInfo::from_program(&k.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &k.program);
    for v in &variants {
        println!("{}:", v.name);
        print!("{}", describe_variant(v, &nest, &k.program));
    }
    println!();
}

// ---------------------------------------------------------------- F4

fn fig4(machine_full: &MachineDesc, label: &str, eopts: &EngineOpts) -> (Sweep, String) {
    println!(
        "== Figure 4 ({label}): Matrix Multiply MFLOPS vs size on {} ==",
        machine_full.name
    );
    let machine = machine_full.scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, label);
    let kernel = Kernel::matmul();
    let sizes = mm_figure_sizes();

    let eco = tune_eco(&kernel, &engine, 120);
    let manifest = figure_manifest(&kernel, &engine, eopts, 120, &eco);
    println!(
        "   ECO picked {} with {:?}, prefetches {:?} ({} search points)",
        eco.variant.name, eco.params, eco.prefetches, eco.stats.points
    );
    let nat = native(&kernel, &machine).expect("native");
    let atlas = atlas_mm_with(&engine, 96).expect("atlas");
    println!(
        "   ATLAS-like picked NB={} {}x{} ({} search points)",
        atlas.nb, atlas.mu_nu.0, atlas.mu_nu.1, atlas.points
    );
    let vendor = vendor_mm_with(&engine, 120).expect("vendor");

    let eco_f = |_n: i64| eco.program.clone();
    let nat_f = |n: i64| nat.for_size(n).clone();
    let atlas_f = |n: i64| atlas.program.for_size(n).clone();
    let vendor_f = |n: i64| vendor.for_size(n).clone();
    let series: [(&str, &dyn Fn(i64) -> Program); 4] = [
        ("ECO", &eco_f),
        ("Native", &nat_f),
        ("ATLAS", &atlas_f),
        ("Vendor", &vendor_f),
    ];
    let sweep = mflops_sweep(&engine, &kernel, &sizes, &series);
    print!("{}", sweep.to_table());
    print_engine_stats(&engine);
    println!();
    (sweep, manifest)
}

// ---------------------------------------------------------------- F5

fn fig5(machine_full: &MachineDesc, label: &str, eopts: &EngineOpts) -> (Sweep, String) {
    println!(
        "== Figure 5 ({label}): Jacobi MFLOPS vs size on {} ==",
        machine_full.name
    );
    let machine = machine_full.scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, label);
    let kernel = Kernel::jacobi3d();
    let sizes = jacobi_figure_sizes();

    let eco = tune_eco(&kernel, &engine, 40);
    let manifest = figure_manifest(&kernel, &engine, eopts, 40, &eco);
    println!(
        "   ECO picked {} with {:?}, prefetches {:?} ({} search points)",
        eco.variant.name, eco.params, eco.prefetches, eco.stats.points
    );
    let nat = native(&kernel, &machine).expect("native");
    let eco_f = |_n: i64| eco.program.clone();
    let nat_f = |n: i64| nat.for_size(n).clone();
    let series: [(&str, &dyn Fn(i64) -> Program); 2] = [("ECO", &eco_f), ("Native", &nat_f)];
    let sweep = mflops_sweep(&engine, &kernel, &sizes, &series);
    print!("{}", sweep.to_table());
    print_engine_stats(&engine);
    println!();
    (sweep, manifest)
}

// ---------------------------------------------------------------- §4.3

fn searchcost(eopts: &EngineOpts) {
    println!("== §4.3: cost of search (points executed) ==");
    for (machine_full, tag) in [
        (MachineDesc::sgi_r10000(), "searchcost-sgi"),
        (MachineDesc::ultrasparc_iie(), "searchcost-sun"),
    ] {
        let machine = machine_full.scaled(FIGURE_SCALE);
        let engine = eopts.engine(&machine, tag);
        let mm = tune_eco(&Kernel::matmul(), &engine, 96);
        let jc = tune_eco(&Kernel::jacobi3d(), &engine, 36);
        let atlas = atlas_mm_with(&engine, 96).expect("atlas");
        println!("{}:", machine_full.name);
        println!(
            "  ECO   MM: {:>4} points ({} variants derived, {} searched)",
            mm.stats.points, mm.stats.variants_derived, mm.stats.variants_searched
        );
        println!("  ECO   Jacobi: {:>4} points", jc.stats.points);
        println!(
            "  ATLAS MM: {:>4} points  (ECO is {:.1}x smaller)",
            atlas.points,
            atlas.points as f64 / mm.stats.points as f64
        );
        print_engine_stats(&engine);
    }
    println!();
}

// ---------------------------------------------------------------- ablations

fn modelvsearch(eopts: &EngineOpts) {
    println!("== Ablation: model-only parameters vs guided empirical search ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "modelvsearch");
    let kernel = Kernel::matmul();
    let eco = tune_eco(&kernel, &engine, 120);
    let model = model_only(&kernel, &machine).expect("model");
    let sizes = [64, 128, 192, 256];
    println!("{:>6} {:>12} {:>12}", "N", "model-only", "ECO search");
    for n in sizes {
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            mflops_at_with(&engine, model.for_size(n), &kernel, n),
            mflops_at_with(&engine, &eco.program, &kernel, n)
        );
    }
    println!();
}

fn prefetch_ablation(eopts: &EngineOpts) {
    println!("== Ablation: prefetch on/off and distance sensitivity ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "prefetch");
    let jac = Kernel::jacobi3d();
    println!("Jacobi N=48 (1/32-scale SGI), j3/j4-style (TJ=4, TK=4):");
    let base = jacobi_table_row(1, 4, 4, false);
    let cb = counters_at_with(&engine, &base, &jac, 48);
    println!("  no prefetch: {:>12} cycles", cb.cycles());
    let with = jacobi_table_row(1, 4, 4, true);
    let cw = counters_at_with(&engine, &with, &jac, 48);
    println!(
        "  prefetch d=2: {:>11} cycles ({:+.1}%)",
        cw.cycles(),
        (cw.cycles() as f64 / cb.cycles() as f64 - 1.0) * 100.0
    );
    let mm = Kernel::matmul();
    println!("MM N=200 (1/32-scale SGI), mm4/mm5-style (TI=4, TJ=16, TK=16):");
    let base = mm_table_row(4, 16, 16, false);
    let cb = counters_at_with(&engine, &base, &mm, 200);
    println!("  no prefetch: {:>12} cycles", cb.cycles());
    let with = mm_table_row(4, 16, 16, true);
    let cw = counters_at_with(&engine, &with, &mm, 200);
    println!(
        "  prefetch d=2: {:>11} cycles ({:+.1}%)",
        cw.cycles(),
        (cw.cycles() as f64 / cb.cycles() as f64 - 1.0) * 100.0
    );
    println!();
}

fn copy_ablation(eopts: &EngineOpts) {
    println!("== Ablation: copy optimization at pathological sizes ==");
    println!("   (scaled SGI; power-of-two N puts columns in the same sets)");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "copyablation");
    let kernel = Kernel::matmul();
    println!("{:>6} {:>12} {:>12}", "N", "no copy", "copy");
    for n in [96, 128, 160, 256] {
        let nc = mm_copy_variant(8, 16, 16, false);
        let wc = mm_copy_variant(8, 16, 16, true);
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            mflops_at_with(&engine, &nc, &kernel, n),
            mflops_at_with(&engine, &wc, &kernel, n)
        );
    }
    println!();
}

fn padding_ablation(eopts: &EngineOpts) {
    use eco_transform::pad_all_arrays;
    println!("== Ablation: array padding stabilizes Jacobi (§4.2) ==");
    println!("   (the paper: \"manual experiments show that array padding");
    println!("    can be used to stabilize this behavior\")");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "padding");
    let kernel = Kernel::jacobi3d();
    let base = jacobi_table_row(1, 4, 4, true);
    let padded = pad_all_arrays(&base, 3).expect("pad");
    println!("{:>6} {:>12} {:>12}", "N", "unpadded", "padded");
    for n in [24i64, 32, 40, 48, 64, 72] {
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            mflops_at_with(&engine, &base, &kernel, n),
            mflops_at_with(&engine, &padded, &kernel, n)
        );
    }
    println!();
}

fn strategies_ablation(eopts: &EngineOpts) {
    use eco_core::SearchStrategy;
    println!("== Ablation: guided search vs heuristic alternatives ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "strategies");
    let kernel = Kernel::matmul();
    let eval_n = 96i64;
    println!(
        "{:>10} {:>8} {:>12}  (MM, measured at N={eval_n})",
        "strategy", "points", "MFLOPS"
    );
    for (name, strategy) in [
        ("guided", SearchStrategy::Guided),
        ("grid", SearchStrategy::Grid { max_points: 100 }),
        (
            "random",
            SearchStrategy::Random {
                points: 40,
                seed: 42,
            },
        ),
    ] {
        let opts = SearchOptions::builder()
            .search_n(120)
            .max_variants(2)
            .robustness_sizes(vec![128])
            .strategy(strategy)
            .build()
            .expect("search options");
        let mut opt = Optimizer::new(machine.clone());
        opt.opts = opts;
        let tuned = opt.run_with(&kernel, &engine).expect("optimize");
        println!(
            "{name:>10} {:>8} {:>12.1}",
            tuned.stats.points,
            mflops_at_with(&engine, &tuned.program, &kernel, eval_n)
        );
    }
    print_engine_stats(&engine);
    println!();
}

fn attribution() {
    use eco_exec::{measure_attributed, LayoutOptions, Params};
    println!("== Analysis: per-array miss attribution (Table 1 rows) ==");
    println!("   (mm1 exploits B's reuse; the balanced mm4 spreads misses)");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let kernel = Kernel::matmul();
    for (label, ti, tj, tk) in [("mm1", 1u64, 4u64, 32u64), ("mm4", 4, 16, 16)] {
        let p = mm_table_row(ti, tj, tk, false);
        let params = Params::new().with(kernel.size, 200);
        let c =
            measure_attributed(&p, &params, &machine, &LayoutOptions::default()).expect("measure");
        println!("{label} (TI={ti} TJ={tj} TK={tk}):");
        println!(
            "  {:>6} {:>12} {:>12} {:>12} {:>10}",
            "array", "accesses", "L1 misses", "L2 misses", "TLB"
        );
        for (i, t) in c.per_tag.iter().enumerate() {
            if t.accesses == 0 {
                continue;
            }
            println!(
                "  {:>6} {:>12} {:>12} {:>12} {:>10}",
                p.array(eco_ir::ArrayId(i as u32)).name,
                t.accesses,
                t.misses[0],
                t.misses[1],
                t.tlb_misses
            );
        }
    }
    println!();
}

/// Offline-safe throughput check for CI: simulates a fixed mix of
/// unique MM and Jacobi points (no memo hits) and prints
/// evaluated-points/sec. No threshold — the number is informational, so
/// slow runners never fail the build; compare `--engine plan` against
/// `--engine reference` to see the lowering speedup in the log.
/// What one smoke run measured, for the JSON outputs.
struct SmokeResult {
    backend: String,
    threads: usize,
    points: u64,
    secs: f64,
}

impl SmokeResult {
    fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.secs.max(1e-9)
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("backend", Json::str(&self.backend))
            .field("threads", Json::UInt(self.threads as u64))
            .field("points", Json::UInt(self.points))
            .field("secs", Json::Float(self.secs))
            .field("points_per_sec", Json::Float(self.points_per_sec()))
    }
}

fn smoke(eopts: &EngineOpts) {
    let result = run_smoke(eopts);
    if let Some(path) = &eopts.json {
        fs::write(path, result.to_json().render())
            .unwrap_or_else(|e| panic!("cannot write smoke json {path}: {e}"));
    }
    println!();
}

fn run_smoke(eopts: &EngineOpts) -> SmokeResult {
    use eco_exec::{EvalJob, Params};
    use std::time::Instant;
    println!("== smoke: evaluation throughput ==");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "smoke");
    let mm = Kernel::matmul();
    let jac = Kernel::jacobi3d();
    let mut jobs = Vec::new();
    for n in [64i64, 96, 128, 160, 200] {
        for &(ti, tj, tk, pf) in &[
            (1u64, 4u64, 32u64, false),
            (4, 16, 16, false),
            (4, 16, 16, true),
            (8, 32, 16, false),
        ] {
            jobs.push(
                EvalJob::new(mm_table_row(ti, tj, tk, pf), Params::new().with(mm.size, n))
                    .with_label(format!("smoke/mm/{ti}x{tj}x{tk}/{n}")),
            );
        }
    }
    for n in [24i64, 36, 48] {
        for &(ti, tj, tk, pf) in &[
            (1u64, 1u64, 1u64, false),
            (1, 4, 4, true),
            (24, 4, 1, false),
        ] {
            jobs.push(
                EvalJob::new(
                    jacobi_table_row(ti, tj, tk, pf),
                    Params::new().with(jac.size, n),
                )
                .with_label(format!("smoke/jacobi/{ti}x{tj}x{tk}/{n}")),
            );
        }
    }
    let started = Instant::now();
    let results = engine.eval_batch(&jobs);
    let secs = started.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let evaluated = engine.stats().evaluated;
    println!(
        "   engine={:?} threads={}: {evaluated} points in {secs:.2}s -> {:.1} points/sec ({ok}/{} ok)",
        engine.backend(),
        engine.threads(),
        evaluated as f64 / secs,
        results.len()
    );
    assert_eq!(ok, results.len(), "smoke points must all simulate cleanly");
    SmokeResult {
        backend: format!("{:?}", engine.backend()),
        threads: engine.threads(),
        points: evaluated,
        secs,
    }
}

/// `repro bench`: one benchmark-trajectory measurement — smoke
/// throughput plus, unless `--smoke-only`, wall time / points/sec /
/// manifest fingerprint for each reproduced figure. The JSON goes to
/// `--bench-out FILE` (and stdout otherwise); compare two of these
/// files with `eco report --compare OLD NEW`.
fn bench(eopts: &EngineOpts) {
    use std::hash::Hasher;
    use std::time::Instant;
    println!("== bench: benchmark trajectory ==");
    let smoke = run_smoke(eopts);
    let mut figures = Json::obj();
    if !eopts.smoke_only {
        for name in ["fig4a", "fig4b", "fig5a", "fig5b"] {
            let started = Instant::now();
            let (_, manifest) = match name {
                "fig4a" => fig4(&MachineDesc::sgi_r10000(), name, eopts),
                "fig4b" => fig4(&MachineDesc::ultrasparc_iie(), name, eopts),
                "fig5a" => fig5(&MachineDesc::sgi_r10000(), name, eopts),
                _ => fig5(&MachineDesc::ultrasparc_iie(), name, eopts),
            };
            let wall = started.elapsed().as_secs_f64();
            let points = Json::parse(&manifest)
                .ok()
                .and_then(|doc| {
                    doc.get_path("engine_stats.requested")
                        .and_then(Json::as_u64)
                })
                .unwrap_or(0);
            let mut h = eco_core::events::Fnv64::new();
            h.write(manifest.as_bytes());
            figures = figures.field(
                name,
                Json::obj()
                    .field("wall_secs", Json::Float(wall))
                    .field("points", Json::UInt(points))
                    .field(
                        "points_per_sec",
                        Json::Float(points as f64 / wall.max(1e-9)),
                    )
                    .field("manifest_fingerprint", Json::fingerprint(h.finish())),
            );
        }
    }
    let mut doc = Json::obj()
        .field("bench_version", Json::UInt(1))
        .field("generator", Json::str("repro bench"))
        .field(
            "machine",
            Json::str(&MachineDesc::sgi_r10000().scaled(FIGURE_SCALE).name),
        )
        .field("smoke", smoke.to_json());
    if !eopts.smoke_only {
        doc = doc.field("figures", figures);
    }
    match &eopts.bench_out {
        Some(path) => {
            fs::write(path, doc.render())
                .unwrap_or_else(|e| panic!("cannot write trajectory {path}: {e}"));
            println!("   wrote trajectory to {path}");
        }
        None => print!("{}", doc.render()),
    }
}

fn model_rank(eopts: &EngineOpts) {
    use eco_core::{generate, model};
    use eco_exec::{EvalJob, Params};
    println!("== Analysis: static cost model vs measurement (variant ranking) ==");
    println!("   (the paper: the space is \"difficult to model analytically\")");
    let machine = MachineDesc::sgi_r10000().scaled(FIGURE_SCALE);
    let engine = eopts.engine(&machine, "modelrank");
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program).expect("analyzable");
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let opt = Optimizer::new(machine.clone());
    let n = 120u64;
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    for v in &variants {
        let params = opt.initial_params(v);
        let Ok(program) = generate(&kernel, &nest, v, &params, &machine) else {
            continue;
        };
        let est = model::estimate(&nest, v, &params, &machine, n);
        let exec = Params::new().with(kernel.size, n as i64);
        let job = EvalJob::new(program, exec).with_label(format!("{}/modelrank", v.name));
        let Ok(c) = engine.eval(job) else {
            continue;
        };
        rows.push((v.name.clone(), est.cycles, c.cycles()));
    }
    let mut by_model: Vec<usize> = (0..rows.len()).collect();
    by_model.sort_by(|&a, &b| rows[a].1.total_cmp(&rows[b].1));
    let mut by_meas: Vec<usize> = (0..rows.len()).collect();
    by_meas.sort_by_key(|&i| rows[i].2);
    println!(
        "{:>6} {:>16} {:>14} {:>11} {:>11}",
        "var", "model cycles", "meas cycles", "model rank", "meas rank"
    );
    for (i, (name, est, meas)) in rows.iter().enumerate() {
        println!(
            "{name:>6} {est:>16.0} {meas:>14} {:>11} {:>11}",
            by_model.iter().position(|&x| x == i).expect("rank") + 1,
            by_meas.iter().position(|&x| x == i).expect("rank") + 1
        );
    }
    let inversions: usize = (0..rows.len())
        .map(|i| {
            let mr = by_model.iter().position(|&x| x == i).expect("rank");
            let sr = by_meas.iter().position(|&x| x == i).expect("rank");
            mr.abs_diff(sr)
        })
        .sum();
    println!(
        "total rank displacement {inversions} over {} variants; model's #1 {} measured #1",
        rows.len(),
        if by_model.first() == by_meas.first() {
            "matches"
        } else {
            "is NOT the"
        },
    );
    println!();
}
