//! `eco` — command-line front end to the optimizer.
//!
//! ```text
//! eco kernels                         list built-in kernels
//! eco show <kernel>                   print a kernel's source nest
//! eco variants <kernel> [opts]        Phase 1: derived variants (Table-4 style)
//! eco tune <kernel> [opts]            Phase 1 + 2: full optimization
//! eco measure <kernel> --n <N> [opts] simulate the untransformed kernel
//!
//! options:
//!   --machine sgi|sun    target machine model       (default sgi)
//!   --scale F            shrink the machine by F    (default 32; 1 = full size)
//!   --n N                problem size               (default 96)
//!   --search-n N         tuning size for `tune`     (default 96)
//!   --strategy S         guided|grid|random         (default guided)
//!   --threads N          evaluation threads         (default 0 = auto)
//!   --engine E           plan|reference             (default plan)
//!   --trace FILE         write a JSONL line per evaluated point to FILE
//!   --events FILE        write the structured observability event stream to FILE
//!   --manifest FILE      write the deterministic run manifest to FILE (tune)
//!   --code               also print generated code  (tune)
//! ```
//!
//! `tune` and `measure` run on the parallel memoized evaluation engine;
//! `tune` reports the engine's work alongside the search statistics.
//! Each `--trace` record carries the point's label, parameters,
//! memo-hit flag, wall-clock time and simulated counters; `--events`
//! captures the span/event stream (search stages, per-point results,
//! plan compilations) and `--manifest` the byte-deterministic run
//! manifest (see DESIGN.md for both schemas). All three files are
//! created up front, so an unwritable path fails before the search
//! starts.

use eco_analysis::NestInfo;
use eco_core::{
    derive_variants, describe_variant, run_manifest, EngineConfig, OptimizeRequest, Optimizer,
    SearchStrategy,
};
use eco_exec::{Engine, EvalJob, Evaluator, ExecBackend, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

struct Opts {
    machine: MachineDesc,
    n: i64,
    search_n: i64,
    strategy: SearchStrategy,
    threads: usize,
    backend: ExecBackend,
    trace: Option<String>,
    events: Option<String>,
    manifest: Option<String>,
    code: bool,
}

impl Opts {
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig::new()
            .threads(self.threads)
            .backend(self.backend);
        if let Some(path) = &self.trace {
            cfg = cfg.trace(path.clone());
        }
        if let Some(path) = &self.events {
            cfg = cfg.events(path.clone());
        }
        cfg
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut machine = "sgi".to_string();
    let mut scale = 32usize;
    let mut n = 96i64;
    let mut search_n = 96i64;
    let mut strategy = SearchStrategy::Guided;
    let mut threads = 0usize;
    let mut backend = ExecBackend::Compiled;
    let mut trace = None;
    let mut events = None;
    let mut manifest = None;
    let mut code = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--machine" => machine = val("--machine")?,
            "--scale" => {
                scale = val("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--n" => n = val("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--search-n" => {
                search_n = val("--search-n")?
                    .parse()
                    .map_err(|e| format!("bad --search-n: {e}"))?
            }
            "--strategy" => {
                strategy = match val("--strategy")?.as_str() {
                    "guided" => SearchStrategy::Guided,
                    "grid" => SearchStrategy::Grid { max_points: 300 },
                    "random" => SearchStrategy::Random {
                        points: 60,
                        seed: 42,
                    },
                    other => return Err(format!("unknown strategy {other}")),
                }
            }
            "--threads" => {
                threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--engine" => backend = ExecBackend::parse(&val("--engine")?)?,
            "--trace" => trace = Some(val("--trace")?),
            "--events" => events = Some(val("--events")?),
            "--manifest" => manifest = Some(val("--manifest")?),
            "--code" => code = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    let base = match machine.as_str() {
        "sgi" => MachineDesc::sgi_r10000(),
        "sun" => MachineDesc::ultrasparc_iie(),
        other => return Err(format!("unknown machine {other} (sgi|sun)")),
    };
    let machine = if scale > 1 { base.scaled(scale) } else { base };
    Ok(Opts {
        machine,
        n,
        search_n,
        strategy,
        threads,
        backend,
        trace,
        events,
        manifest,
        code,
    })
}

fn find_kernel(name: &str) -> Result<Kernel, String> {
    Kernel::all()
        .into_iter()
        .find(|k| k.name == name)
        .ok_or_else(|| {
            format!(
                "unknown kernel {name}; try one of: {}",
                Kernel::all()
                    .iter()
                    .map(|k| k.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => dispatch(cmd, rest),
        None => Err("usage: eco <kernels|show|variants|tune|measure> ...".into()),
    };
    if let Err(e) = result {
        eprintln!("eco: {e}");
        std::process::exit(2);
    }
}

fn dispatch(cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "kernels" => {
            for k in Kernel::all() {
                println!(
                    "{:10} ({} loops, {} arrays)",
                    k.name,
                    {
                        let nest = NestInfo::from_program(&k.program).map_err(|e| e.to_string())?;
                        nest.loops.len()
                    },
                    k.program.arrays.len()
                );
            }
            Ok(())
        }
        "show" => {
            let (name, _) = rest.split_first().ok_or("usage: eco show <kernel>")?;
            let k = find_kernel(name)?;
            print!("{}", k.program);
            Ok(())
        }
        "variants" => {
            let (name, opts) = rest
                .split_first()
                .ok_or("usage: eco variants <kernel> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(opts)?;
            let nest = NestInfo::from_program(&k.program).map_err(|e| e.to_string())?;
            let vs = derive_variants(&nest, &opts.machine, &k.program);
            println!(
                "{} variants for {} on {}:",
                vs.len(),
                k.name,
                opts.machine.name
            );
            for v in &vs {
                println!("{}:", v.name);
                print!("{}", describe_variant(v, &nest, &k.program));
            }
            Ok(())
        }
        "tune" => {
            let (name, optargs) = rest
                .split_first()
                .ok_or("usage: eco tune <kernel> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(optargs)?;
            // Like --trace/--events, an unwritable manifest path must
            // fail before the search runs, not after.
            if let Some(path) = &opts.manifest {
                std::fs::File::create(path)
                    .map_err(|e| format!("cannot create manifest file {path}: {e}"))?;
            }
            let mut optimizer = Optimizer::new(opts.machine.clone());
            optimizer.opts.search_n = opts.search_n;
            optimizer.opts.strategy = opts.strategy.clone();
            let config = opts.engine_config();
            let request = OptimizeRequest::new(k.clone()).engine(config.clone());
            let report = optimizer.run(request).map_err(|e| e.to_string())?;
            if let Some(path) = &opts.manifest {
                let doc = run_manifest(&k.name, &opts.machine, &optimizer.opts, &config, &report);
                std::fs::write(path, doc.render())
                    .map_err(|e| format!("cannot write manifest file {path}: {e}"))?;
            }
            let tuned = report.tuned;
            println!(
                "selected {} with {:?}, prefetches {:?}",
                tuned.variant.name, tuned.params, tuned.prefetches
            );
            println!(
                "search: {} points over {} variants ({} fully searched)",
                tuned.stats.points, tuned.stats.variants_derived, tuned.stats.variants_searched
            );
            println!(
                "engine: {} points requested, {} evaluated, {} memo hits ({:.0}% hit rate)",
                report.engine.requested,
                report.engine.evaluated,
                report.engine.cache_hits,
                report.engine.hit_rate() * 100.0
            );
            println!(
                "at N={}: {:.1} MFLOPS ({} cycles)",
                opts.search_n,
                tuned.counters.mflops(opts.machine.clock_mhz),
                tuned.counters.cycles()
            );
            if opts.code {
                print!("\n{}", tuned.program);
            }
            Ok(())
        }
        "measure" => {
            let (name, optargs) = rest
                .split_first()
                .ok_or("usage: eco measure <kernel> --n <N> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(optargs)?;
            let engine = Engine::with_config(opts.machine.clone(), opts.engine_config())
                .map_err(|e| e.to_string())?;
            let params = Params::new().with(k.size, opts.n);
            let job =
                EvalJob::new(k.program.clone(), params).with_label(format!("{}/measure", k.name));
            let c = engine.eval(job).map_err(|e| e.to_string())?;
            println!("{} at N={} on {}:", k.name, opts.n, opts.machine.name);
            println!(
                "  loads {}  stores {}  L1 misses {}  L2 misses {}  TLB {}  cycles {}  {:.1} MFLOPS",
                c.loads,
                c.stores,
                c.cache_misses[0],
                c.cache_misses.get(1).copied().unwrap_or(0),
                c.tlb_misses,
                c.cycles(),
                c.mflops(opts.machine.clock_mhz)
            );
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}
