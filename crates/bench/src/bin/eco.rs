//! `eco` — command-line front end to the optimizer.
//!
//! ```text
//! eco kernels                         list built-in kernels
//! eco show <kernel>                   print a kernel's source nest
//! eco variants <kernel> [opts]        Phase 1: derived variants (Table-4 style)
//! eco tune <kernel> [opts]            Phase 1 + 2: full optimization
//! eco lint <kernel> [opts]            statically certify every derived variant
//! eco lint --sched [--seed S] [--schedules N]
//!                                     concurrency lint: explore service-layer
//!                                     interleavings, fail on ECO-S diagnostics
//! eco measure <kernel> --n <N> [opts] simulate the untransformed kernel
//! eco report --events PATH [opts]     analyze an event stream (see below)
//! eco report --compare OLD NEW        benchmark-trajectory regression gate
//! eco serve [opts]                    autotuning daemon on a Unix socket
//! eco client <op> [opts]              one request against a running daemon
//! eco top [--socket S] [--once]       live metrics dashboard for a daemon
//! eco trace [FINGERPRINT] [opts]      span-tree report of a served request
//!
//! options:
//!   --machine sgi|sun    target machine model       (default sgi)
//!   --scale F            shrink the machine by F    (default 32; 1 = full size)
//!   --n N                problem size               (default 96)
//!   --search-n N         tuning size for `tune`     (default 96)
//!   --strategy S         guided|grid|random         (default guided)
//!   --threads N          evaluation threads         (default 0 = auto)
//!   --engine E           plan|reference             (default plan)
//!   --store DIR          persistent result store shared across processes;
//!                        a second run warm-starts from the first's results
//!   --certify            statically certify every candidate before it is
//!                        measured (tune; always on in debug builds)
//!   --trace FILE         write a JSONL line per evaluated point to FILE
//!   --events FILE        write the structured observability event stream to FILE
//!   --manifest FILE      write the deterministic run manifest to FILE (tune)
//!   --code               also print generated code  (tune)
//! ```
//!
//! serve options (see DESIGN.md "Service layer" for the protocol):
//!   --socket PATH        Unix socket to listen on   (default eco.sock)
//!   --threads/--engine/--store  engine configuration for every request
//!   --events FILE        request-level serve event stream
//!   --log-level L        stderr verbosity: quiet|info|debug (default info)
//!   --slow-ms N          slow-request log threshold in ms (default 1000)
//!
//! client ops: `ping`, `stats`, `store-stats`, `shutdown` print the
//! server's JSON response; `metrics` prints the daemon's Prometheus
//! text exposition; `watch <FINGERPRINT>` streams a live request's
//! event lines until it completes; `tune <kernel>` takes the tune
//! options above (machine, search size, strategy, certify, manifest)
//! and sends one serialized `TuneRequest` — the daemon answers with
//! the same deterministic manifest a local `eco tune --manifest`
//! writes.
//!
//! `eco top` polls the daemon's `metrics` op and renders a
//! serve/engine/store/sweep dashboard with rates and latency
//! quantiles (`--interval SECS`, default 2); `--once` prints a single
//! deterministic snapshot. `eco trace [FINGERPRINT]` fetches a
//! completed request's stored event stream from the daemon (latest
//! request when the fingerprint is omitted) and renders it through
//! the `eco report` span-tree profile.
//!
//! report options:
//!   --events PATH        event stream file, or a directory of `*.jsonl` streams
//!   --manifest FILE      run manifest; adds a `tuned` attribution table
//!   --out DIR            also write report.txt/report.html and per-stream CSVs
//!   --machine/--scale    machine override for attribution (default: resolved
//!                        from the stream's engine_init fingerprint)
//!   --threads N          re-measurement threads for attribution
//!   --buf-size N         stream read buffer (any value: same report bytes)
//!   --no-attribution     skip the attributed re-measurement pass
//!   --compare OLD NEW    compare two trajectory JSON files instead
//!   --threshold PCT      allowed regression in percent (default 25)
//!                        (with --compare, --out FILE writes the comparison
//!                        as a standalone HTML page — the CI artifact)
//!
//! `tune` and `measure` run on the parallel memoized evaluation engine;
//! `tune` reports the engine's work alongside the search statistics.
//! Each `--trace` record carries the point's label, parameters,
//! memo-hit flag, wall-clock time and simulated counters; `--events`
//! captures the span/event stream (search stages, per-point results,
//! plan compilations) and `--manifest` the byte-deterministic run
//! manifest (see DESIGN.md for both schemas). All three files are
//! created up front, so an unwritable path fails before the search
//! starts.

use eco_analysis::NestInfo;
use eco_bench::cli::{flag_value, parse_machine, EngineFlags};
use eco_bench::serve::{self, LogLevel, ServeConfig, Server};
use eco_core::{
    derive_variants, describe_variant, run_manifest, EngineConfig, SearchOptions, SearchStrategy,
    TuneRequest,
};
use eco_exec::{Engine, EvalJob, Evaluator, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

struct Opts {
    machine: MachineDesc,
    n: i64,
    search_n: i64,
    strategy: SearchStrategy,
    engine: EngineFlags,
    certify: bool,
    trace: Option<String>,
    events: Option<String>,
    manifest: Option<String>,
    code: bool,
}

impl Opts {
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = self.engine.apply(EngineConfig::new());
        if let Some(path) = &self.trace {
            cfg = cfg.trace(path.clone());
        }
        if let Some(path) = &self.events {
            cfg = cfg.events(path.clone());
        }
        cfg
    }

    /// The search options the tune command runs with: the command-line
    /// size/strategy/certify over the library defaults.
    fn search_options(&self) -> Result<SearchOptions, String> {
        SearchOptions::builder()
            .search_n(self.search_n)
            .strategy(self.strategy.clone())
            .certify(cfg!(debug_assertions) || self.certify)
            .build()
            .map_err(|e| e.to_string())
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut machine = "sgi".to_string();
    let mut scale = 32usize;
    let mut n = 96i64;
    let mut search_n = 96i64;
    let mut strategy = SearchStrategy::Guided;
    let mut engine = EngineFlags::new();
    let mut certify = false;
    let mut trace = None;
    let mut events = None;
    let mut manifest = None;
    let mut code = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => machine = flag_value("--machine", &mut it)?,
            "--scale" => {
                scale = flag_value("--scale", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--n" => {
                n = flag_value("--n", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --n: {e}"))?
            }
            "--search-n" => {
                search_n = flag_value("--search-n", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --search-n: {e}"))?
            }
            "--strategy" => {
                strategy = match flag_value("--strategy", &mut it)?.as_str() {
                    "guided" => SearchStrategy::Guided,
                    "grid" => SearchStrategy::Grid { max_points: 300 },
                    "random" => SearchStrategy::Random {
                        points: 60,
                        seed: 42,
                    },
                    other => return Err(format!("unknown strategy {other}")),
                }
            }
            "--certify" => certify = true,
            "--trace" => trace = Some(flag_value("--trace", &mut it)?),
            "--events" => events = Some(flag_value("--events", &mut it)?),
            "--manifest" => manifest = Some(flag_value("--manifest", &mut it)?),
            "--code" => code = true,
            other => {
                if !engine.accept(other, &mut it)? {
                    return Err(format!("unknown option {other}"));
                }
            }
        }
    }
    let machine = parse_machine(&machine, scale)?;
    Ok(Opts {
        machine,
        n,
        search_n,
        strategy,
        engine,
        certify,
        trace,
        events,
        manifest,
        code,
    })
}

fn find_kernel(name: &str) -> Result<Kernel, String> {
    Kernel::all()
        .into_iter()
        .find(|k| k.name == name)
        .ok_or_else(|| {
            format!(
                "unknown kernel {name}; try one of: {}",
                Kernel::all()
                    .iter()
                    .map(|k| k.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => dispatch(cmd, rest),
        None => Err(
            "usage: eco <kernels|show|variants|tune|lint|measure|report|serve|client|top|trace> ..."
                .into(),
        ),
    };
    if let Err(e) = result {
        eprintln!("eco: {e}");
        std::process::exit(2);
    }
}

fn dispatch(cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "kernels" => {
            for k in Kernel::all() {
                println!(
                    "{:10} ({} loops, {} arrays)",
                    k.name,
                    {
                        let nest = NestInfo::from_program(&k.program).map_err(|e| e.to_string())?;
                        nest.loops.len()
                    },
                    k.program.arrays.len()
                );
            }
            Ok(())
        }
        "show" => {
            let (name, _) = rest.split_first().ok_or("usage: eco show <kernel>")?;
            let k = find_kernel(name)?;
            print!("{}", k.program);
            Ok(())
        }
        "variants" => {
            let (name, opts) = rest
                .split_first()
                .ok_or("usage: eco variants <kernel> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(opts)?;
            let nest = NestInfo::from_program(&k.program).map_err(|e| e.to_string())?;
            let vs = derive_variants(&nest, &opts.machine, &k.program);
            println!(
                "{} variants for {} on {}:",
                vs.len(),
                k.name,
                opts.machine.name
            );
            for v in &vs {
                println!("{}:", v.name);
                print!("{}", describe_variant(v, &nest, &k.program));
            }
            Ok(())
        }
        "tune" => {
            let (name, optargs) = rest
                .split_first()
                .ok_or("usage: eco tune <kernel> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(optargs)?;
            // Like --trace/--events, an unwritable manifest path must
            // fail before the search runs, not after.
            if let Some(path) = &opts.manifest {
                std::fs::File::create(path)
                    .map_err(|e| format!("cannot create manifest file {path}: {e}"))?;
            }
            let sopts = opts.search_options()?;
            let config = opts.engine_config();
            let report = TuneRequest::new(k.clone(), opts.machine.clone())
                .options(sopts.clone())
                .engine(config.clone())
                .run()
                .map_err(|e| e.to_string())?;
            if let Some(path) = &opts.manifest {
                let doc = run_manifest(&k.name, &opts.machine, &sopts, &config, &report);
                std::fs::write(path, doc.render())
                    .map_err(|e| format!("cannot write manifest file {path}: {e}"))?;
            }
            let tuned = report.tuned;
            println!(
                "selected {} with {:?}, prefetches {:?}",
                tuned.variant.name, tuned.params, tuned.prefetches
            );
            println!(
                "search: {} points over {} variants ({} fully searched)",
                tuned.stats.points, tuned.stats.variants_derived, tuned.stats.variants_searched
            );
            if sopts.certify {
                println!(
                    "certify: {} candidates certified, {} rejected",
                    tuned.stats.points_certified, tuned.stats.points_rejected
                );
            }
            println!(
                "engine: {} points requested, {} evaluated, {} memo hits ({:.0}% hit rate)",
                report.engine.requested,
                report.engine.evaluated,
                report.engine.cache_hits,
                report.engine.hit_rate() * 100.0
            );
            if opts.engine.store.is_some() {
                println!(
                    "store: {} hits of {} evaluated",
                    report.engine.store_hits, report.engine.evaluated
                );
            }
            println!(
                "at N={}: {:.1} MFLOPS ({} cycles)",
                opts.search_n,
                tuned.counters.mflops(opts.machine.clock_mhz),
                tuned.counters.cycles()
            );
            if opts.code {
                print!("\n{}", tuned.program);
            }
            Ok(())
        }
        "lint" => {
            if rest.first().map(String::as_str) == Some("--sched") {
                return lint_sched(&rest[1..]);
            }
            let (name, optargs) = rest
                .split_first()
                .ok_or("usage: eco lint <kernel> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(optargs)?;
            let entries =
                eco_core::lint_kernel(&k, &opts.machine, opts.n, 8).map_err(|e| e.to_string())?;
            let mut bad = 0usize;
            for e in &entries {
                let c = &e.cert;
                if c.ok() {
                    println!(
                        "{:<16} {:<16} ok ({} subscripts, {} dependences checked)",
                        e.variant, e.artifact, c.checked_refs, c.checked_deps
                    );
                } else {
                    bad += 1;
                    println!("{:<16} {:<16} FAILED", e.variant, e.artifact);
                    print!("{}", c.render());
                }
            }
            println!(
                "{}: {} of {} artifacts certified at N={}",
                k.name,
                entries.len() - bad,
                entries.len(),
                opts.n
            );
            if bad > 0 {
                std::process::exit(1);
            }
            Ok(())
        }
        "measure" => {
            let (name, optargs) = rest
                .split_first()
                .ok_or("usage: eco measure <kernel> --n <N> [opts]")?;
            let k = find_kernel(name)?;
            let opts = parse_opts(optargs)?;
            let engine = Engine::with_config(opts.machine.clone(), opts.engine_config())
                .map_err(|e| e.to_string())?;
            let params = Params::new().with(k.size, opts.n);
            let job =
                EvalJob::new(k.program.clone(), params).with_label(format!("{}/measure", k.name));
            let c = engine.eval(job).map_err(|e| e.to_string())?;
            println!("{} at N={} on {}:", k.name, opts.n, opts.machine.name);
            println!(
                "  loads {}  stores {}  L1 misses {}  L2 misses {}  TLB {}  cycles {}  {:.1} MFLOPS",
                c.loads,
                c.stores,
                c.cache_misses[0],
                c.cache_misses.get(1).copied().unwrap_or(0),
                c.tlb_misses,
                c.cycles(),
                c.mflops(opts.machine.clock_mhz)
            );
            Ok(())
        }
        "report" => report_cmd(rest),
        "serve" => serve_cmd(rest),
        "client" => client_cmd(rest),
        "top" => top_cmd(rest),
        "trace" => trace_cmd(rest),
        other => Err(format!("unknown command {other}")),
    }
}

fn serve_cmd(rest: &[String]) -> Result<(), String> {
    let mut socket = "eco.sock".to_string();
    let mut engine = EngineFlags::new();
    let mut events = None;
    let mut log_level = LogLevel::default();
    let mut slow_ms = 1000u64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = flag_value("--socket", &mut it)?,
            "--events" => events = Some(flag_value("--events", &mut it)?),
            "--log-level" => log_level = LogLevel::parse(&flag_value("--log-level", &mut it)?)?,
            "--slow-ms" => {
                slow_ms = flag_value("--slow-ms", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --slow-ms: {e}"))?
            }
            other => {
                if !engine.accept(other, &mut it)? {
                    return Err(format!("unknown serve option {other}"));
                }
            }
        }
    }
    let server = Server::bind(ServeConfig {
        socket: socket.into(),
        engine: engine.apply(EngineConfig::new()),
        events,
        log_level,
        slow_ms,
    })?;
    server.run()
}

/// `eco lint --sched`: the concurrency lint. Runs the built-in
/// eco-sched checker models over the service layer's shared-state
/// protocols and the lock-order analysis across every explored
/// schedule; prints one deterministic block per model and exits
/// nonzero on any ECO-S diagnostic.
fn lint_sched(rest: &[String]) -> Result<(), String> {
    let mut cfg = eco_sched::Config::from_env();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = flag_value("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--schedules" => {
                cfg.max_schedules = flag_value("--schedules", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --schedules: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown lint --sched option {other} (expected --seed, --schedules)"
                ))
            }
        }
    }
    let reports = eco_core::lint_sched(&cfg);
    let mut schedules = 0u64;
    let mut findings = 0usize;
    for m in &reports {
        let r = &m.report;
        schedules += r.schedules;
        println!("{:<24} {}", m.name, m.covers);
        println!(
            "  schedules: {}{}  seed: {}",
            r.schedules,
            if r.truncated { " (cap reached)" } else { "" },
            r.seed
        );
        for (from, to) in &r.edges {
            println!("  lock order: {from} -> {to}");
        }
        if r.is_clean() {
            println!("  clean");
        }
        for d in &r.diags {
            findings += 1;
            println!("{}", d.render());
        }
    }
    println!(
        "sched lint: {} models, {} schedules explored, {} diagnostics",
        reports.len(),
        schedules,
        findings
    );
    if findings > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn top_cmd(rest: &[String]) -> Result<(), String> {
    let mut socket = "eco.sock".to_string();
    let mut once = false;
    let mut interval = 2.0f64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = flag_value("--socket", &mut it)?,
            "--once" => once = true,
            "--interval" => {
                interval = flag_value("--interval", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --interval: {e}"))?
            }
            other => return Err(format!("unknown top option {other}")),
        }
    }
    eco_bench::top::run(std::path::Path::new(&socket), once, interval)
}

fn trace_cmd(rest: &[String]) -> Result<(), String> {
    use eco_core::events::Json;
    let mut socket = "eco.sock".to_string();
    let mut fingerprint: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = flag_value("--socket", &mut it)?,
            other if fingerprint.is_none() && !other.starts_with("--") => {
                fingerprint = Some(other.to_string());
            }
            other => return Err(format!("unknown trace option {other}")),
        }
    }
    let mut line = Json::obj().field("op", Json::str("trace"));
    if let Some(fp) = &fingerprint {
        line = line.field("fingerprint", Json::str(fp));
    }
    let response = serve::request(std::path::Path::new(&socket), &line)?;
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("trace request failed");
        return Err(format!("server: {msg}"));
    }
    let fp = response
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap_or("?");
    let op = response.get("op").and_then(Json::as_str).unwrap_or("?");
    let events = response
        .get("events")
        .and_then(Json::as_str)
        .ok_or("trace response has no 'events' field")?;
    println!("trace {fp} ({op} request)");
    if events.trim().is_empty() {
        println!("(no events captured for this request)");
    } else {
        // The stored stream renders through the same span-tree profile
        // as `eco report`; attribution needs a live engine, so skip it.
        let opts = eco_report::ReportOptions {
            attribute: false,
            ..Default::default()
        };
        let report = eco_report::analyze_stream(events, &format!("trace:{fp}"), &opts)?;
        print!("{}", eco_report::render_profile_ascii(&report));
    }
    if let Some(doc) = response.get("response") {
        if let Some(stats) = doc.get("engine_stats") {
            println!("engine: {}", stats.render_compact());
        }
        if let Some(variant) = doc
            .get_path("manifest.selected.variant")
            .and_then(Json::as_str)
        {
            let cycles = doc
                .get_path("manifest.selected.cycles")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            println!("selected {variant} ({cycles} cycles)");
        }
    }
    Ok(())
}

fn client_cmd(rest: &[String]) -> Result<(), String> {
    use eco_core::events::Json;
    let usage = "usage: eco client <ping|stats|store-stats|metrics|watch|shutdown|tune> \
                 [--socket PATH] [watch: <FINGERPRINT>] [tune: <kernel> --machine M --scale F \
                 --search-n N --strategy S --certify --manifest FILE]";
    let (op, rest) = rest.split_first().ok_or(usage)?;
    let mut socket = "eco.sock".to_string();
    let mut manifest = None;
    let mut tune_args = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = flag_value("--socket", &mut it)?,
            "--manifest" => manifest = Some(flag_value("--manifest", &mut it)?),
            other => tune_args.push(other.to_string()),
        }
    }
    if op == "watch" {
        let fp_text = tune_args
            .first()
            .ok_or("usage: eco client watch <FINGERPRINT> [--socket PATH]")?;
        let text = fp_text.strip_prefix("0x").unwrap_or(fp_text);
        let fp =
            u64::from_str_radix(text, 16).map_err(|e| format!("bad fingerprint {fp_text}: {e}"))?;
        // Raw JSONL to stdout: pipeable into a file for `eco report`.
        serve::watch(std::path::Path::new(&socket), fp, |line| println!("{line}"))?;
        return Ok(());
    }
    let line = match op.as_str() {
        "ping" | "stats" | "store-stats" | "metrics" | "shutdown" => {
            Json::obj().field("op", Json::str(op))
        }
        "tune" => {
            let (kernel, optargs) = tune_args
                .split_first()
                .ok_or("usage: eco client tune <kernel> [opts]")?;
            let k = find_kernel(kernel)?;
            let opts = parse_opts(optargs)?;
            // The daemon owns the engine configuration; the request only
            // says what to tune, so identical tunes from different
            // clients dedupe regardless of local flags.
            let request = TuneRequest::new(k, opts.machine.clone()).options(opts.search_options()?);
            Json::obj()
                .field("op", Json::str("tune"))
                .field("request", request.to_json())
        }
        other => return Err(format!("unknown client op {other}; {usage}")),
    };
    let response = serve::request(std::path::Path::new(&socket), &line)?;
    if !response.get("ok").and_then(Json::as_bool).unwrap_or(false) {
        let msg = response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed");
        return Err(format!("server: {msg}"));
    }
    if op == "metrics" {
        print!(
            "{}",
            response
                .get("metrics")
                .and_then(Json::as_str)
                .ok_or("metrics response has no 'metrics' field")?
        );
    } else if op == "tune" {
        let doc = response
            .get("manifest")
            .ok_or("server response has no manifest")?;
        if let Some(path) = &manifest {
            std::fs::write(path, doc.render())
                .map_err(|e| format!("cannot write manifest file {path}: {e}"))?;
        }
        let variant = doc
            .get_path("selected.variant")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let cycles = doc
            .get_path("selected.cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        println!("selected {variant} ({cycles} cycles)");
        if let Some(stats) = response.get("engine_stats") {
            println!("engine: {}", stats.render_compact());
        }
    } else {
        println!("{}", response.render_compact());
    }
    Ok(())
}

struct ReportArgs {
    events: Option<String>,
    manifest: Option<String>,
    out: Option<String>,
    machine: Option<MachineDesc>,
    threads: usize,
    buf_size: usize,
    attribute: bool,
    compare: Option<(String, String)>,
    threshold: f64,
}

fn parse_report_args(args: &[String]) -> Result<ReportArgs, String> {
    let mut events = None;
    let mut manifest = None;
    let mut out = None;
    let mut machine_name: Option<String> = None;
    let mut scale = 32usize;
    let mut threads = 0usize;
    let mut buf_size = 64 * 1024;
    let mut attribute = true;
    let mut compare = None;
    let mut threshold = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--events" => events = Some(flag_value("--events", &mut it)?),
            "--manifest" => manifest = Some(flag_value("--manifest", &mut it)?),
            "--out" => out = Some(flag_value("--out", &mut it)?),
            "--machine" => machine_name = Some(flag_value("--machine", &mut it)?),
            "--scale" => {
                scale = flag_value("--scale", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--threads" => {
                threads = flag_value("--threads", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--buf-size" => {
                buf_size = flag_value("--buf-size", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --buf-size: {e}"))?
            }
            "--no-attribution" => attribute = false,
            "--compare" => {
                let old = flag_value("--compare", &mut it)?;
                let new = flag_value("--compare", &mut it)?;
                compare = Some((old, new));
            }
            "--threshold" => {
                threshold = flag_value("--threshold", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?
            }
            other => return Err(format!("unknown report option {other}")),
        }
    }
    let machine = match machine_name.as_deref() {
        None => None,
        Some(name) => Some(parse_machine(name, scale)?),
    };
    Ok(ReportArgs {
        events,
        manifest,
        out,
        machine,
        threads,
        buf_size,
        attribute,
        compare,
        threshold,
    })
}

/// The tuned point recorded in a run manifest: `(variant, params)`.
fn manifest_tuned(path: &str) -> Result<(String, Vec<(String, u64)>), String> {
    use eco_core::events::Json;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read manifest {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("manifest {path}: {e}"))?;
    let variant = doc
        .get_path("selected.variant")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("manifest {path}: no selected.variant"))?
        .to_string();
    let params = match doc.get_path("selected.params") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|u| (k.clone(), u)))
            .collect(),
        _ => Vec::new(),
    };
    Ok((variant, params))
}

/// Event stream files for `--events`: the path itself, or every
/// `*.jsonl` inside it (sorted, so reports are ordered
/// deterministically).
fn stream_files(path: &str) -> Result<Vec<std::path::PathBuf>, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if meta.is_file() {
        return Ok(vec![path.into()]);
    }
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{path}: no *.jsonl event streams found"));
    }
    Ok(files)
}

fn report_cmd(rest: &[String]) -> Result<(), String> {
    use eco_core::events::Json;
    let args = parse_report_args(rest)?;

    if let Some((old_path, new_path)) = &args.compare {
        let old = Json::parse(
            &std::fs::read_to_string(old_path)
                .map_err(|e| format!("cannot read {old_path}: {e}"))?,
        )
        .map_err(|e| format!("{old_path}: {e}"))?;
        let new = Json::parse(
            &std::fs::read_to_string(new_path)
                .map_err(|e| format!("cannot read {new_path}: {e}"))?,
        )
        .map_err(|e| format!("{new_path}: {e}"))?;
        let cmp = eco_report::compare_trajectories(&old, &new, args.threshold);
        print!("{}", eco_report::render_comparison(&cmp));
        if let Some(out) = &args.out {
            // The HTML page is written before the pass/fail exit so CI
            // can upload it as an artifact even when the gate fails.
            std::fs::write(out, eco_report::render_comparison_html(&cmp))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        if !cmp.passed() {
            std::process::exit(1);
        }
        return Ok(());
    }

    let events = args
        .events
        .as_deref()
        .ok_or("usage: eco report --events PATH | --compare OLD NEW")?;
    let mut opts = eco_report::ReportOptions {
        buf_size: args.buf_size,
        attribute: args.attribute,
        ..Default::default()
    };
    opts.attribution.machine = args.machine.clone();
    opts.attribution.threads = args.threads;
    if let Some(path) = &args.manifest {
        opts.attribution.tuned = Some(manifest_tuned(path)?);
    }

    let mut reports = Vec::new();
    for file in stream_files(events)? {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let source = file.file_name().map_or_else(
            || file.display().to_string(),
            |n| n.to_string_lossy().into(),
        );
        reports.push((
            file.clone(),
            eco_report::analyze_stream(&text, &source, &opts)?,
        ));
    }

    for (_, report) in &reports {
        print!("{}", eco_report::render_profile_ascii(report));
        if !report.attribution.is_empty() {
            print!(
                "{}",
                eco_report::render_attribution_ascii(&report.attribution)
            );
        }
        if let Some(e) = &report.attribution_error {
            println!("\n(attribution skipped: {e})");
        }
        println!();
    }

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        let mut text = String::new();
        for (file, report) in &reports {
            text.push_str(&eco_report::render_profile_ascii(report));
            text.push_str(&eco_report::render_attribution_ascii(&report.attribution));
            text.push('\n');
            let stem = file
                .file_stem()
                .map_or_else(|| "stream".to_string(), |s| s.to_string_lossy().into());
            std::fs::write(
                format!("{dir}/{stem}.profile.csv"),
                eco_report::render_profile_csv(&report.profile),
            )
            .map_err(|e| format!("cannot write profile CSV: {e}"))?;
            std::fs::write(
                format!("{dir}/{stem}.attribution.csv"),
                eco_report::render_attribution_csv(&report.attribution),
            )
            .map_err(|e| format!("cannot write attribution CSV: {e}"))?;
        }
        std::fs::write(format!("{dir}/report.txt"), text)
            .map_err(|e| format!("cannot write report.txt: {e}"))?;
        let only: Vec<eco_report::RunReport> = reports.iter().map(|(_, r)| r.clone()).collect();
        std::fs::write(format!("{dir}/report.html"), eco_report::render_html(&only))
            .map_err(|e| format!("cannot write report.html: {e}"))?;
        println!("wrote report.txt, report.html and per-stream CSVs to {dir}/");
    }
    Ok(())
}
