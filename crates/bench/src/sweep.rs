//! Shard execution and gathering: the *execute* and *gather* layers of
//! the plan/execute/gather sweep pipeline (DESIGN.md §"Sharded
//! sweeps"). The *plan* layer is [`eco_core::SweepPlan`].
//!
//! [`execute_shard`] runs one [`Shard`] to completion on a fresh
//! engine and returns a self-describing result document;
//! [`run_sweep`] orchestrates a whole plan — a local pool of worker
//! processes (`repro shard` children) or an `eco serve` daemon
//! (`--remote SOCKET`) — against a shared result store; [`gather`]
//! joins the per-shard results back into the figure's [`Sweep`] and
//! run manifest in plan order.
//!
//! Byte-identity with the serial path rests on three properties:
//! every shard runs on a *fresh* engine (a warm in-process memo cache
//! would shift the manifest's cache-hit counts), counters cross the
//! shard boundary through `eco-store`'s exact u64 encoding (never
//! floats), and store hits count as evaluated work, so a manifest
//! built against a warm shared store matches a cold serial run.
//! `repro check --workers N` gates the result.
//!
//! Resume is free: a worker marks its own shard complete in the store
//! (`shards/<fp>.json`, exempt from gc), so a killed sweep re-run
//! skips every completed shard and a dead worker costs one shard, not
//! the sweep.

use crate::figures::{self, RunOpts};
use crate::Sweep;
use eco_core::events::{names, Attrs, EventStream, Fnv64, Json};
use eco_core::{Engine, EngineConfig, Evaluator, Shard, ShardKind, SweepPlan, SweepSpec};
use eco_exec::{EvalJob, Params};
use eco_metrics::{Counter, Gauge, Registry};
use eco_store::{counters_from_json, counters_to_json, ResultStore};
use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Version stamped into every shard result document.
pub const RESULT_VERSION: u64 = 1;

fn hex(fp: u64) -> String {
    format!("{fp:#018x}")
}

/// Process-wide sweep counters (see `eco-metrics`): shard lifecycle
/// totals and a points-per-second throughput gauge. Observability
/// only — never read back into sweep decisions, manifests or goldens.
struct SweepMetrics {
    started: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    resumed: Arc<Counter>,
    points_per_second: Arc<Gauge>,
}

impl SweepMetrics {
    fn resolve() -> SweepMetrics {
        let r = Registry::global();
        SweepMetrics {
            started: r.counter(
                "eco_sweep_shards_started_total",
                "Shard executions started in this process.",
                &[],
            ),
            completed: r.counter(
                "eco_sweep_shards_completed_total",
                "Shard executions that finished successfully.",
                &[],
            ),
            failed: r.counter(
                "eco_sweep_shards_failed_total",
                "Shard executions that returned an error.",
                &[],
            ),
            resumed: r.counter(
                "eco_sweep_shards_resumed_total",
                "Shards skipped because a completion record already existed.",
                &[],
            ),
            points_per_second: r.gauge(
                "eco_sweep_points_per_second",
                "Requested evaluation points per wall second of the most recent shard.",
                &[],
            ),
        }
    }
}

/// Executes one shard on a fresh engine built from `config`, wrapping
/// the work in a `shard` span on the engine's event stream.
///
/// Tune shards run the family's search (warming the shared store);
/// the ECO tune shard additionally embeds the figure's run manifest.
/// Measure shards evaluate the family's program at each shard size
/// and record the exact counters.
///
/// # Errors
///
/// Returns a message when the engine cannot be built, the family is
/// unknown, a search fails, or a measurement fails.
pub fn execute_shard(shard: &Shard, config: EngineConfig) -> Result<Json, String> {
    execute_shard_with_events(shard, config, None)
}

/// [`execute_shard`] with an injected event stream: the daemon routes
/// a shard's search/engine events into the in-memory buffer its
/// `watch` op tails. `None` falls back to the config's `events_path`.
///
/// # Errors
///
/// Same conditions as [`execute_shard`].
pub fn execute_shard_with_events(
    shard: &Shard,
    config: EngineConfig,
    injected_events: Option<Arc<EventStream>>,
) -> Result<Json, String> {
    let metrics = SweepMetrics::resolve();
    metrics.started.inc();
    let started = Instant::now();
    let engine = Engine::with_config_and_events(shard.machine.clone(), config, injected_events)
        .map_err(|e| format!("shard engine: {e}"))?;
    // Span-less bracketing events: the search and evaluation open
    // their own root spans on this stream, so a wrapping span here
    // would break the nesting invariant `check_stream` enforces.
    let scope = eco_core::events::Scope::new(engine.events().cloned());
    scope.event(
        names::SHARD,
        None,
        Attrs::new()
            .str("figure", &shard.figure)
            .str("family", &shard.family)
            .str("kind", shard.kind.as_str())
            .str("fingerprint", hex(shard.fingerprint())),
    );
    let result = execute_on(shard, &engine);
    let mut attrs = Attrs::new()
        .str("fingerprint", hex(shard.fingerprint()))
        .bool("ok", result.is_ok());
    if let Err(error) = &result {
        attrs = attrs.str("error", error);
    }
    scope.event(names::SHARD_DONE, None, attrs);
    scope.flush();
    match &result {
        Ok(_) => {
            metrics.completed.inc();
            let wall = started.elapsed().as_secs_f64();
            if wall > 0.0 {
                let pps = engine.stats().requested as f64 / wall;
                metrics.points_per_second.set(pps as i64);
            }
        }
        Err(_) => metrics.failed.inc(),
    }
    result
}

fn execute_on(shard: &Shard, engine: &Engine) -> Result<Json, String> {
    let (programs, tuned) =
        figures::family_programs(&shard.family, &shard.kernel, engine, shard.search_n, false)?;
    let mut doc = Json::obj()
        .field("result_version", Json::UInt(RESULT_VERSION))
        .field("shard", Json::fingerprint(shard.fingerprint()))
        .field("figure", Json::str(&shard.figure))
        .field("family", Json::str(&shard.family))
        .field("kind", Json::str(shard.kind.as_str()));
    match shard.kind {
        ShardKind::Tune => {
            if let Some(tuned) = &tuned {
                // Built immediately after the search, while the fresh
                // engine's stats describe the search alone — the same
                // window the serial runner uses.
                let manifest = figures::figure_manifest(
                    &shard.kernel,
                    engine,
                    &EngineConfig::new().backend(engine.backend()),
                    shard.search_n,
                    tuned,
                );
                let parsed = Json::parse(&manifest)
                    .map_err(|e| format!("shard manifest does not parse: {e}"))?;
                doc = doc.field("manifest", parsed).field(
                    "manifest_fingerprint",
                    Json::fingerprint(Fnv64::hash_bytes(manifest.as_bytes())),
                );
            }
        }
        ShardKind::Measure => {
            let jobs: Vec<EvalJob> = shard
                .sizes
                .iter()
                .map(|&n| {
                    EvalJob::new(programs(n), Params::new().with(shard.kernel.size, n))
                        .with_label(format!("{}/N={n}", shard.family))
                })
                .collect();
            let results = engine.eval_batch(&jobs);
            let mut points = Vec::with_capacity(results.len());
            for (i, r) in results.into_iter().enumerate() {
                let n = shard.sizes[i];
                let c = r.map_err(|e| format!("{} at N={n}: {e}", shard.family))?;
                points.push(
                    Json::obj()
                        .field("n", Json::Int(n))
                        .field("counters", counters_to_json(&c)),
                );
            }
            doc = doc.field("points", Json::Arr(points));
        }
    }
    let s = engine.stats();
    Ok(doc.field(
        "engine_stats",
        Json::obj()
            .field("requested", Json::UInt(s.requested))
            .field("evaluated", Json::UInt(s.evaluated))
            .field("cache_hits", Json::UInt(s.cache_hits))
            .field("store_hits", Json::UInt(s.store_hits)),
    ))
}

fn check_envelope(doc: &Json, shard: &Shard) -> Result<(), String> {
    let fp = shard.fingerprint();
    if doc.get("result_version").and_then(Json::as_u64) != Some(RESULT_VERSION) {
        return Err(format!(
            "gather: shard {}: unsupported result_version",
            hex(fp)
        ));
    }
    if doc.get("shard").and_then(Json::as_str) != Some(hex(fp).as_str()) {
        return Err(format!(
            "gather: shard {}: result echoes a different shard",
            hex(fp)
        ));
    }
    let fields = [
        ("figure", shard.figure.as_str()),
        ("family", shard.family.as_str()),
        ("kind", shard.kind.as_str()),
    ];
    for (field, want) in fields {
        if doc.get(field).and_then(Json::as_str) != Some(want) {
            return Err(format!(
                "gather: shard {}: result field '{field}' is not '{want}'",
                hex(fp)
            ));
        }
    }
    Ok(())
}

/// Joins per-shard results back into the figure's [`Sweep`] and run
/// manifest, in plan order. `results` maps shard fingerprints to the
/// documents [`execute_shard`] produced.
///
/// The manifest comes from the first tune shard that embedded one (the
/// ECO family), re-rendered from its parsed form (render∘parse is the
/// identity on rendered documents) and checked against its recorded
/// fingerprint. Each family's MFLOPS series is the concatenation of
/// its measure shards' exact counters, converted with the spec
/// machine's clock — the same arithmetic the serial `mflops_sweep`
/// does, so the gathered CSV is byte-identical.
///
/// # Errors
///
/// Returns a message for a missing or mismatched result, a corrupt
/// manifest, or incomplete size coverage.
pub fn gather(
    spec: &SweepSpec,
    plan: &SweepPlan,
    results: &BTreeMap<u64, Json>,
) -> Result<(Sweep, String), String> {
    let mut manifest = String::new();
    for shard in plan.tune_shards() {
        let fp = shard.fingerprint();
        let doc = results
            .get(&fp)
            .ok_or_else(|| format!("gather: missing result for tune shard {}", hex(fp)))?;
        check_envelope(doc, shard)?;
        let Some(m) = doc.get("manifest") else {
            continue;
        };
        let text = m.render();
        let want = doc
            .get("manifest_fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("gather: shard {}: manifest without fingerprint", hex(fp)))?;
        let got = hex(Fnv64::hash_bytes(text.as_bytes()));
        if want != got {
            return Err(format!(
                "gather: shard {}: manifest fingerprint {got} does not match recorded {want}",
                hex(fp)
            ));
        }
        if manifest.is_empty() {
            manifest = text;
        }
    }
    if manifest.is_empty() {
        return Err("gather: no tune shard produced a manifest".into());
    }

    let mut sweep = Sweep {
        sizes: spec.sizes.clone(),
        series: Vec::with_capacity(spec.families.len()),
    };
    for family in &spec.families {
        let mut ys = Vec::with_capacity(spec.sizes.len());
        let mut covered = Vec::with_capacity(spec.sizes.len());
        for shard in plan.measure_shards().filter(|s| s.family == family.name) {
            let fp = shard.fingerprint();
            let doc = results.get(&fp).ok_or_else(|| {
                format!(
                    "gather: missing result for measure shard {} ({})",
                    hex(fp),
                    family.name
                )
            })?;
            check_envelope(doc, shard)?;
            let Some(Json::Arr(points)) = doc.get("points") else {
                return Err(format!("gather: shard {}: no points array", hex(fp)));
            };
            if points.len() != shard.sizes.len() {
                return Err(format!(
                    "gather: shard {}: {} points for {} sizes",
                    hex(fp),
                    points.len(),
                    shard.sizes.len()
                ));
            }
            for (i, point) in points.iter().enumerate() {
                let n = point
                    .get("n")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("gather: shard {}: point without n", hex(fp)))?;
                if n != shard.sizes[i] {
                    return Err(format!(
                        "gather: shard {}: point {i} is N={n}, shard says N={}",
                        hex(fp),
                        shard.sizes[i]
                    ));
                }
                let c = point
                    .get("counters")
                    .and_then(counters_from_json)
                    .ok_or_else(|| {
                        format!("gather: shard {}: corrupt counters at N={n}", hex(fp))
                    })?;
                covered.push(n);
                ys.push(c.mflops(spec.machine.clock_mhz));
            }
        }
        if covered != spec.sizes {
            return Err(format!(
                "gather: family {} covered sizes {covered:?}, figure needs {:?}",
                family.name, spec.sizes
            ));
        }
        sweep.series.push((family.name.clone(), ys));
    }
    Ok((sweep, manifest))
}

/// How [`run_sweep`] executes a plan.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Engine flags and telemetry directories for the workers
    /// (`flags.store` is superseded by [`SweepConfig::store`]).
    pub opts: RunOpts,
    /// Parallel workers (processes locally, connections remotely);
    /// clamped to at least 1.
    pub workers: usize,
    /// Measure sizes per shard (the plan's chunking).
    pub sizes_per_shard: usize,
    /// Shared result store: point records, and the shard-completion
    /// records resume keys on.
    pub store: PathBuf,
    /// Where the plan artifact, shard manifests, worker logs and the
    /// orchestrator event stream go.
    pub sweep_dir: PathBuf,
    /// The binary spawned as `<exe> shard --shard FILE …` in local
    /// mode (the `repro` binary).
    pub worker_exe: PathBuf,
    /// Unix socket of an `eco serve` daemon: execute shards remotely
    /// over the serve protocol instead of spawning local workers.
    pub remote: Option<PathBuf>,
    /// Print per-shard progress lines.
    pub verbose: bool,
}

/// What a sweep run did.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The gathered figure data.
    pub sweep: Sweep,
    /// The gathered run manifest.
    pub manifest: String,
    /// Shards in the plan.
    pub planned: usize,
    /// Shards skipped because a completion record already existed.
    pub skipped: usize,
    /// Shards executed by this run.
    pub executed: usize,
    /// Wall time of the whole run.
    pub wall_secs: f64,
}

/// One spawned worker and the shard it owns.
struct Running {
    shard: Shard,
    child: Child,
    started: Instant,
    log: PathBuf,
}

/// Emits the orchestrator-side `shard_done` event. A non-empty
/// `error` (failed shards) is recorded as an `error` attribute so
/// `eco report` shard timelines can say *why* a shard failed.
fn shard_done_event(events: &EventStream, shard: &Shard, status: &str, wall_ms: u64, error: &str) {
    let mut attrs = Attrs::new()
        .str("fingerprint", hex(shard.fingerprint()))
        .str("figure", &shard.figure)
        .str("family", &shard.family)
        .str("kind", shard.kind.as_str())
        .str("status", status)
        .uint("wall_ms", wall_ms);
    if !error.is_empty() {
        attrs = attrs.str("error", error);
    }
    events.event(names::SHARD_DONE, None, attrs);
}

fn shard_spawn_event(events: &EventStream, shard: &Shard) {
    events.event(
        names::SHARD_SPAWN,
        None,
        Attrs::new()
            .str("fingerprint", hex(shard.fingerprint()))
            .str("figure", &shard.figure)
            .str("family", &shard.family)
            .str("kind", shard.kind.as_str()),
    );
}

/// Plans, executes and gathers one figure sweep.
///
/// Execution runs in two stages — tune shards, then measure shards —
/// so measure shards start against a store the searches have warmed.
/// Within a stage up to `workers` shards run at once. Shards whose
/// completion record is already in the store are skipped. A failed or
/// crashed worker fails its shard only; the error lists every failed
/// shard and the sweep can be re-run to resume.
///
/// # Errors
///
/// Returns a message when planning, orchestration I/O, any shard, or
/// gathering fails.
pub fn run_sweep(spec: &SweepSpec, config: &SweepConfig) -> Result<SweepOutcome, String> {
    let started = Instant::now();
    let plan = SweepPlan::plan(spec, config.sizes_per_shard)?;
    for sub in ["shards", "logs", "events"] {
        let dir = config.sweep_dir.join(sub);
        fs::create_dir_all(&dir)
            .map_err(|e| format!("sweep: cannot create {}: {e}", dir.display()))?;
    }
    let plan_path = config.sweep_dir.join("plan.json");
    fs::write(&plan_path, plan.to_json().render())
        .map_err(|e| format!("sweep: cannot write {}: {e}", plan_path.display()))?;
    let store = ResultStore::open(&config.store).map_err(|e| format!("sweep store: {e}"))?;
    let events_path = config.sweep_dir.join("sweep.events.jsonl");
    let events = Arc::new(
        EventStream::to_file(&events_path)
            .map_err(|e| format!("sweep: cannot create {}: {e}", events_path.display()))?,
    );
    events.event(
        names::SWEEP_BEGIN,
        None,
        Attrs::new()
            .str("figure", &spec.figure)
            .str("plan_fingerprint", hex(plan.fingerprint()))
            .uint("shards", plan.shards.len() as u64)
            .uint("workers", config.workers.max(1) as u64),
    );

    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for stage in [ShardKind::Tune, ShardKind::Measure] {
        let pending: Vec<&Shard> = plan.shards.iter().filter(|s| s.kind == stage).collect();
        let (ex, sk) = match &config.remote {
            Some(socket) => {
                run_stage_remote(&pending, socket, &store, config, &events, &mut failures)
            }
            None => run_stage_local(&pending, &store, config, &events, &mut failures)?,
        };
        executed += ex;
        skipped += sk;
    }
    events.event(
        names::SWEEP_GATHER,
        None,
        Attrs::new()
            .uint("executed", executed as u64)
            .uint("skipped", skipped as u64)
            .uint("failed", failures.len() as u64),
    );
    events.flush();
    if !failures.is_empty() {
        return Err(format!(
            "sweep {}: {} shard(s) failed; completed shards are recorded in {} — rerun to resume:\n  {}",
            spec.figure,
            failures.len(),
            config.store.display(),
            failures.join("\n  ")
        ));
    }

    let mut results = BTreeMap::new();
    for shard in &plan.shards {
        let fp = shard.fingerprint();
        let doc = store.shard_complete(fp).ok_or_else(|| {
            format!(
                "sweep {}: shard {} has no completion record",
                spec.figure,
                hex(fp)
            )
        })?;
        results.insert(fp, doc);
    }
    let (sweep, manifest) = gather(spec, &plan, &results)?;
    Ok(SweepOutcome {
        sweep,
        manifest,
        planned: plan.shards.len(),
        skipped,
        executed,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

/// Splits `pending` into already-complete shards (skipped) and a work
/// queue, emitting a `shard_done status=skipped` event per skip.
fn partition_complete<'p>(
    pending: &[&'p Shard],
    store: &ResultStore,
    events: &EventStream,
    verbose: bool,
) -> (VecDeque<&'p Shard>, usize) {
    let mut queue = VecDeque::new();
    let mut skipped = 0usize;
    for &shard in pending {
        if store.shard_complete(shard.fingerprint()).is_some() {
            skipped += 1;
            SweepMetrics::resolve().resumed.inc();
            shard_done_event(events, shard, "skipped", 0, "");
            if verbose {
                println!(
                    "   skip    {} ({}/{} already complete)",
                    hex(shard.fingerprint()),
                    shard.family,
                    shard.kind.as_str()
                );
            }
        } else {
            queue.push_back(shard);
        }
    }
    (queue, skipped)
}

fn run_stage_local(
    pending: &[&Shard],
    store: &ResultStore,
    config: &SweepConfig,
    events: &EventStream,
    failures: &mut Vec<String>,
) -> Result<(usize, usize), String> {
    let (mut queue, skipped) = partition_complete(pending, store, events, config.verbose);
    let workers = config.workers.max(1);
    let mut executed = 0usize;
    let mut running: Vec<Running> = Vec::new();
    while !(queue.is_empty() && running.is_empty()) {
        while running.len() < workers {
            let Some(shard) = queue.pop_front() else {
                break;
            };
            running.push(spawn_shard(shard, config, events)?);
        }
        let mut still = Vec::with_capacity(running.len());
        for mut r in running {
            match r.child.try_wait() {
                Ok(None) => still.push(r),
                Ok(Some(status)) => {
                    let wall_ms = r.started.elapsed().as_millis() as u64;
                    // The worker marks its own completion, so the
                    // record survives even an orchestrator crash; a
                    // clean exit without a record is still a failure.
                    let ok =
                        status.success() && store.shard_complete(r.shard.fingerprint()).is_some();
                    if ok {
                        shard_done_event(events, &r.shard, "ok", wall_ms, "");
                        executed += 1;
                        if config.verbose {
                            println!(
                                "   ok      {} ({}/{} in {:.1}s)",
                                hex(r.shard.fingerprint()),
                                r.shard.family,
                                r.shard.kind.as_str(),
                                wall_ms as f64 / 1000.0
                            );
                        }
                    } else {
                        let error = format!("worker exited {status}; log: {}", r.log.display());
                        shard_done_event(events, &r.shard, "failed", wall_ms, &error);
                        failures.push(format!(
                            "{} ({}/{}): {error}",
                            hex(r.shard.fingerprint()),
                            r.shard.family,
                            r.shard.kind.as_str(),
                        ));
                    }
                }
                Err(e) => {
                    let error = format!("cannot wait on worker: {e}");
                    shard_done_event(events, &r.shard, "failed", 0, &error);
                    failures.push(format!(
                        "{} ({}/{}): {error}",
                        hex(r.shard.fingerprint()),
                        r.shard.family,
                        r.shard.kind.as_str()
                    ));
                }
            }
        }
        running = still;
        if !running.is_empty() {
            std::thread::sleep(Duration::from_millis(15));
        }
    }
    Ok((executed, skipped))
}

fn spawn_shard(
    shard: &Shard,
    config: &SweepConfig,
    events: &EventStream,
) -> Result<Running, String> {
    let fp = shard.fingerprint();
    let stem = format!("{fp:016x}");
    let file = config.sweep_dir.join("shards").join(format!("{stem}.json"));
    fs::write(&file, shard.to_json().render())
        .map_err(|e| format!("sweep: cannot write {}: {e}", file.display()))?;
    let log = config.sweep_dir.join("logs").join(format!("{stem}.log"));
    let logfile = fs::File::create(&log)
        .map_err(|e| format!("sweep: cannot create {}: {e}", log.display()))?;
    let logerr = logfile
        .try_clone()
        .map_err(|e| format!("sweep: cannot clone log handle: {e}"))?;
    // One worker process gets one engine; with N workers running, each
    // defaults to a single evaluation thread unless --threads was
    // explicit (results are thread-count independent either way).
    let threads = if config.opts.flags.threads == 0 {
        1
    } else {
        config.opts.flags.threads
    };
    let mut cmd = Command::new(&config.worker_exe);
    cmd.arg("shard")
        .arg("--shard")
        .arg(&file)
        .arg("--store")
        .arg(&config.store)
        .arg("--events")
        .arg(config.sweep_dir.join("events"))
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--engine")
        .arg(config.opts.flags.backend.name());
    if let Some(trace) = &config.opts.trace_dir {
        cmd.arg("--trace").arg(trace);
    }
    let child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::from(logfile))
        .stderr(Stdio::from(logerr))
        .spawn()
        .map_err(|e| format!("sweep: cannot spawn {}: {e}", config.worker_exe.display()))?;
    shard_spawn_event(events, shard);
    Ok(Running {
        shard: shard.clone(),
        child,
        started: Instant::now(),
        log,
    })
}

fn run_stage_remote(
    pending: &[&Shard],
    socket: &Path,
    store: &ResultStore,
    config: &SweepConfig,
    events: &EventStream,
    failures: &mut Vec<String>,
) -> (usize, usize) {
    let (queue, skipped) = partition_complete(pending, store, events, config.verbose);
    let queue = Mutex::new(queue);
    let executed = AtomicUsize::new(0);
    let fails: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| loop {
                let Some(shard) = queue.lock().expect("queue lock").pop_front() else {
                    break;
                };
                let fp = shard.fingerprint();
                shard_spawn_event(events, shard);
                let started = Instant::now();
                let request = Json::obj()
                    .field("op", Json::str("shard"))
                    .field("shard", shard.to_json());
                let outcome = crate::serve::request(socket, &request).and_then(|doc| {
                    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
                        doc.get("result")
                            .cloned()
                            .ok_or_else(|| "shard response without result".to_string())
                    } else {
                        Err(doc
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown server error")
                            .to_string())
                    }
                });
                let wall_ms = started.elapsed().as_millis() as u64;
                // The orchestrator writes the completion record for
                // remote shards: the daemon has no handle on our store.
                let outcome = outcome.and_then(|result| {
                    store
                        .mark_shard_complete(fp, &result)
                        .map_err(|e| format!("cannot record completion: {e}"))
                });
                match outcome {
                    Ok(()) => {
                        executed.fetch_add(1, Ordering::SeqCst);
                        shard_done_event(events, shard, "ok", wall_ms, "");
                        if config.verbose {
                            println!(
                                "   ok      {} ({}/{} remote in {:.1}s)",
                                hex(fp),
                                shard.family,
                                shard.kind.as_str(),
                                wall_ms as f64 / 1000.0
                            );
                        }
                    }
                    Err(e) => {
                        shard_done_event(events, shard, "failed", wall_ms, &e);
                        fails.lock().expect("fails lock").push(format!(
                            "{} ({}/{}): {e}",
                            hex(fp),
                            shard.family,
                            shard.kind.as_str()
                        ));
                    }
                }
            });
        }
    });
    failures.extend(fails.into_inner().expect("fails lock"));
    (executed.into_inner(), skipped)
}
