//! The `eco serve` service layer: a local autotuning daemon.
//!
//! The server listens on a Unix-domain socket and speaks a
//! line-delimited JSON protocol: each request is one
//! [`Json`] object on one line, each response one object on one line.
//! The payload of a `tune` request is a serialized
//! [`TuneRequest`] — exactly the type the CLIs and the tests use — and
//! the response embeds the run's deterministic manifest
//! ([`run_manifest`]), so a served tune and a local `eco tune
//! --manifest` produce the same bytes for the same inputs.
//!
//! ```text
//! {"op":"ping"}
//! {"op":"tune","request":{...TuneRequest::to_json()...}}
//! {"op":"shard","shard":{...Shard::to_json()...}}
//! {"op":"stats"}          serve counters + per-engine work totals
//! {"op":"store-stats"}    persistent result-store counters
//! {"op":"shutdown"}
//! ```
//!
//! Responses carry `"ok": true` plus op-specific fields, or
//! `"ok": false` with an `"error"` message.
//!
//! Concurrency: each connection is served by its own thread, and all
//! connections share one [`Engine`] per machine fingerprint — so
//! concurrent tunes share the memo cache, the persistent result store
//! and the engine's in-flight evaluation dedupe. On top of that the
//! server dedupes *whole requests*: two identical `tune` requests in
//! flight at once (same [`TuneRequest::fingerprint`]) run the search
//! once and both receive the same response bytes; the `stats` op
//! reports how often that happened (`deduped_requests`).
//!
//! The `shard` op is the remote half of the sharded sweep pipeline
//! (`crate::sweep`): the payload is one serialized
//! [`Shard`] manifest, executed on a *fresh* engine
//! built from the server's template (never the shared per-machine
//! engine — shard results must be byte-identical to a local worker's,
//! and that requires cold engine stats). Identical in-flight shards
//! are deduped like tunes. The response embeds the shard's result
//! document; the orchestrator records completion in its own store.
//!
//! The per-engine telemetry flags of a request's `engine` section
//! (trace/events paths, thread count) are ignored — engines are
//! configured by the server, requests only say *what* to tune. Pass
//! `--events FILE` to `eco serve` to capture a request-level stream
//! (`serve_request`/`serve_done` events) instead.

use eco_core::events::{names, Attrs, EventStream, Json};
use eco_core::{
    machine_fingerprint, run_manifest, Engine, EngineConfig, Evaluator, Shard, TuneRequest,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Protocol version answered by `ping` (bumped with
/// [`eco_core::API_VERSION`] changes that affect the wire format).
pub const PROTOCOL_VERSION: u64 = 1;

/// How the server is configured: socket path, the engine template
/// applied to every per-machine engine, and an optional request-level
/// event stream.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Engine template: threads, backend, memoization and the shared
    /// result store. Trace/events paths are stripped (a single file
    /// cannot be shared by lazily-created engines); use `events` below.
    pub engine: EngineConfig,
    /// Request-level event stream (`serve_request`/`serve_done`).
    pub events: Option<String>,
}

/// Serve counters, reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Protocol requests handled (all ops).
    pub requests: u64,
    /// `tune` requests that ran a search.
    pub tunes: u64,
    /// `shard` requests executed for sweep orchestrators.
    pub shards: u64,
    /// `tune`/`shard` requests served by waiting on an identical
    /// in-flight request instead of running their own work.
    pub deduped_requests: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
}

/// One in-flight `tune` request: followers with the same fingerprint
/// block on `wait` until the owner fills the response line.
struct InflightRequest {
    done: Mutex<Option<String>>,
    cv: Condvar,
}

impl InflightRequest {
    fn new() -> Self {
        InflightRequest {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, line: String) {
        *self.done.lock().expect("inflight lock") = Some(line);
        self.cv.notify_all();
    }

    fn wait(&self) -> String {
        let mut done = self.done.lock().expect("inflight lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("inflight wait");
        }
        done.clone().expect("filled")
    }
}

struct ServerInner {
    template: EngineConfig,
    engines: Mutex<HashMap<u64, Arc<Engine>>>,
    inflight: Mutex<HashMap<u64, Arc<InflightRequest>>>,
    stats: Mutex<ServeStats>,
    events: Option<Arc<EventStream>>,
    shutdown: AtomicBool,
}

/// The autotuning daemon. Bind with [`Server::bind`], then either
/// [`Server::run`] (blocks until a `shutdown` request) or drive
/// connections from tests via [`request`].
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    inner: Arc<ServerInner>,
}

impl Server {
    /// Binds the socket (replacing a stale socket file from a dead
    /// server) and prepares the shared state.
    ///
    /// # Errors
    ///
    /// Returns a message when the socket cannot be bound or the event
    /// stream file cannot be created.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let mut template = config.engine.clone();
        template.trace_path = None;
        template.events_path = None;
        let events = match &config.events {
            Some(path) => {
                Some(Arc::new(EventStream::to_file(path).map_err(|e| {
                    format!("cannot create events file {path}: {e}")
                })?))
            }
            None => None,
        };
        let listener = match UnixListener::bind(&config.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                // A previous server may have died without unlinking its
                // socket; only rebind if nothing answers there.
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(format!(
                        "socket {} already has a live server",
                        config.socket.display()
                    ));
                }
                std::fs::remove_file(&config.socket)
                    .map_err(|e| format!("cannot remove stale socket: {e}"))?;
                UnixListener::bind(&config.socket)
                    .map_err(|e| format!("cannot bind {}: {e}", config.socket.display()))?
            }
            Err(e) => return Err(format!("cannot bind {}: {e}", config.socket.display())),
        };
        Ok(Server {
            listener,
            socket: config.socket,
            inner: Arc::new(ServerInner {
                template,
                engines: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
                stats: Mutex::new(ServeStats::default()),
                events,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The socket the server listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Accepts connections until a `shutdown` request arrives, serving
    /// each connection on its own thread.
    ///
    /// # Errors
    ///
    /// Returns a message when accepting fails for a reason other than
    /// shutdown.
    pub fn run(&self) -> Result<(), String> {
        let mut handles = Vec::new();
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    if self.inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(format!("accept failed: {e}"));
                }
            };
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let inner = Arc::clone(&self.inner);
            let socket = self.socket.clone();
            handles.push(std::thread::spawn(move || {
                serve_connection(&inner, stream, &socket);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(stream) = &self.inner.events {
            stream.flush();
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Serves one connection: a loop of request lines, one response line
/// each, until the peer closes or the server shuts down.
fn serve_connection(inner: &ServerInner, stream: UnixStream, socket: &Path) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(inner, &line, socket);
        let mut text = response.render_compact();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Parses and dispatches one request line, counting it in the serve
/// stats and emitting `serve_request`/`serve_done` events.
fn handle_line(inner: &ServerInner, line: &str, socket: &Path) -> Json {
    inner.stats.lock().expect("stats lock").requests += 1;
    let parsed = Json::parse(line).map_err(|e| format!("bad request line: {e}"));
    let op = parsed
        .as_ref()
        .ok()
        .and_then(|doc| doc.get("op").and_then(Json::as_str))
        .unwrap_or("?")
        .to_string();
    if let Some(stream) = &inner.events {
        stream.event(names::SERVE_REQUEST, None, Attrs::new().str("op", &op));
    }
    let result = parsed.and_then(|doc| dispatch(inner, &doc, &op, socket));
    let response = match result {
        Ok(doc) => doc,
        Err(msg) => {
            inner.stats.lock().expect("stats lock").errors += 1;
            Json::obj()
                .field("ok", Json::Bool(false))
                .field("error", Json::str(&msg))
        }
    };
    if let Some(stream) = &inner.events {
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        stream.event(
            names::SERVE_DONE,
            None,
            Attrs::new().str("op", &op).uint("ok", u64::from(ok)),
        );
        stream.flush();
    }
    response
}

fn dispatch(inner: &ServerInner, doc: &Json, op: &str, socket: &Path) -> Result<Json, String> {
    match op {
        "ping" => Ok(Json::obj()
            .field("ok", Json::Bool(true))
            .field("protocol_version", Json::UInt(PROTOCOL_VERSION))
            .field("api_version", Json::UInt(eco_core::API_VERSION))),
        "tune" => handle_tune(inner, doc),
        "shard" => handle_shard(inner, doc),
        "stats" => Ok(stats_response(inner)),
        "store-stats" => Ok(store_stats_response(inner)),
        "shutdown" => {
            inner.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run` can observe the flag.
            let _ = UnixStream::connect(socket);
            Ok(Json::obj()
                .field("ok", Json::Bool(true))
                .field("shutting_down", Json::Bool(true)))
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

/// The shared engine for a machine, created on first use from the
/// server's template.
fn engine_for(inner: &ServerInner, request: &TuneRequest) -> Result<Arc<Engine>, String> {
    let fp = machine_fingerprint(&request.machine);
    let mut engines = inner.engines.lock().expect("engines lock");
    if let Some(engine) = engines.get(&fp) {
        return Ok(Arc::clone(engine));
    }
    let engine = Engine::with_config(request.machine.clone(), inner.template.clone())
        .map_err(|e| e.to_string())?;
    let engine = Arc::new(engine);
    engines.insert(fp, Arc::clone(&engine));
    Ok(engine)
}

/// Whole-request dedupe shared by `tune` and `shard`: the first thread
/// in under `key` owns the work, later identical requests wait and
/// reuse its response bytes. Returns the outcome and whether this call
/// was a deduped follower. The cell is filled on every path (also
/// errors), then the key is retired so later identical requests run
/// fresh.
fn with_inflight(
    inner: &ServerInner,
    key: u64,
    run: impl FnOnce() -> Result<Json, String>,
) -> (Result<Json, String>, bool) {
    let (cell, owner) = {
        let mut inflight = inner.inflight.lock().expect("inflight lock");
        match inflight.get(&key) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(InflightRequest::new());
                inflight.insert(key, Arc::clone(&cell));
                (cell, true)
            }
        }
    };
    if !owner {
        let line = cell.wait();
        let parsed = Json::parse(&line).map_err(|e| format!("inflight response corrupt: {e}"));
        return (parsed, true);
    }
    let outcome = run();
    let line = match &outcome {
        Ok(doc) => doc.render_compact(),
        Err(msg) => Json::obj()
            .field("ok", Json::Bool(false))
            .field("error", Json::str(msg))
            .render_compact(),
    };
    cell.fill(line);
    inner.inflight.lock().expect("inflight lock").remove(&key);
    (outcome, false)
}

fn handle_tune(inner: &ServerInner, doc: &Json) -> Result<Json, String> {
    let request =
        TuneRequest::from_json(doc.get("request").ok_or("tune: missing field 'request'")?)?;
    let fp = request.fingerprint();
    let (outcome, deduped) = with_inflight(inner, fp, || run_tune(inner, &request, fp));
    let mut stats = inner.stats.lock().expect("stats lock");
    stats.tunes += 1;
    if deduped {
        stats.deduped_requests += 1;
    }
    drop(stats);
    outcome
}

/// Salt mixed into shard fingerprints before they enter the in-flight
/// map shared with tunes, so a shard and a tune whose fingerprints
/// happen to be numerically equal never alias.
const SHARD_INFLIGHT_SALT: u64 = 0x7368_6172_645f_6f70; // "shard_op"

fn handle_shard(inner: &ServerInner, doc: &Json) -> Result<Json, String> {
    let shard = Shard::from_json(doc.get("shard").ok_or("shard: missing field 'shard'")?)?;
    let fp = shard.fingerprint();
    let (outcome, deduped) = with_inflight(inner, fp ^ SHARD_INFLIGHT_SALT, || {
        crate::sweep::execute_shard(&shard, inner.template.clone()).map(|result| {
            Json::obj()
                .field("ok", Json::Bool(true))
                .field("fingerprint", Json::fingerprint(fp))
                .field("result", result)
        })
    });
    let mut stats = inner.stats.lock().expect("stats lock");
    stats.shards += 1;
    if deduped {
        stats.deduped_requests += 1;
    }
    drop(stats);
    outcome
}

fn run_tune(inner: &ServerInner, request: &TuneRequest, fp: u64) -> Result<Json, String> {
    let engine = engine_for(inner, request)?;
    let response = request.run_on(&*engine).map_err(|e| e.to_string())?;
    // The manifest records the configuration the shared engine actually
    // ran with (backend, memoize) — not the client's ignored template.
    let manifest = run_manifest(
        &request.kernel.name,
        &request.machine,
        &request.options,
        &inner.template,
        &response,
    );
    let s = &response.engine;
    Ok(Json::obj()
        .field("ok", Json::Bool(true))
        .field("fingerprint", Json::fingerprint(fp))
        .field(
            "engine_stats",
            Json::obj()
                .field("requested", Json::UInt(s.requested))
                .field("evaluated", Json::UInt(s.evaluated))
                .field("cache_hits", Json::UInt(s.cache_hits))
                .field("store_hits", Json::UInt(s.store_hits))
                .field("dedup_waits", Json::UInt(s.dedup_waits))
                .field("errors", Json::UInt(s.errors)),
        )
        .field("manifest", manifest))
}

fn stats_response(inner: &ServerInner) -> Json {
    let serve = *inner.stats.lock().expect("stats lock");
    let engines = inner.engines.lock().expect("engines lock");
    let mut per_engine = Json::obj();
    let mut fps: Vec<&u64> = engines.keys().collect();
    fps.sort();
    for fp in fps {
        let s = engines[fp].stats();
        per_engine = per_engine.field(
            &format!("{fp:#018x}"),
            Json::obj()
                .field("requested", Json::UInt(s.requested))
                .field("evaluated", Json::UInt(s.evaluated))
                .field("cache_hits", Json::UInt(s.cache_hits))
                .field("store_hits", Json::UInt(s.store_hits))
                .field("dedup_waits", Json::UInt(s.dedup_waits))
                .field("errors", Json::UInt(s.errors)),
        );
    }
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("requests", Json::UInt(serve.requests))
        .field("tunes", Json::UInt(serve.tunes))
        .field("shards", Json::UInt(serve.shards))
        .field("deduped_requests", Json::UInt(serve.deduped_requests))
        .field("errors", Json::UInt(serve.errors))
        .field("engines", per_engine)
}

fn store_stats_response(inner: &ServerInner) -> Json {
    let engines = inner.engines.lock().expect("engines lock");
    let (mut hits, mut misses, mut puts, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let mut configured = false;
    for engine in engines.values() {
        if let Some(s) = engine.store_stats() {
            configured = true;
            hits += s.hits;
            misses += s.misses;
            puts += s.puts;
            rejected += s.rejected;
        }
    }
    configured |= inner.template.store_path.is_some();
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("configured", Json::Bool(configured))
        .field("hits", Json::UInt(hits))
        .field("misses", Json::UInt(misses))
        .field("puts", Json::UInt(puts))
        .field("rejected", Json::UInt(rejected))
}

/// One protocol round trip from a client: connects, sends `request` as
/// a line, reads the response line. Used by `eco client` and the serve
/// tests.
///
/// # Errors
///
/// Returns a message when the socket is unreachable, the line cannot
/// be written or read, or the response does not parse.
pub fn request(socket: &Path, request: &Json) -> Result<Json, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    let mut text = request.render_compact();
    text.push('\n');
    writer
        .write_all(text.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection without a response".into());
    }
    Json::parse(line.trim_end()).map_err(|e| format!("bad response line: {e}"))
}
