//! The `eco serve` service layer: a local autotuning daemon.
//!
//! The server listens on a Unix-domain socket and speaks a
//! line-delimited JSON protocol: each request is one
//! [`Json`] object on one line, each response one object on one line
//! (the `watch` op is the one streaming exception, below). The payload
//! of a `tune` request is a serialized
//! [`TuneRequest`] — exactly the type the CLIs and the tests use — and
//! the response embeds the run's deterministic manifest
//! ([`run_manifest`]), so a served tune and a local `eco tune
//! --manifest` produce the same bytes for the same inputs.
//!
//! ```text
//! {"op":"ping"}
//! {"op":"tune","request":{...TuneRequest::to_json()...}}
//! {"op":"shard","shard":{...Shard::to_json()...}}
//! {"op":"stats"}          serve counters + per-engine work totals
//! {"op":"store-stats"}    persistent result-store counters
//! {"op":"metrics"}        Prometheus-text metrics snapshot
//! {"op":"watch","fingerprint":"0x..."}   tail a request's event stream
//! {"op":"trace","fingerprint":"0x..."}   a completed request's stream + response
//! {"op":"shutdown"}
//! ```
//!
//! Responses carry `"ok": true` plus op-specific fields, or
//! `"ok": false` with an `"error"` message.
//!
//! Concurrency: each connection is served by its own thread, and all
//! connections share one [`Engine`] per machine fingerprint — so
//! concurrent tunes share the memo cache, the persistent result store
//! and the engine's in-flight evaluation dedupe. On top of that the
//! server dedupes *whole requests*: two identical `tune` requests in
//! flight at once (same [`TuneRequest::fingerprint`]) run the search
//! once and both receive the same response bytes; the `stats` op
//! reports how often that happened (`deduped_requests`).
//!
//! The `shard` op is the remote half of the sharded sweep pipeline
//! (`crate::sweep`): the payload is one serialized
//! [`Shard`] manifest, executed on a *fresh* engine
//! built from the server's template (never the shared per-machine
//! engine — shard results must be byte-identical to a local worker's,
//! and that requires cold engine stats). Identical in-flight shards
//! are deduped like tunes. The response embeds the shard's result
//! document; the orchestrator records completion in its own store.
//!
//! **Observability.** Every request is counted and timed in a
//! per-server [`Registry`] (request counts and latency histograms by
//! op, an in-flight gauge, dedupe joins, slow requests); the
//! `metrics` op returns that registry plus the process-wide one
//! (engine / store / sweep counters) as one Prometheus text document.
//! The scrape itself is excluded from those counters and from the
//! in-flight gauge — observing the server must not perturb it.
//! The owner of every `tune`/`shard` request additionally writes its
//! search/engine event stream into an in-memory buffer keyed by the
//! request fingerprint: `watch` tails that buffer live over the
//! connection (header line, then raw JSONL event lines as they
//! happen, then a `"done"` trailer), and a small ring of completed
//! requests keeps the stream and response around afterwards for
//! `trace` (and for `watch` replays). None of this feeds back into
//! search decisions, manifests or goldens.
//!
//! The per-engine telemetry flags of a request's `engine` section
//! (trace/events paths, thread count) are ignored — engines are
//! configured by the server, requests only say *what* to tune. Pass
//! `--events FILE` to `eco serve` to capture a request-level stream
//! (`serve_request`/`serve_done` events) instead. Operational
//! messages go to stderr through a timestamped, leveled [`Logger`]
//! (`--log-level quiet|info|debug`), including a slow-request line
//! for any op above the `--slow-ms` threshold.

use eco_core::events::{names, Attrs, EventStream, Json};
use eco_core::{
    machine_fingerprint, run_manifest, Engine, EngineConfig, EngineStats, Evaluator, Shard,
    TuneRequest,
};
use eco_machine::MachineDesc;
use eco_metrics::{Counter, Gauge, Histogram, Registry};
use eco_sched::sync::atomic::{AtomicBool, Ordering};
use eco_sched::sync::{labeled_condvar, labeled_mutex, Arc, Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Protocol version answered by `ping` (bumped with
/// [`eco_core::API_VERSION`] changes that affect the wire format).
pub const PROTOCOL_VERSION: u64 = 1;

/// Completed tune/shard requests retained for `trace` / `watch`
/// replay, newest last.
const COMPLETED_RING: usize = 8;

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

/// Verbosity of the daemon's stderr log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// Nothing at all.
    Quiet,
    /// Lifecycle and anomalies: bind/shutdown, errors, slow requests.
    #[default]
    Info,
    /// Every request with its outcome and wall time.
    Debug,
}

impl LogLevel {
    /// Parses `quiet` / `info` / `debug`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(text: &str) -> Result<LogLevel, String> {
        match text {
            "quiet" => Ok(LogLevel::Quiet),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected quiet|info|debug)"
            )),
        }
    }
}

/// A timestamped, leveled stderr logger: `TIMESTAMP LEVEL eco-serve:
/// message`. Replaces ad-hoc `eprintln!` in the daemon path.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A logger filtering below `level`.
    pub fn new(level: LogLevel) -> Logger {
        Logger { level }
    }

    /// Logs at info level.
    pub fn info(&self, msg: &str) {
        self.log(LogLevel::Info, "INFO", msg);
    }

    /// Logs at debug level.
    pub fn debug(&self, msg: &str) {
        self.log(LogLevel::Debug, "DEBUG", msg);
    }

    fn log(&self, at: LogLevel, tag: &str, msg: &str) {
        if at <= self.level {
            eprintln!("{} {tag:5} eco-serve: {msg}", timestamp_utc());
        }
    }
}

/// The current wall-clock time as `YYYY-MM-DDTHH:MM:SS.mmmZ` (UTC).
fn timestamp_utc() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    let secs = now.as_secs();
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    let rem = secs % 86_400;
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}.{:03}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60,
        now.subsec_millis()
    )
}

/// Gregorian date from days since 1970-01-01 (proleptic civil
/// calendar).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (yoe + era * 400 + i64::from(m <= 2), m, d)
}

// ---------------------------------------------------------------------
// Configuration and stats
// ---------------------------------------------------------------------

/// How the server is configured: socket path, the engine template
/// applied to every per-machine engine, an optional request-level
/// event stream, and the stderr log policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Engine template: threads, backend, memoization and the shared
    /// result store. Trace/events paths are stripped (a single file
    /// cannot be shared by lazily-created engines); use `events` below.
    pub engine: EngineConfig,
    /// Request-level event stream (`serve_request`/`serve_done`).
    pub events: Option<String>,
    /// Stderr log verbosity (`--log-level`).
    pub log_level: LogLevel,
    /// Any op slower than this many milliseconds logs a slow-request
    /// line and counts in `eco_serve_slow_requests_total`
    /// (`--slow-ms`).
    pub slow_ms: u64,
}

impl ServeConfig {
    /// A config with default logging (info level, 1000 ms slow
    /// threshold).
    pub fn new(socket: impl Into<PathBuf>, engine: EngineConfig) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            engine,
            events: None,
            log_level: LogLevel::default(),
            slow_ms: 1000,
        }
    }
}

/// Serve counters, reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Protocol requests handled (all ops).
    pub requests: u64,
    /// `tune` requests that ran a search.
    pub tunes: u64,
    /// `shard` requests executed for sweep orchestrators.
    pub shards: u64,
    /// `tune`/`shard` requests served by waiting on an identical
    /// in-flight request instead of running their own work.
    pub deduped_requests: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
}

// ---------------------------------------------------------------------
// Per-server metrics
// ---------------------------------------------------------------------

/// The ops the daemon understands; anything else is labeled `other`
/// in metrics so label cardinality stays bounded.
const KNOWN_OPS: &[&str] = &[
    "ping",
    "tune",
    "shard",
    "stats",
    "store-stats",
    "metrics",
    "watch",
    "trace",
    "shutdown",
];

fn op_label(op: &str) -> &'static str {
    KNOWN_OPS
        .iter()
        .find(|&&k| k == op)
        .copied()
        .unwrap_or("other")
}

/// Handles into the per-server [`Registry`]: request counts and
/// latency by op, plus cross-op counters. A per-server registry (not
/// the global one) keeps concurrently running servers — and tests —
/// exactly countable.
struct ServeMetrics {
    registry: Registry,
    inflight: Arc<Gauge>,
    errors: Arc<Counter>,
    deduped: Arc<Counter>,
    slow: Arc<Counter>,
    connections: Arc<Counter>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = Registry::new();
        // Pre-register every known op so a scrape is fully shaped
        // before the first request of each kind arrives.
        for op in KNOWN_OPS.iter().chain(std::iter::once(&"other")) {
            let _ = Self::requests_in(&registry, op);
            let _ = Self::duration_in(&registry, op);
        }
        let inflight = registry.gauge(
            "eco_serve_inflight",
            "Requests currently being handled.",
            &[],
        );
        let errors = registry.counter(
            "eco_serve_errors_total",
            "Requests answered with ok=false.",
            &[],
        );
        let deduped = registry.counter(
            "eco_serve_deduped_requests_total",
            "Requests served by joining an identical in-flight request.",
            &[],
        );
        let slow = registry.counter(
            "eco_serve_slow_requests_total",
            "Requests slower than the --slow-ms threshold.",
            &[],
        );
        let connections =
            registry.counter("eco_serve_connections_total", "Connections accepted.", &[]);
        ServeMetrics {
            registry,
            inflight,
            errors,
            deduped,
            slow,
            connections,
        }
    }

    fn requests_in(registry: &Registry, op: &str) -> Arc<Counter> {
        registry.counter(
            "eco_serve_requests_total",
            "Requests handled, by op.",
            &[("op", op)],
        )
    }

    fn duration_in(registry: &Registry, op: &str) -> Arc<Histogram> {
        registry.histogram(
            "eco_serve_request_duration_us",
            "Request handling wall time by op, microseconds.",
            &[("op", op)],
            eco_metrics::LATENCY_US_BOUNDS,
        )
    }

    fn requests(&self, op: &str) -> Arc<Counter> {
        Self::requests_in(&self.registry, op_label(op))
    }

    fn duration(&self, op: &str) -> Arc<Histogram> {
        Self::duration_in(&self.registry, op_label(op))
    }
}

// ---------------------------------------------------------------------
// In-flight dedupe and live event streams
// ---------------------------------------------------------------------

/// One in-flight `tune` request: followers with the same fingerprint
/// block on `wait` until the owner fills the response line.
struct InflightRequest {
    done: Mutex<Option<String>>,
    cv: Condvar,
}

impl InflightRequest {
    fn new() -> Self {
        InflightRequest {
            done: labeled_mutex("serve.inflight.cell", None),
            cv: labeled_condvar("serve.inflight.cv"),
        }
    }

    fn fill(&self, line: String) {
        *self.done.lock().expect("inflight lock") = Some(line);
        self.cv.notify_all();
    }

    fn wait(&self) -> String {
        let mut done = self.done.lock().expect("inflight lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("inflight wait");
        }
        done.clone().expect("filled")
    }
}

#[derive(Default)]
struct LiveState {
    lines: Vec<String>,
    done: bool,
}

/// The event-line buffer of one in-flight request: the owner's event
/// stream appends lines, any number of `watch` connections tail them.
struct LiveBuf {
    state: Mutex<LiveState>,
    cv: Condvar,
}

impl Default for LiveBuf {
    fn default() -> Self {
        LiveBuf {
            state: labeled_mutex("serve.live.buf", LiveState::default()),
            cv: labeled_condvar("serve.live.cv"),
        }
    }
}

impl LiveBuf {
    fn push(&self, line: String) {
        self.state.lock().expect("live lock").lines.push(line);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("live lock").done = true;
        self.cv.notify_all();
    }

    /// Lines from index `from` on, blocking until there are new lines
    /// or the buffer is closed. Returns the new lines and the done
    /// flag.
    fn next(&self, from: usize) -> (Vec<String>, bool) {
        let mut state = self.state.lock().expect("live lock");
        loop {
            if state.lines.len() > from || state.done {
                return (
                    state.lines[from.min(state.lines.len())..].to_vec(),
                    state.done,
                );
            }
            state = self.cv.wait(state).expect("live wait");
        }
    }

    /// The whole captured stream as JSONL text.
    fn text(&self) -> String {
        let state = self.state.lock().expect("live lock");
        let mut out = String::new();
        for line in &state.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// An `io::Write` sink feeding complete lines into a [`LiveBuf`] —
/// the bridge from [`EventStream::to_writer`] to `watch` connections.
struct LiveWriter {
    buf: Arc<LiveBuf>,
    pending: Vec<u8>,
}

impl Write for LiveWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.pending.extend_from_slice(data);
        while let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.pending.drain(..=pos).collect();
            self.buf
                .push(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Registers a request's live buffer for `watch` and guarantees it is
/// closed and deregistered on every exit path (including panics, so a
/// watcher can never hang on a dead owner).
struct LiveSession<'a> {
    inner: &'a ServerInner,
    fp: u64,
    buf: Arc<LiveBuf>,
}

impl<'a> LiveSession<'a> {
    fn open(inner: &'a ServerInner, fp: u64) -> LiveSession<'a> {
        let buf = Arc::new(LiveBuf::default());
        inner
            .live
            .lock()
            .expect("live map lock")
            .insert(fp, Arc::clone(&buf));
        LiveSession { inner, fp, buf }
    }

    /// A fresh event stream writing into this session's buffer.
    fn stream(&self) -> Arc<EventStream> {
        Arc::new(EventStream::to_writer(Box::new(LiveWriter {
            buf: Arc::clone(&self.buf),
            pending: Vec::new(),
        })))
    }
}

impl Drop for LiveSession<'_> {
    fn drop(&mut self) {
        self.inner
            .live
            .lock()
            .expect("live map lock")
            .remove(&self.fp);
        self.buf.close();
    }
}

/// A finished `tune`/`shard` request retained for `trace` and `watch`
/// replay.
struct Completed {
    fingerprint: u64,
    op: &'static str,
    events: String,
    response: Json,
}

/// Delegates evaluation to the shared per-machine engine but reports
/// a per-request event stream, so the search attaches its stage spans
/// to the stream a `watch` connection is tailing (engine-internal
/// point events still go to the engine's own stream, if any).
struct WatchedEngine {
    engine: Arc<Engine>,
    events: Arc<EventStream>,
}

impl Evaluator for WatchedEngine {
    fn machine(&self) -> &MachineDesc {
        self.engine.machine()
    }

    fn eval_batch(
        &self,
        jobs: &[eco_exec::EvalJob],
    ) -> Vec<Result<eco_exec::Counters, eco_exec::ExecError>> {
        self.engine.eval_batch(jobs)
    }

    fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    fn events(&self) -> Option<&Arc<EventStream>> {
        Some(&self.events)
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

struct ServerInner {
    template: EngineConfig,
    engines: Mutex<HashMap<u64, Arc<Engine>>>,
    inflight: Mutex<HashMap<u64, Arc<InflightRequest>>>,
    stats: Mutex<ServeStats>,
    events: Option<Arc<EventStream>>,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
    /// Live event buffers of in-flight tune/shard requests, by
    /// request fingerprint.
    live: Mutex<HashMap<u64, Arc<LiveBuf>>>,
    /// Recently completed tune/shard requests, newest last.
    completed: Mutex<VecDeque<Completed>>,
    log: Logger,
    slow_ms: u64,
}

/// The autotuning daemon. Bind with [`Server::bind`], then either
/// [`Server::run`] (blocks until a `shutdown` request) or drive
/// connections from tests via [`request`].
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    inner: Arc<ServerInner>,
}

impl Server {
    /// Binds the socket (replacing a stale socket file from a dead
    /// server) and prepares the shared state.
    ///
    /// # Errors
    ///
    /// Returns a message when the socket cannot be bound or the event
    /// stream file cannot be created.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let mut template = config.engine.clone();
        template.trace_path = None;
        template.events_path = None;
        let events = match &config.events {
            Some(path) => {
                Some(Arc::new(EventStream::to_file(path).map_err(|e| {
                    format!("cannot create events file {path}: {e}")
                })?))
            }
            None => None,
        };
        let listener = match UnixListener::bind(&config.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                // A previous server may have died without unlinking its
                // socket; only rebind if nothing answers there.
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(format!(
                        "socket {} already has a live server",
                        config.socket.display()
                    ));
                }
                std::fs::remove_file(&config.socket)
                    .map_err(|e| format!("cannot remove stale socket: {e}"))?;
                UnixListener::bind(&config.socket)
                    .map_err(|e| format!("cannot bind {}: {e}", config.socket.display()))?
            }
            Err(e) => return Err(format!("cannot bind {}: {e}", config.socket.display())),
        };
        let log = Logger::new(config.log_level);
        log.info(&format!("listening on {}", config.socket.display()));
        Ok(Server {
            listener,
            socket: config.socket,
            inner: Arc::new(ServerInner {
                template,
                engines: labeled_mutex("serve.engines", HashMap::new()),
                inflight: labeled_mutex("serve.inflight", HashMap::new()),
                stats: labeled_mutex("serve.stats", ServeStats::default()),
                events,
                shutdown: AtomicBool::new(false),
                metrics: ServeMetrics::new(),
                live: labeled_mutex("serve.live", HashMap::new()),
                completed: labeled_mutex("serve.completed_ring", VecDeque::new()),
                log,
                slow_ms: config.slow_ms,
            }),
        })
    }

    /// The socket the server listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Accepts connections until a `shutdown` request arrives, serving
    /// each connection on its own thread.
    ///
    /// # Errors
    ///
    /// Returns a message when accepting fails for a reason other than
    /// shutdown.
    pub fn run(&self) -> Result<(), String> {
        let mut handles = Vec::new();
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    if self.inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(format!("accept failed: {e}"));
                }
            };
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let inner = Arc::clone(&self.inner);
            let socket = self.socket.clone();
            inner.metrics.connections.inc();
            inner.log.debug("connection accepted");
            handles.push(std::thread::spawn(move || {
                serve_connection(&inner, stream, &socket);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(stream) = &self.inner.events {
            stream.flush();
        }
        self.inner.log.info("shut down");
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// How one request line answers: a single response line, or a header
/// line followed by a tailed event stream and a `"done"` trailer
/// (the `watch` op).
enum Reply {
    One(Json),
    /// Replay of an already-complete stream.
    Replay {
        header: Json,
        events: String,
    },
    /// Tail of a live stream until its owner finishes.
    Tail {
        header: Json,
        buf: Arc<LiveBuf>,
    },
}

fn watch_trailer(fp: u64) -> Json {
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("done", Json::Bool(true))
        .field("fingerprint", Json::fingerprint(fp))
}

/// Serves one connection: a loop of request lines, one response (line
/// or stream) each, until the peer closes or the server shuts down.
fn serve_connection(inner: &ServerInner, stream: UnixStream, socket: &Path) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut write_line = move |doc: String| -> bool {
        let mut text = doc;
        text.push('\n');
        writer.write_all(text.as_bytes()).is_ok() && writer.flush().is_ok()
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let ok = match handle_line(inner, &line, socket) {
            Reply::One(doc) => write_line(doc.render_compact()),
            Reply::Replay { header, events } => {
                let fp = fp_of(&header);
                write_line(header.render_compact())
                    && events.lines().all(|l| write_line(l.to_string()))
                    && write_line(watch_trailer(fp).render_compact())
            }
            Reply::Tail { header, buf } => {
                let fp = fp_of(&header);
                let mut alive = write_line(header.render_compact());
                let mut cursor = 0;
                while alive {
                    let (lines, done) = buf.next(cursor);
                    cursor += lines.len();
                    alive = lines.into_iter().all(&mut write_line);
                    if done {
                        break;
                    }
                }
                alive && write_line(watch_trailer(fp).render_compact())
            }
        };
        if !ok || inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    inner.log.debug("connection closed");
}

/// The fingerprint a watch header carries (0 when absent).
fn fp_of(header: &Json) -> u64 {
    header
        .get("fingerprint")
        .and_then(parse_fingerprint)
        .unwrap_or(0)
}

/// Parses and dispatches one request line, counting it in the serve
/// stats and metrics (except `metrics` scrapes, which do not count
/// themselves) and emitting `serve_request`/`serve_done` events.
fn handle_line(inner: &ServerInner, line: &str, socket: &Path) -> Reply {
    inner.stats.lock().expect("stats lock").requests += 1;
    let parsed = Json::parse(line).map_err(|e| format!("bad request line: {e}"));
    let op = parsed
        .as_ref()
        .ok()
        .and_then(|doc| doc.get("op").and_then(Json::as_str))
        .unwrap_or("?")
        .to_string();
    // A `metrics` scrape must not perturb what it reports: it stays out
    // of the request counters, the latency histograms and the in-flight
    // gauge, so two back-to-back scrapes with no traffic in between are
    // byte-identical and the gauge reads the *other* work in flight.
    let scrape = op == "metrics";
    if !scrape {
        inner.metrics.requests(&op).inc();
        inner.metrics.inflight.inc();
    }
    if let Some(stream) = &inner.events {
        stream.event(names::SERVE_REQUEST, None, Attrs::new().str("op", &op));
    }
    let started = Instant::now();
    let result = parsed.and_then(|doc| dispatch(inner, &doc, &op, socket));
    let wall_us = started.elapsed().as_micros() as u64;
    if !scrape {
        inner.metrics.duration(&op).observe(wall_us);
        inner.metrics.inflight.dec();
    }
    let reply = match result {
        Ok(reply) => reply,
        Err(msg) => {
            inner.stats.lock().expect("stats lock").errors += 1;
            inner.metrics.errors.inc();
            Reply::One(
                Json::obj()
                    .field("ok", Json::Bool(false))
                    .field("error", Json::str(&msg)),
            )
        }
    };
    let (ok, error) = match &reply {
        Reply::One(doc) => (
            doc.get("ok").and_then(Json::as_bool).unwrap_or(false),
            doc.get("error")
                .and_then(Json::as_str)
                .map(ToString::to_string),
        ),
        Reply::Replay { .. } | Reply::Tail { .. } => (true, None),
    };
    let wall_ms = wall_us / 1000;
    if wall_ms >= inner.slow_ms {
        inner.metrics.slow.inc();
        inner
            .log
            .info(&format!("slow request: op={op} wall_ms={wall_ms}"));
        if let Some(stream) = &inner.events {
            stream.event(
                names::SERVE_SLOW,
                None,
                Attrs::new().str("op", &op).uint("wall_ms", wall_ms),
            );
        }
    }
    inner.log.debug(&format!(
        "op={op} ok={ok} wall_us={wall_us}{}",
        error
            .as_deref()
            .map(|e| format!(" error={e:?}"))
            .unwrap_or_default()
    ));
    if let Some(stream) = &inner.events {
        let mut attrs = Attrs::new().str("op", &op).uint("ok", u64::from(ok));
        // Error paths carry the failure string so failed requests are
        // attributable in streams and report timelines.
        if let Some(error) = &error {
            attrs = attrs.str("error", error);
        }
        stream.event(names::SERVE_DONE, None, attrs);
        stream.flush();
    }
    reply
}

fn dispatch(inner: &ServerInner, doc: &Json, op: &str, socket: &Path) -> Result<Reply, String> {
    match op {
        "ping" => Ok(Reply::One(
            Json::obj()
                .field("ok", Json::Bool(true))
                .field("protocol_version", Json::UInt(PROTOCOL_VERSION))
                .field("api_version", Json::UInt(eco_core::API_VERSION)),
        )),
        "tune" => handle_tune(inner, doc).map(Reply::One),
        "shard" => handle_shard(inner, doc).map(Reply::One),
        "stats" => Ok(Reply::One(stats_response(inner))),
        "store-stats" => Ok(Reply::One(store_stats_response(inner))),
        "metrics" => Ok(Reply::One(metrics_response(inner))),
        "watch" => handle_watch(inner, doc),
        "trace" => handle_trace(inner, doc).map(Reply::One),
        "shutdown" => {
            inner.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run` can observe the flag.
            let _ = UnixStream::connect(socket);
            Ok(Reply::One(
                Json::obj()
                    .field("ok", Json::Bool(true))
                    .field("shutting_down", Json::Bool(true)),
            ))
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

/// The shared engine for a machine, created on first use from the
/// server's template.
fn engine_for(inner: &ServerInner, request: &TuneRequest) -> Result<Arc<Engine>, String> {
    let fp = machine_fingerprint(&request.machine);
    let mut engines = inner.engines.lock().expect("engines lock");
    if let Some(engine) = engines.get(&fp) {
        return Ok(Arc::clone(engine));
    }
    let engine = Engine::with_config(request.machine.clone(), inner.template.clone())
        .map_err(|e| e.to_string())?;
    let engine = Arc::new(engine);
    engines.insert(fp, Arc::clone(&engine));
    Ok(engine)
}

/// Whole-request dedupe shared by `tune` and `shard`: the first thread
/// in under `key` owns the work, later identical requests wait and
/// reuse its response bytes. Returns the outcome and whether this call
/// was a deduped follower. The cell is filled on every path (also
/// errors), then the key is retired so later identical requests run
/// fresh.
fn with_inflight(
    inner: &ServerInner,
    key: u64,
    run: impl FnOnce() -> Result<Json, String>,
) -> (Result<Json, String>, bool) {
    with_inflight_map(&inner.inflight, key, run)
}

/// [`with_inflight`] against a bare dedupe table — the piece the
/// eco-sched checker model drives without a full daemon.
fn with_inflight_map(
    map: &Mutex<HashMap<u64, Arc<InflightRequest>>>,
    key: u64,
    run: impl FnOnce() -> Result<Json, String>,
) -> (Result<Json, String>, bool) {
    let (cell, owner) = {
        let mut inflight = map.lock().expect("inflight lock");
        match inflight.get(&key) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(InflightRequest::new());
                inflight.insert(key, Arc::clone(&cell));
                (cell, true)
            }
        }
    };
    if !owner {
        let line = cell.wait();
        let parsed = Json::parse(&line).map_err(|e| format!("inflight response corrupt: {e}"));
        return (parsed, true);
    }
    let outcome = run();
    let line = match &outcome {
        Ok(doc) => doc.render_compact(),
        Err(msg) => Json::obj()
            .field("ok", Json::Bool(false))
            .field("error", Json::str(msg))
            .render_compact(),
    };
    cell.fill(line);
    map.lock().expect("inflight lock").remove(&key);
    (outcome, false)
}

/// Retains a finished request's event stream and response for
/// `trace` / `watch` replay, evicting the oldest past the ring cap.
fn push_completed(inner: &ServerInner, fp: u64, op: &'static str, events: String, response: &Json) {
    push_completed_ring(&inner.completed, fp, op, events, response);
}

/// [`push_completed`] against a bare ring — the piece the eco-sched
/// checker model drives without a full daemon.
fn push_completed_ring(
    completed: &Mutex<VecDeque<Completed>>,
    fp: u64,
    op: &'static str,
    events: String,
    response: &Json,
) {
    let mut ring = completed.lock().expect("completed lock");
    ring.retain(|c| c.fingerprint != fp);
    ring.push_back(Completed {
        fingerprint: fp,
        op,
        events,
        response: response.clone(),
    });
    while ring.len() > COMPLETED_RING {
        ring.pop_front();
    }
}

fn handle_tune(inner: &ServerInner, doc: &Json) -> Result<Json, String> {
    let request =
        TuneRequest::from_json(doc.get("request").ok_or("tune: missing field 'request'")?)?;
    let fp = request.fingerprint();
    let (outcome, deduped) = with_inflight(inner, fp, || run_tune(inner, &request, fp));
    let mut stats = inner.stats.lock().expect("stats lock");
    stats.tunes += 1;
    if deduped {
        stats.deduped_requests += 1;
        inner.metrics.deduped.inc();
    }
    drop(stats);
    outcome
}

/// Salt mixed into shard fingerprints before they enter the in-flight
/// map shared with tunes, so a shard and a tune whose fingerprints
/// happen to be numerically equal never alias.
const SHARD_INFLIGHT_SALT: u64 = 0x7368_6172_645f_6f70; // "shard_op"

fn handle_shard(inner: &ServerInner, doc: &Json) -> Result<Json, String> {
    let shard = Shard::from_json(doc.get("shard").ok_or("shard: missing field 'shard'")?)?;
    let fp = shard.fingerprint();
    let (outcome, deduped) = with_inflight(inner, fp ^ SHARD_INFLIGHT_SALT, || {
        let live = LiveSession::open(inner, fp);
        let stream = live.stream();
        let result = crate::sweep::execute_shard_with_events(
            &shard,
            inner.template.clone(),
            Some(Arc::clone(&stream)),
        );
        stream.flush();
        drop(stream);
        let response = result.map(|result| {
            Json::obj()
                .field("ok", Json::Bool(true))
                .field("fingerprint", Json::fingerprint(fp))
                .field("result", result)
        });
        if let Ok(doc) = &response {
            push_completed(inner, fp, "shard", live.buf.text(), doc);
        }
        response
    });
    let mut stats = inner.stats.lock().expect("stats lock");
    stats.shards += 1;
    if deduped {
        stats.deduped_requests += 1;
        inner.metrics.deduped.inc();
    }
    drop(stats);
    outcome
}

fn run_tune(inner: &ServerInner, request: &TuneRequest, fp: u64) -> Result<Json, String> {
    let engine = engine_for(inner, request)?;
    let live = LiveSession::open(inner, fp);
    let stream = live.stream();
    let watched = WatchedEngine {
        engine,
        events: Arc::clone(&stream),
    };
    let result = request.run_on(&watched).map_err(|e| e.to_string());
    stream.flush();
    drop(watched);
    drop(stream);
    let response = result?;
    // The manifest records the configuration the shared engine actually
    // ran with (backend, memoize) — not the client's ignored template.
    let manifest = run_manifest(
        &request.kernel.name,
        &request.machine,
        &request.options,
        &inner.template,
        &response,
    );
    let s = &response.engine;
    let doc = Json::obj()
        .field("ok", Json::Bool(true))
        .field("fingerprint", Json::fingerprint(fp))
        .field(
            "engine_stats",
            Json::obj()
                .field("requested", Json::UInt(s.requested))
                .field("evaluated", Json::UInt(s.evaluated))
                .field("cache_hits", Json::UInt(s.cache_hits))
                .field("store_hits", Json::UInt(s.store_hits))
                .field("dedup_waits", Json::UInt(s.dedup_waits))
                .field("errors", Json::UInt(s.errors)),
        )
        .field("manifest", manifest);
    push_completed(inner, fp, "tune", live.buf.text(), &doc);
    Ok(doc)
}

/// Parses a request/response fingerprint field: `"0x..."` hex strings
/// (the [`Json::fingerprint`] rendering) or bare integers.
fn parse_fingerprint(doc: &Json) -> Option<u64> {
    match doc {
        Json::UInt(v) => Some(*v),
        Json::Str(s) => {
            let text = s.strip_prefix("0x").unwrap_or(s);
            u64::from_str_radix(text, 16).ok()
        }
        _ => None,
    }
}

fn handle_watch(inner: &ServerInner, doc: &Json) -> Result<Reply, String> {
    let fp = doc
        .get("fingerprint")
        .and_then(parse_fingerprint)
        .ok_or("watch: missing or malformed field 'fingerprint'")?;
    let header = |live: bool| {
        Json::obj()
            .field("ok", Json::Bool(true))
            .field("fingerprint", Json::fingerprint(fp))
            .field("live", Json::Bool(live))
    };
    if let Some(buf) = inner.live.lock().expect("live map lock").get(&fp) {
        return Ok(Reply::Tail {
            header: header(true),
            buf: Arc::clone(buf),
        });
    }
    let ring = inner.completed.lock().expect("completed lock");
    if let Some(done) = ring.iter().rev().find(|c| c.fingerprint == fp) {
        return Ok(Reply::Replay {
            header: header(false),
            events: done.events.clone(),
        });
    }
    Err(format!(
        "watch: no live or completed request with fingerprint {:#018x}",
        fp
    ))
}

fn handle_trace(inner: &ServerInner, doc: &Json) -> Result<Json, String> {
    let want = doc.get("fingerprint").and_then(parse_fingerprint);
    let ring = inner.completed.lock().expect("completed lock");
    let found = match want {
        Some(fp) => ring.iter().rev().find(|c| c.fingerprint == fp),
        None => ring.back(),
    };
    let Some(done) = found else {
        return Err(match want {
            Some(fp) => format!("trace: no completed request with fingerprint {fp:#018x}"),
            None => "trace: no completed requests yet".to_string(),
        });
    };
    Ok(Json::obj()
        .field("ok", Json::Bool(true))
        .field("fingerprint", Json::fingerprint(done.fingerprint))
        .field("op", Json::str(done.op))
        .field("events", Json::str(&done.events))
        .field("response", done.response.clone()))
}

fn metrics_response(inner: &ServerInner) -> Json {
    // Per-server serve counters first (the operator's first question),
    // then the process-wide engine/store/sweep registry. Family names
    // are disjoint, so the concatenation is a valid exposition.
    let text = format!(
        "{}{}",
        inner.metrics.registry.render(),
        Registry::global().render()
    );
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("metrics", Json::str(&text))
}

fn stats_response(inner: &ServerInner) -> Json {
    let serve = *inner.stats.lock().expect("stats lock");
    let engines = inner.engines.lock().expect("engines lock");
    let mut per_engine = Json::obj();
    let mut fps: Vec<&u64> = engines.keys().collect();
    fps.sort();
    for fp in fps {
        let s = engines[fp].stats();
        per_engine = per_engine.field(
            &format!("{fp:#018x}"),
            Json::obj()
                .field("requested", Json::UInt(s.requested))
                .field("evaluated", Json::UInt(s.evaluated))
                .field("cache_hits", Json::UInt(s.cache_hits))
                .field("store_hits", Json::UInt(s.store_hits))
                .field("dedup_waits", Json::UInt(s.dedup_waits))
                .field("errors", Json::UInt(s.errors)),
        );
    }
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("requests", Json::UInt(serve.requests))
        .field("tunes", Json::UInt(serve.tunes))
        .field("shards", Json::UInt(serve.shards))
        .field("deduped_requests", Json::UInt(serve.deduped_requests))
        .field("errors", Json::UInt(serve.errors))
        .field("engines", per_engine)
}

fn store_stats_response(inner: &ServerInner) -> Json {
    let engines = inner.engines.lock().expect("engines lock");
    let (mut hits, mut misses, mut puts, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let mut configured = false;
    for engine in engines.values() {
        if let Some(s) = engine.store_stats() {
            configured = true;
            hits += s.hits;
            misses += s.misses;
            puts += s.puts;
            rejected += s.rejected;
        }
    }
    configured |= inner.template.store_path.is_some();
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("configured", Json::Bool(configured))
        .field("hits", Json::UInt(hits))
        .field("misses", Json::UInt(misses))
        .field("puts", Json::UInt(puts))
        .field("rejected", Json::UInt(rejected))
}

// ---------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------

/// One protocol round trip from a client: connects, sends `request` as
/// a line, reads the response line. Used by `eco client` and the serve
/// tests.
///
/// # Errors
///
/// Returns a message when the socket is unreachable, the line cannot
/// be written or read, or the response does not parse.
pub fn request(socket: &Path, request: &Json) -> Result<Json, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    let mut text = request.render_compact();
    text.push('\n');
    writer
        .write_all(text.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection without a response".into());
    }
    Json::parse(line.trim_end()).map_err(|e| format!("bad response line: {e}"))
}

/// The `watch` client: connects, sends a `watch` request for
/// `fingerprint`, and feeds every streamed event line to `on_line`
/// until the `"done"` trailer. Returns the header document.
///
/// # Errors
///
/// Returns a message when the socket is unreachable, the server
/// answers `ok=false`, or the stream ends without a trailer.
pub fn watch(
    socket: &Path,
    fingerprint: u64,
    mut on_line: impl FnMut(&str),
) -> Result<Json, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    let mut text = Json::obj()
        .field("op", Json::str("watch"))
        .field("fingerprint", Json::fingerprint(fingerprint))
        .render_compact();
    text.push('\n');
    writer
        .write_all(text.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut lines = BufReader::new(stream).lines();
    let header = lines
        .next()
        .ok_or("server closed the connection without a response")?
        .map_err(|e| format!("cannot read response: {e}"))?;
    let header = Json::parse(header.trim_end()).map_err(|e| format!("bad header line: {e}"))?;
    if header.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(header
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("watch refused")
            .to_string());
    }
    for line in lines {
        let line = line.map_err(|e| format!("cannot read stream: {e}"))?;
        if let Ok(doc) = Json::parse(line.trim_end()) {
            if doc.get("done").and_then(Json::as_bool) == Some(true) {
                return Ok(header);
            }
        }
        on_line(&line);
    }
    Err("stream ended without a done trailer".to_string())
}

// ---------------------------------------------------------------------
// eco-sched probe
// ---------------------------------------------------------------------

/// Hooks for the eco-sched checker (`--cfg eco_sched` builds only):
/// the daemon's in-flight dedupe and completed-ring protocols behind
/// the *same* code paths the daemon runs, but callable without a
/// socket, an engine or a store. The checker model in
/// `tests/sched_model.rs` drives these under the controlled scheduler.
#[cfg(eco_sched)]
pub mod model_probe {
    use super::*;

    /// The request-dedupe table exactly as [`ServerInner`] holds it.
    #[derive(Default)]
    pub struct InflightTable {
        map: Mutex<HashMap<u64, Arc<InflightRequest>>>,
    }

    impl InflightTable {
        #[must_use]
        pub fn new() -> Self {
            InflightTable {
                map: labeled_mutex("serve.inflight", HashMap::new()),
            }
        }

        /// Runs `run` deduped under `key` — the real [`with_inflight`]
        /// path. Returns the response text (owner's render or the
        /// follower's parsed copy re-rendered) and the deduped flag.
        pub fn run(
            &self,
            key: u64,
            run: impl FnOnce() -> Result<Json, String>,
        ) -> (Result<String, String>, bool) {
            let (outcome, deduped) = with_inflight_map(&self.map, key, run);
            (outcome.map(|doc| doc.render_compact()), deduped)
        }

        /// True when no request is currently in flight.
        #[must_use]
        pub fn is_idle(&self) -> bool {
            self.map.lock().expect("inflight lock").is_empty()
        }
    }

    /// The completed-request ring exactly as [`ServerInner`] holds it.
    #[derive(Default)]
    pub struct CompletedRing {
        ring: Mutex<VecDeque<Completed>>,
    }

    impl CompletedRing {
        #[must_use]
        pub fn new() -> Self {
            CompletedRing {
                ring: labeled_mutex("serve.completed_ring", VecDeque::new()),
            }
        }

        /// The real [`push_completed`] path.
        pub fn push(&self, fp: u64, events: String, response: &Json) {
            push_completed_ring(&self.ring, fp, "tune", events, response);
        }

        /// The ring cap every schedule must respect.
        #[must_use]
        pub fn cap() -> usize {
            COMPLETED_RING
        }

        /// Fingerprints currently retained, oldest first.
        #[must_use]
        pub fn fingerprints(&self) -> Vec<u64> {
            self.ring
                .lock()
                .expect("completed lock")
                .iter()
                .map(|c| c.fingerprint)
                .collect()
        }
    }
}
