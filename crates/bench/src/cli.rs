//! Flag parsing shared by the `eco` and `repro` binaries (and their
//! `serve`/`client` subcommands): the machine selection
//! (`--machine`/`--scale`) and the engine flags
//! (`--threads`/`--engine`/`--store`) used to be parsed ad hoc in each
//! binary; this module is the one place their names, defaults and error
//! messages live.

use eco_exec::{EngineConfig, ExecBackend};
use eco_machine::MachineDesc;

/// Pulls the value of `--flag` off the argument iterator.
///
/// # Errors
///
/// Returns `"<flag> needs a value"` when the arguments end early.
pub fn flag_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Resolves `--machine NAME --scale F` to a machine description:
/// `sgi` or `sun`, shrunk by `scale` when it is above 1.
///
/// # Errors
///
/// Returns a message listing the known machine names.
pub fn parse_machine(name: &str, scale: usize) -> Result<MachineDesc, String> {
    let base = match name {
        "sgi" => MachineDesc::sgi_r10000(),
        "sun" => MachineDesc::ultrasparc_iie(),
        other => return Err(format!("unknown machine {other} (sgi|sun)")),
    };
    Ok(if scale > 1 { base.scaled(scale) } else { base })
}

/// The engine flags every command accepts: thread count, backend and
/// the persistent result store. Defaults: auto threads, the compiled
/// backend, no store.
#[derive(Debug, Clone)]
pub struct EngineFlags {
    /// `--threads N` (0 = auto).
    pub threads: usize,
    /// `--engine plan|reference`.
    pub backend: ExecBackend,
    /// `--store DIR`: root of the on-disk result store shared across
    /// processes (see `eco-store`).
    pub store: Option<String>,
}

impl Default for EngineFlags {
    fn default() -> Self {
        EngineFlags {
            threads: 0,
            backend: ExecBackend::Compiled,
            store: None,
        }
    }
}

impl EngineFlags {
    /// Fresh flags with the defaults.
    pub fn new() -> Self {
        EngineFlags::default()
    }

    /// Tries to consume `arg` (and its value from `it`) as one of the
    /// shared engine flags. Returns `Ok(true)` when the flag was
    /// handled, `Ok(false)` when it belongs to the caller.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed value.
    pub fn accept<'a>(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, String> {
        match arg {
            "--threads" => {
                self.threads = flag_value("--threads", it)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--engine" => self.backend = ExecBackend::parse(&flag_value("--engine", it)?)?,
            "--store" => self.store = Some(flag_value("--store", it)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Applies the flags to an engine configuration.
    #[must_use]
    pub fn apply(&self, mut cfg: EngineConfig) -> EngineConfig {
        cfg = cfg.threads(self.threads).backend(self.backend);
        if let Some(dir) = &self.store {
            cfg = cfg.store(dir.clone());
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn machine_parsing_resolves_and_scales() {
        assert_eq!(parse_machine("sgi", 1).expect("sgi").name, "SGI R10000");
        assert_eq!(
            parse_machine("sgi", 32).expect("scaled").caches[0].capacity_bytes,
            1024
        );
        assert!(parse_machine("vax", 1)
            .expect_err("unknown")
            .contains("sgi|sun"));
    }

    #[test]
    fn engine_flags_accept_their_flags_and_reject_others() {
        let args = strings(&[
            "--threads",
            "3",
            "--engine",
            "reference",
            "--store",
            "/tmp/s",
        ]);
        let mut it = args.iter();
        let mut flags = EngineFlags::new();
        while let Some(a) = it.next() {
            assert!(flags.accept(a, &mut it).expect("parses"));
        }
        assert_eq!(flags.threads, 3);
        assert_eq!(flags.backend, ExecBackend::Reference);
        assert_eq!(flags.store.as_deref(), Some("/tmp/s"));
        let cfg = flags.apply(EngineConfig::new());
        assert_eq!(cfg.backend, ExecBackend::Reference);
        assert!(cfg.store_path.is_some());

        let other = strings(&["--n"]);
        let mut it = other.iter();
        let a = it.next().expect("arg");
        assert!(!EngineFlags::new().accept(a, &mut it).expect("not ours"));

        let truncated = strings(&["--threads"]);
        let mut it = truncated.iter();
        let a = it.next().expect("arg");
        assert!(EngineFlags::new()
            .accept(a, &mut it)
            .expect_err("missing value")
            .contains("needs a value"));
    }
}
