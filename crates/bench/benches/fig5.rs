//! Criterion bench for Figure 5: one sweep point per series (ECO,
//! native) of the Jacobi comparison on both machine models.
//!
//! The figure's data is produced by `repro fig5a` / `repro fig5b`.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_baselines::native;
use eco_bench::mflops_at;
use eco_core::{SearchOptions, TuneRequest};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let kernel = Kernel::jacobi3d();
    let mut group = c.benchmark_group("fig5_point");
    group.sample_size(10);
    for base in [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()] {
        let machine = base.scaled(32);
        let tag = if machine.name.contains("SGI") {
            "sgi"
        } else {
            "sun"
        };
        let opts = SearchOptions::builder()
            .search_n(24)
            .max_variants(1)
            .build()
            .expect("options");
        let eco = TuneRequest::new(kernel.clone(), machine.clone())
            .options(opts)
            .run()
            .expect("eco")
            .tuned;
        let nat = native(&kernel, &machine).expect("native");
        group.bench_function(format!("eco_{tag}_n32"), |b| {
            b.iter(|| black_box(mflops_at(&eco.program, &kernel, 32, &machine)))
        });
        group.bench_function(format!("native_{tag}_n32"), |b| {
            b.iter(|| black_box(mflops_at(nat.for_size(32), &kernel, 32, &machine)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
