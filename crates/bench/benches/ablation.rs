//! Criterion bench for the ablation studies DESIGN.md calls out:
//! copy vs no-copy, prefetch on/off, model-only vs search, and the
//! simulator/executor primitives everything rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{counters_at, mflops_at, mm_copy_variant, mm_table_row};
use eco_cachesim::{AccessKind, MemoryHierarchy};
use eco_exec::{interpret, ArrayLayout, LayoutOptions, Params, Storage};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("copy_on_pathological_n128", |b| {
        let p = mm_copy_variant(8, 16, 16, true);
        b.iter(|| black_box(mflops_at(&p, &kernel, 128, &machine)))
    });
    group.bench_function("nocopy_on_pathological_n128", |b| {
        let p = mm_copy_variant(8, 16, 16, false);
        b.iter(|| black_box(mflops_at(&p, &kernel, 128, &machine)))
    });
    group.bench_function("prefetch_row_n64", |b| {
        let p = mm_table_row(4, 16, 16, true);
        b.iter(|| black_box(counters_at(&p, &kernel, 64, &machine)))
    });
    group.finish();

    // Substrate microbenchmarks.
    let mut group = c.benchmark_group("substrate");
    group.bench_function("cachesim_1m_accesses", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::new(&machine);
            for i in 0..1_000_000u64 {
                h.access(black_box((i * 24) % (1 << 20)), AccessKind::Load);
            }
            black_box(h.into_counters())
        })
    });
    group.bench_function("interpreter_matmul_n32", |b| {
        let params = Params::new().with(kernel.size, 32);
        let layout =
            ArrayLayout::new(&kernel.program, &params, &LayoutOptions::default()).expect("layout");
        b.iter(|| {
            let mut st = Storage::seeded(&layout, 1);
            interpret(&kernel.program, &params, &layout, &mut st).expect("run");
            black_box(st)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
