//! Criterion bench for Table 1: simulating the parameterized Matrix
//! Multiply / Jacobi versions whose counters the table reports.
//!
//! The *simulated* metrics (the table's contents) are produced by
//! `repro table1`; this bench tracks the wall-clock cost of generating
//! and measuring each row, i.e. the cost of one empirical-search point.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_bench::{counters_at, jacobi_table_row, mm_table_row};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let mm = Kernel::matmul();
    let jac = Kernel::jacobi3d();

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("mm4_row_n64", |b| {
        let p = mm_table_row(4, 16, 16, false);
        b.iter(|| black_box(counters_at(&p, &mm, 64, &machine)))
    });
    group.bench_function("mm5_row_prefetch_n64", |b| {
        let p = mm_table_row(4, 16, 16, true);
        b.iter(|| black_box(counters_at(&p, &mm, 64, &machine)))
    });
    group.bench_function("j3_row_n24", |b| {
        let p = jacobi_table_row(1, 4, 4, false);
        b.iter(|| black_box(counters_at(&p, &jac, 24, &machine)))
    });
    group.bench_function("row_generation_mm4", |b| {
        b.iter(|| black_box(mm_table_row(4, 16, 16, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
