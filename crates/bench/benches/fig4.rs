//! Criterion bench for Figure 4: one sweep point per series (ECO,
//! native, ATLAS-like, vendor) of the Matrix Multiply comparison, plus
//! the cost of the searches themselves.
//!
//! The figure's data is produced by `repro fig4a` / `repro fig4b`.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_baselines::{atlas_mm, native, vendor_mm};
use eco_bench::mflops_at;
use eco_core::{SearchOptions, TuneRequest};
use eco_exec::{Engine, EngineConfig, EvalJob, Evaluator, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let n = 64;

    let opts = SearchOptions::builder()
        .search_n(48)
        .max_variants(1)
        .build()
        .expect("options");
    let eco = TuneRequest::new(kernel.clone(), machine.clone())
        .options(opts)
        .run()
        .expect("eco")
        .tuned;
    let nat = native(&kernel, &machine).expect("native");
    let atlas = atlas_mm(&machine, 32).expect("atlas");
    let vendor = vendor_mm(&machine, 32).expect("vendor");

    let mut group = c.benchmark_group("fig4_point");
    group.sample_size(10);
    group.bench_function("eco_n64", |b| {
        b.iter(|| black_box(mflops_at(&eco.program, &kernel, n, &machine)))
    });
    group.bench_function("native_n64", |b| {
        b.iter(|| black_box(mflops_at(nat.for_size(n), &kernel, n, &machine)))
    });
    group.bench_function("atlas_n64", |b| {
        b.iter(|| black_box(mflops_at(atlas.program.for_size(n), &kernel, n, &machine)))
    });
    group.bench_function("vendor_n64", |b| {
        b.iter(|| black_box(mflops_at(vendor.for_size(n), &kernel, n, &machine)))
    });
    group.finish();

    let mut group = c.benchmark_group("fig4_search");
    group.sample_size(10);
    group.bench_function("eco_search_mm", |b| {
        b.iter(|| {
            let opts = SearchOptions::builder()
                .search_n(32)
                .max_variants(1)
                .build()
                .expect("options");
            black_box(
                TuneRequest::new(kernel.clone(), machine.clone())
                    .options(opts)
                    .run()
                    .expect("eco")
                    .tuned,
            )
        })
    });
    group.bench_function("atlas_search_mm", |b| {
        b.iter(|| black_box(atlas_mm(&machine, 32).expect("atlas")))
    });
    group.finish();

    // The evaluation engine itself: a full simulation vs a memo hit.
    let mut group = c.benchmark_group("fig4_engine");
    group.sample_size(10);
    let job = || {
        EvalJob::new(eco.program.clone(), Params::new().with(kernel.size, n))
            .with_label("bench/eval")
    };
    group.bench_function("eval_cold_uncached", |b| {
        let uncached = Engine::with_config(machine.clone(), EngineConfig::new().memoize(false))
            .expect("engine");
        b.iter(|| black_box(uncached.eval(job()).expect("eval")))
    });
    group.bench_function("eval_warm_memo_hit", |b| {
        let warm = Engine::new(machine.clone());
        warm.eval(job()).expect("prime");
        b.iter(|| black_box(warm.eval(job()).expect("eval")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
