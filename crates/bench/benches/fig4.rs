//! Criterion bench for Figure 4: one sweep point per series (ECO,
//! native, ATLAS-like, vendor) of the Matrix Multiply comparison, plus
//! the cost of the searches themselves.
//!
//! The figure's data is produced by `repro fig4a` / `repro fig4b`.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_baselines::{atlas_mm, native, vendor_mm};
use eco_bench::mflops_at;
use eco_core::Optimizer;
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let n = 64;

    let mut opt = Optimizer::new(machine.clone());
    opt.opts.search_n = 48;
    opt.opts.max_variants = 1;
    let eco = opt.optimize(&kernel).expect("eco");
    let nat = native(&kernel, &machine).expect("native");
    let atlas = atlas_mm(&machine, 32).expect("atlas");
    let vendor = vendor_mm(&machine, 32).expect("vendor");

    let mut group = c.benchmark_group("fig4_point");
    group.sample_size(10);
    group.bench_function("eco_n64", |b| {
        b.iter(|| black_box(mflops_at(&eco.program, &kernel, n, &machine)))
    });
    group.bench_function("native_n64", |b| {
        b.iter(|| black_box(mflops_at(nat.for_size(n), &kernel, n, &machine)))
    });
    group.bench_function("atlas_n64", |b| {
        b.iter(|| black_box(mflops_at(atlas.program.for_size(n), &kernel, n, &machine)))
    });
    group.bench_function("vendor_n64", |b| {
        b.iter(|| black_box(mflops_at(vendor.for_size(n), &kernel, n, &machine)))
    });
    group.finish();

    let mut group = c.benchmark_group("fig4_search");
    group.sample_size(10);
    group.bench_function("eco_search_mm", |b| {
        b.iter(|| {
            let mut opt = Optimizer::new(machine.clone());
            opt.opts.search_n = 32;
            opt.opts.max_variants = 1;
            black_box(opt.optimize(&kernel).expect("eco"))
        })
    });
    group.bench_function("atlas_search_mm", |b| {
        b.iter(|| black_box(atlas_mm(&machine, 32).expect("atlas")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
