//! Criterion bench for the compiled execution pipeline (DESIGN.md §4):
//! the tree-walking reference measurement vs the lowered
//! [`ExecutablePlan`], on the two kernels the paper's figures sweep.
//!
//! Three views per kernel: the one-off lowering cost, a cold compiled
//! measurement (compile + execute), and a plan-reuse measurement (the
//! engine's steady state — the plan is compiled once per program and
//! re-bound at every parameter point).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_exec::{measure_reference, ExecutablePlan, LayoutOptions, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;
use std::hint::black_box;

fn bench_exec_lowering(c: &mut Criterion) {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let opts = LayoutOptions::default();
    let cases = [(Kernel::matmul(), 256i64), (Kernel::jacobi3d(), 128i64)];

    for (kernel, n) in &cases {
        let params = Params::new().with(kernel.size, *n);
        let name = format!("{}_n{}", kernel.name, n);
        let plan = ExecutablePlan::compile(&kernel.program).expect("compile");

        let mut group = c.benchmark_group("exec_lowering");
        group.sample_size(3);
        group.bench_function(format!("{name}/reference"), |b| {
            b.iter(|| {
                black_box(
                    measure_reference(&kernel.program, &params, &machine, &opts)
                        .expect("reference"),
                )
            })
        });
        group.bench_function(format!("{name}/compiled_cold"), |b| {
            b.iter(|| {
                let plan = ExecutablePlan::compile(&kernel.program).expect("compile");
                black_box(plan.measure(&params, &machine, &opts).expect("compiled"))
            })
        });
        group.bench_function(format!("{name}/compiled_reused"), |b| {
            b.iter(|| black_box(plan.measure(&params, &machine, &opts).expect("compiled")))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_exec_lowering);
criterion_main!(benches);
