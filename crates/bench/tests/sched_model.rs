//! Checker models driving the *real* serve-layer protocols under the
//! controlled scheduler (`--cfg eco_sched`): the whole-request in-flight
//! dedupe (`with_inflight`) and the 8-deep completed ring that backs
//! `watch` / `trace`. Every explored schedule must keep the owner's and
//! every follower's response bytes identical, retire the key, and never
//! let the ring grow past its cap or lose its newest entry.
#![cfg(eco_sched)]

use eco_bench::serve::model_probe::{CompletedRing, InflightTable};
use eco_core::events::Json;
use eco_sched::model::{self, check};
use eco_sched::{explore, Config, DiagCode};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

fn cfg() -> Config {
    Config {
        max_schedules: 2_000,
        ..Config::default()
    }
}

fn response(gen: u64) -> Json {
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("generation", Json::UInt(gen))
}

/// Three clients race the same fingerprint through the real dedupe
/// table: exactly the schedules `serve` sees when identical tunes
/// arrive together. In every schedule all responses must be
/// byte-identical per owner generation, at least one client must be
/// the owner, and the key must be retired at quiescence.
#[test]
fn inflight_dedupe_keeps_response_bytes_identical() {
    let report = explore(cfg(), || {
        let table = Arc::new(InflightTable::new());
        // Outside the model: collects (line, deduped) per client.
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let table = Arc::clone(&table);
                let seen = Arc::clone(&seen);
                model::thread::spawn(&format!("client-{i}"), move || {
                    // Each would-be owner renders a distinguishable
                    // response, so a follower crossing generations (or
                    // reading a half-filled cell) changes the bytes.
                    let (line, deduped) = table.run(42, || Ok(response(i)));
                    seen.lock()
                        .unwrap()
                        .push((line.expect("response"), deduped));
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        let seen = seen.lock().unwrap();
        check(DiagCode::DedupeByteMismatch, seen.len() == 3, || {
            format!("{} of 3 clients got a response", seen.len())
        });
        // Followers must carry the exact bytes of the owner they
        // joined: every deduped line equals some owner's line.
        let owners: Vec<&String> = seen.iter().filter(|(_, d)| !d).map(|(l, _)| l).collect();
        check(DiagCode::DedupeByteMismatch, !owners.is_empty(), || {
            "all three clients claim they were deduped followers".to_string()
        });
        for (line, deduped) in seen.iter() {
            if *deduped {
                check(DiagCode::DedupeByteMismatch, owners.contains(&line), || {
                    format!("follower bytes match no owner: {line}")
                });
            }
        }
        check(DiagCode::DedupeByteMismatch, table.is_idle(), || {
            "fingerprint not retired after all clients finished".to_string()
        });
    });
    assert!(
        report.is_clean(),
        "in-flight dedupe reported: {:?}",
        report.diags
    );
    assert!(
        report.schedules >= 100,
        "only {} schedules",
        report.schedules
    );
    // The protocol takes the cell lock while holding no other lock and
    // vice versa: no nested acquisition, so no order edges at all.
    assert!(
        report.edges.iter().all(|(a, _)| !a.starts_with("serve.")),
        "unexpected serve lock nesting: {:?}",
        report.edges
    );
}

/// Concurrent owners retiring into the completed ring: the cap holds
/// in every schedule, each fingerprint appears at most once, and a
/// pusher can always find its own entry unless someone evicted it by
/// pushing past the cap.
#[test]
fn completed_ring_never_exceeds_cap() {
    let report = explore(cfg(), || {
        let ring = Arc::new(CompletedRing::new());
        let cap = CompletedRing::cap();
        // Pre-fill to one below the cap so eviction is in play.
        for fp in 0..(cap as u64 - 1) {
            ring.push(fp, String::new(), &response(fp));
        }
        let threads: Vec<_> = (0..2)
            .map(|i| {
                let ring = Arc::clone(&ring);
                model::thread::spawn(&format!("owner-{i}"), move || {
                    let fp = 1_000 + i;
                    ring.push(fp, String::new(), &response(fp));
                    let now = ring.fingerprints();
                    check(DiagCode::RingOverflow, now.len() <= cap, || {
                        format!("ring holds {} entries, cap is {cap}", now.len())
                    });
                })
            })
            .collect();
        for t in threads {
            t.join();
        }
        let fps = ring.fingerprints();
        check(DiagCode::RingOverflow, fps.len() <= cap, || {
            format!(
                "ring holds {} entries at quiescence, cap is {}",
                fps.len(),
                cap
            )
        });
        // Both racing pushes survived: they are the two newest entries.
        check(
            DiagCode::RingOverflow,
            fps.contains(&1_000) && fps.contains(&1_001),
            || "a fresh completion was evicted by an older one".to_string(),
        );
        let mut dedup = fps.clone();
        dedup.sort_unstable();
        dedup.dedup();
        check(DiagCode::RingOverflow, dedup.len() == fps.len(), || {
            format!("duplicate fingerprints in the ring: {fps:?}")
        });
    });
    assert!(
        report.is_clean(),
        "completed ring reported: {:?}",
        report.diags
    );
    assert!(
        report.schedules >= 50,
        "only {} schedules",
        report.schedules
    );
}
