//! Trace-driven memory-hierarchy simulator.
//!
//! This crate substitutes for the paper's measurement substrate (real SGI
//! R10000 / UltraSparc IIe hardware read through PAPI): it models a
//! multi-level set-associative cache hierarchy with LRU replacement, a
//! fully-associative TLB, software prefetch, and a cycle cost model, and
//! accumulates PAPI-like [`Counters`] (loads, per-level misses, TLB
//! misses, cycles).
//!
//! The executor in `eco-exec` walks an IR program and feeds every memory
//! access to [`MemoryHierarchy::access`]; flop and loop-overhead costs
//! are added through [`MemoryHierarchy::add_flops`] and
//! [`MemoryHierarchy::add_loop_iterations`].
//!
//! Modelling choices (documented deviations from real hardware):
//!
//! * Caches are virtually indexed off a flat address space and arrays are
//!   laid out contiguously, which matches the paper's footnote-1
//!   assumption of a well-behaved page-colouring OS.
//! * A software prefetch brings the line into every cache level
//!   immediately; it pays the issue cost and the memory *bandwidth*
//!   occupancy (if the line comes from memory) but no latency stall —
//!   i.e. prefetch hides latency but cannot create bandwidth.
//! * Demand misses stall for the full per-level penalty; write-backs are
//!   not modelled (stores are write-allocate, write-back, but dirty
//!   evictions are free).
//! * Per-level miss counters count *demand* (load/store) misses only,
//!   like PAPI's `PAPI_L1_DCM`; prefetch fills are counted separately.
//!
//! # Examples
//!
//! ```
//! use eco_cachesim::{AccessKind, MemoryHierarchy};
//! use eco_machine::MachineDesc;
//!
//! let mut h = MemoryHierarchy::new(&MachineDesc::sgi_r10000());
//! h.access(0, AccessKind::Load);     // cold miss
//! h.access(8, AccessKind::Load);     // same 32-byte line: hit
//! let c = h.counters();
//! assert_eq!(c.loads, 2);
//! assert_eq!(c.cache_misses[0], 1);
//! ```

use eco_machine::{CacheDesc, MachineDesc, TlbDesc};

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store (write-allocate).
    Store,
    /// A software prefetch (no stall, bandwidth + issue cost only).
    Prefetch,
}

/// PAPI-like event counters accumulated by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counters {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Software prefetch instructions issued.
    pub prefetches: u64,
    /// Demand misses per cache level (index 0 = L1).
    pub cache_misses: Vec<u64>,
    /// Lines filled by prefetches, per cache level.
    pub prefetch_fills: Vec<u64>,
    /// TLB misses (demand and prefetch).
    pub tlb_misses: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Loop iterations executed (for overhead costing).
    pub loop_iterations: u64,
    /// Total cycles, in milli-cycles (divide by 1000).
    pub cycles_x1000: u64,
    /// Optional per-tag attribution (see
    /// [`MemoryHierarchy::access_tagged`]); empty unless tags are used.
    pub per_tag: Vec<TagCounters>,
}

/// Per-tag (typically per-array) attribution counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TagCounters {
    /// Demand accesses (loads + stores) with this tag.
    pub accesses: u64,
    /// Demand misses per cache level with this tag.
    pub misses: Vec<u64>,
    /// TLB misses with this tag.
    pub tlb_misses: u64,
}

impl Counters {
    /// Total cycles (rounded down from milli-cycles).
    pub fn cycles(&self) -> u64 {
        self.cycles_x1000 / 1000
    }

    /// The paper's "Loads" column counts prefetch instructions too
    /// (compare mm4 and mm5 in Table 1).
    pub fn loads_incl_prefetch(&self) -> u64 {
        self.loads + self.prefetches
    }

    /// Achieved MFLOPS given a clock rate in MHz.
    ///
    /// Returns 0.0 for an empty run.
    pub fn mflops(&self, clock_mhz: u64) -> f64 {
        if self.cycles_x1000 == 0 {
            return 0.0;
        }
        // flops / seconds = flops * clock_hz / cycles
        self.flops as f64 * clock_mhz as f64 * 1000.0 / self.cycles_x1000 as f64
    }

    /// Accumulates `other` into `self` (event counters add; per-level
    /// vectors extend to the longer of the two), so call sites summing
    /// measurements over several runs need no field-by-field copying.
    pub fn merge(&mut self, other: &Counters) {
        fn add_levels(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.prefetches += other.prefetches;
        add_levels(&mut self.cache_misses, &other.cache_misses);
        add_levels(&mut self.prefetch_fills, &other.prefetch_fills);
        self.tlb_misses += other.tlb_misses;
        self.flops += other.flops;
        self.loop_iterations += other.loop_iterations;
        self.cycles_x1000 += other.cycles_x1000;
        if self.per_tag.len() < other.per_tag.len() {
            self.per_tag
                .resize(other.per_tag.len(), TagCounters::default());
        }
        for (a, b) in self.per_tag.iter_mut().zip(&other.per_tag) {
            a.accesses += b.accesses;
            add_levels(&mut a.misses, &b.misses);
            a.tlb_misses += b.tlb_misses;
        }
    }
}

const INVALID: u64 = u64::MAX;

/// One set-associative cache level with LRU replacement.
#[derive(Debug, Clone)]
struct Cache {
    line_bits: u32,
    set_mask: u64,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    miss_penalty_x1000: u64,
}

impl Cache {
    fn new(desc: &CacheDesc) -> Self {
        let sets = desc.num_sets();
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        assert!(
            desc.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            line_bits: desc.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            ways: desc.associativity,
            tags: vec![INVALID; sets * desc.associativity],
            stamps: vec![0; sets * desc.associativity],
            clock: 0,
            miss_penalty_x1000: desc.miss_penalty_cycles * 1000,
        }
    }

    /// Looks up `addr`, filling on miss. Returns whether it hit and the
    /// slot (index into `tags`) where the line now resides.
    #[inline]
    fn access(&mut self, addr: u64) -> (bool, u32) {
        let line = addr >> self.line_bits;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.clock += 1;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in base..base + self.ways {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                return (true, i as u32);
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        (false, victim as u32)
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug, Clone)]
struct Tlb {
    page_bits: u32,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    miss_penalty_x1000: u64,
    /// Entry touched by the most recent access — a most-recently-used
    /// shortcut that skips the full associative scan when consecutive
    /// accesses stay on one page (the overwhelmingly common case for
    /// strided loops). Behaviour is identical to the full scan: a hit
    /// bumps the clock and restamps the entry either way.
    mru: usize,
    /// Direct-mapped page → entry hints, indexed by the page's low bits.
    /// A hint is only *trusted* after verifying `pages[slot]` still holds
    /// the page, so stale or colliding entries merely fall back to the
    /// full scan — the shortcut can never change simulated behaviour.
    /// This is what keeps inner loops that interleave accesses to many
    /// arrays (hence many pages, defeating the MRU shortcut) from paying
    /// a full associative scan per access.
    hint: Vec<(u64, u32)>,
}

/// log2 of the TLB hint-table size.
const TLB_HINT_BITS: u32 = 10;

impl Tlb {
    fn new(desc: &TlbDesc) -> Self {
        assert!(
            desc.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            page_bits: desc.page_bytes.trailing_zeros(),
            pages: vec![INVALID; desc.entries],
            stamps: vec![0; desc.entries],
            clock: 0,
            miss_penalty_x1000: desc.miss_penalty_cycles * 1000,
            mru: 0,
            hint: vec![(INVALID, 0); 1 << TLB_HINT_BITS],
        }
    }

    #[inline]
    fn access(&mut self, addr: u64) -> (bool, u32) {
        let page = addr >> self.page_bits;
        self.clock += 1;
        if self.pages[self.mru] == page {
            self.stamps[self.mru] = self.clock;
            return (true, self.mru as u32);
        }
        let h = (page as usize) & ((1usize << TLB_HINT_BITS) - 1);
        let (hint_page, hint_slot) = self.hint[h];
        if hint_page == page && self.pages[hint_slot as usize] == page {
            self.stamps[hint_slot as usize] = self.clock;
            self.mru = hint_slot as usize;
            return (true, hint_slot);
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.pages.len() {
            if self.pages[i] == page {
                self.stamps[i] = self.clock;
                self.mru = i;
                self.hint[h] = (page, i as u32);
                return (true, i as u32);
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        self.mru = victim;
        self.hint[h] = (page, victim as u32);
        (false, victim as u32)
    }
}

/// The full simulated memory hierarchy for one machine.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    caches: Vec<Cache>,
    tlb: Tlb,
    counters: Counters,
    mem_issue_x1000: u64,
    prefetch_issue_x1000: u64,
    flop_x1000: u64,
    loop_overhead_x1000: u64,
    bandwidth_per_line_x1000: u64,
    /// L1 line of the most recent access (`u64::MAX` = none yet). Any
    /// access leaves its line resident in L1 (hit or fill) and its page
    /// in the TLB, so a follow-up access to the same line is *provably*
    /// an L1 + TLB hit whose only architectural effect is bumping the
    /// two LRU clocks and restamping the touched slots — which is what
    /// the same-line fast path does, without any lookup.
    last_line: u64,
    /// Slot in `caches[0]` holding `last_line`.
    last_l1_slot: u32,
    /// TLB entry holding `last_line`'s page.
    last_tlb_slot: u32,
    /// Fast path requires at least one cache level and pages no smaller
    /// than L1 lines (so same line implies same page).
    fast_ok: bool,
}

impl MemoryHierarchy {
    /// A cold hierarchy for the given machine.
    pub fn new(machine: &MachineDesc) -> Self {
        let caches: Vec<Cache> = machine.caches.iter().map(Cache::new).collect();
        let fast_ok = caches
            .first()
            .map(|l1| machine.tlb.page_bytes.trailing_zeros() >= l1.line_bits)
            .unwrap_or(false);
        MemoryHierarchy {
            tlb: Tlb::new(&machine.tlb),
            counters: Counters {
                cache_misses: vec![0; caches.len()],
                prefetch_fills: vec![0; caches.len()],
                ..Default::default()
            },
            caches,
            mem_issue_x1000: machine.cost.mem_issue_cycles_x1000,
            prefetch_issue_x1000: machine.cost.prefetch_issue_cycles_x1000,
            flop_x1000: machine.cost.flop_cycles_x1000,
            loop_overhead_x1000: machine.cost.loop_overhead_cycles_x1000,
            bandwidth_per_line_x1000: machine.cost.memory_bandwidth_cycles_per_line_x1000,
            last_line: INVALID,
            last_l1_slot: 0,
            last_tlb_slot: 0,
            fast_ok,
        }
    }

    /// Counts the issue cost of one access of `kind`.
    #[inline]
    fn count_issue(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Load => {
                self.counters.loads += 1;
                self.counters.cycles_x1000 += self.mem_issue_x1000;
            }
            AccessKind::Store => {
                self.counters.stores += 1;
                self.counters.cycles_x1000 += self.mem_issue_x1000;
            }
            AccessKind::Prefetch => {
                self.counters.prefetches += 1;
                self.counters.cycles_x1000 += self.prefetch_issue_x1000;
            }
        }
    }

    /// The same-line fast path: if `addr` falls on the line touched by
    /// the immediately preceding access, apply the (statically known)
    /// L1-hit/TLB-hit effects and return `true`. Exactly equivalent to
    /// the full lookup for that case.
    #[inline]
    fn try_same_line(&mut self, addr: u64, kind: AccessKind) -> bool {
        if !self.fast_ok {
            return false;
        }
        let l1 = &mut self.caches[0];
        if (addr >> l1.line_bits) != self.last_line {
            return false;
        }
        l1.clock += 1;
        l1.stamps[self.last_l1_slot as usize] = l1.clock;
        self.tlb.clock += 1;
        self.tlb.stamps[self.last_tlb_slot as usize] = self.tlb.clock;
        self.count_issue(kind);
        true
    }

    /// Simulates one access to byte address `addr`, attributing misses
    /// to `tag` (e.g. the array id). Tags grow the per-tag table on
    /// demand; use [`MemoryHierarchy::access`] when attribution is not
    /// needed.
    pub fn access_tagged(&mut self, addr: u64, kind: AccessKind, tag: usize) {
        let levels = self.caches.len();
        if self.counters.per_tag.len() <= tag {
            self.counters.per_tag.resize_with(tag + 1, || TagCounters {
                accesses: 0,
                misses: vec![0; levels],
                tlb_misses: 0,
            });
        }
        if self.try_same_line(addr, kind) {
            // a same-line hit misses nowhere: only the access count moves
            if !matches!(kind, AccessKind::Prefetch) {
                self.counters.per_tag[tag].accesses += 1;
            }
            return;
        }
        let before: Vec<u64> = self.counters.cache_misses.clone();
        let tlb_before = self.counters.tlb_misses;
        self.access_full(addr, kind);
        let t = &mut self.counters.per_tag[tag];
        if !matches!(kind, AccessKind::Prefetch) {
            t.accesses += 1;
        }
        for (i, b) in before.iter().enumerate() {
            t.misses[i] += self.counters.cache_misses[i] - b;
        }
        t.tlb_misses += self.counters.tlb_misses - tlb_before;
    }

    /// Simulates one access to byte address `addr`.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        if self.try_same_line(addr, kind) {
            return;
        }
        self.access_full(addr, kind);
    }

    /// The full (scan-every-level) access path.
    fn access_full(&mut self, addr: u64, kind: AccessKind) {
        let is_prefetch = matches!(kind, AccessKind::Prefetch);
        self.count_issue(kind);
        let (tlb_hit, tlb_slot) = self.tlb.access(addr);
        if !tlb_hit {
            self.counters.tlb_misses += 1;
            self.counters.cycles_x1000 += self.tlb.miss_penalty_x1000;
        }
        let mut l1_slot = 0;
        let mut filled_from_memory = true;
        for (i, cache) in self.caches.iter_mut().enumerate() {
            let (hit, slot) = cache.access(addr);
            if i == 0 {
                l1_slot = slot;
            }
            if !hit {
                if is_prefetch {
                    self.counters.prefetch_fills[i] += 1;
                } else {
                    self.counters.cache_misses[i] += 1;
                    self.counters.cycles_x1000 += cache.miss_penalty_x1000;
                }
            }
            if hit {
                filled_from_memory = false;
                break;
            }
        }
        if filled_from_memory {
            // The line came from main memory: bus occupancy is paid whether
            // or not the latency was hidden.
            self.counters.cycles_x1000 += self.bandwidth_per_line_x1000;
        }
        if self.fast_ok {
            self.last_line = addr >> self.caches[0].line_bits;
            self.last_l1_slot = l1_slot;
            self.last_tlb_slot = tlb_slot;
        }
    }

    /// Applies `k` same-line accesses in bulk: `k` issue costs, `k` L1
    /// and TLB clock ticks, and a final restamp of the resident slots.
    /// Identical to `k` calls through the same-line fast path.
    #[inline]
    fn bulk_same_line(&mut self, k: u64, kind: AccessKind) {
        match kind {
            AccessKind::Load => {
                self.counters.loads += k;
                self.counters.cycles_x1000 += k * self.mem_issue_x1000;
            }
            AccessKind::Store => {
                self.counters.stores += k;
                self.counters.cycles_x1000 += k * self.mem_issue_x1000;
            }
            AccessKind::Prefetch => {
                self.counters.prefetches += k;
                self.counters.cycles_x1000 += k * self.prefetch_issue_x1000;
            }
        }
        let l1 = &mut self.caches[0];
        l1.clock += k;
        l1.stamps[self.last_l1_slot as usize] = l1.clock;
        self.tlb.clock += k;
        self.tlb.stamps[self.last_tlb_slot as usize] = self.tlb.clock;
    }

    /// Simulates `count` accesses at `base, base + stride, base +
    /// 2·stride, …` — exactly equivalent to the per-access loop
    ///
    /// ```ignore
    /// for t in 0..count { h.access(base + t * stride, kind) }
    /// ```
    ///
    /// (or `access_tagged` when `tag` is given), but batched: only the
    /// first access to each cache line runs the full per-level lookup,
    /// and the remaining same-line accesses — there is nothing between
    /// them to evict the line, so they are L1/TLB hits by construction —
    /// are applied as one bulk update. For strides below the L1 line
    /// size the simulation cost is O(cache lines touched), not
    /// O(accesses); the set/way arithmetic per touched line is shared
    /// with the ordinary path.
    ///
    /// The caller must guarantee every address in the run is mapped
    /// (in-bounds); `stride` may be zero or negative.
    pub fn access_run(
        &mut self,
        base: u64,
        stride: i64,
        count: u64,
        kind: AccessKind,
        tag: Option<usize>,
    ) {
        let one = |h: &mut Self, addr: u64| match tag {
            Some(g) => h.access_tagged(addr, kind, g),
            None => h.access(addr, kind),
        };
        if !self.fast_ok {
            for t in 0..count {
                one(
                    self,
                    base.wrapping_add_signed(stride.wrapping_mul(t as i64)),
                );
            }
            return;
        }
        let line_mask = (1u64 << self.caches[0].line_bits) - 1;
        let mut t = 0u64;
        while t < count {
            let addr = base.wrapping_add_signed(stride.wrapping_mul(t as i64));
            one(self, addr);
            t += 1;
            if t >= count {
                break;
            }
            // How many of the next accesses stay on this line?
            let same = if stride == 0 {
                count - t
            } else if stride > 0 {
                ((line_mask - (addr & line_mask)) / stride as u64).min(count - t)
            } else {
                ((addr & line_mask) / stride.unsigned_abs()).min(count - t)
            };
            if same > 0 {
                self.bulk_same_line(same, kind);
                if let Some(g) = tag {
                    if !matches!(kind, AccessKind::Prefetch) {
                        self.counters.per_tag[g].accesses += same;
                    }
                }
                t += same;
            }
        }
    }

    /// Adds `n` floating-point operations to the cost.
    pub fn add_flops(&mut self, n: u64) {
        self.counters.flops += n;
        self.counters.cycles_x1000 += n * self.flop_x1000;
    }

    /// Adds `n` loop iterations' worth of control overhead.
    pub fn add_loop_iterations(&mut self, n: u64) {
        self.counters.loop_iterations += n;
        self.counters.cycles_x1000 += n * self.loop_overhead_x1000;
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Consumes the hierarchy and returns its counters.
    pub fn into_counters(self) -> Counters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_machine::CostModel;

    fn tiny_machine() -> MachineDesc {
        MachineDesc {
            name: "tiny".into(),
            clock_mhz: 100,
            fp_registers: 32,
            caches: vec![
                CacheDesc {
                    name: "L1".into(),
                    capacity_bytes: 256, // 8 lines of 32B
                    associativity: 2,
                    line_bytes: 32,
                    miss_penalty_cycles: 10,
                },
                CacheDesc {
                    name: "L2".into(),
                    capacity_bytes: 1024,
                    associativity: 2,
                    line_bytes: 64,
                    miss_penalty_cycles: 80,
                },
            ],
            tlb: TlbDesc {
                entries: 4,
                page_bytes: 256,
                miss_penalty_cycles: 50,
            },
            cost: CostModel::default(),
        }
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        for off in 0..4 {
            h.access(off * 8, AccessKind::Load);
        }
        assert_eq!(h.counters().loads, 4);
        assert_eq!(h.counters().cache_misses[0], 1);
        assert_eq!(h.counters().cache_misses[1], 1);
        assert_eq!(h.counters().tlb_misses, 1);
    }

    #[test]
    fn temporal_locality_within_capacity() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 8 distinct lines fill L1 exactly; second sweep all hits.
        for rep in 0..2 {
            for line in 0..8u64 {
                h.access(line * 32, AccessKind::Load);
            }
            if rep == 0 {
                assert_eq!(h.counters().cache_misses[0], 8);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 8, "second sweep hits");
    }

    #[test]
    fn capacity_misses_beyond_cache() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 16 lines cycled twice thrash the 8-line LRU L1 completely.
        for _ in 0..2 {
            for line in 0..16u64 {
                h.access(line * 32, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 32);
        // but the data (8 x 64B L2 lines) fits in the 16-line L2:
        // only the first sweep's compulsory misses show up there.
        assert_eq!(h.counters().cache_misses[1], 8);
    }

    #[test]
    fn conflict_misses_in_same_set() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // L1: 8 lines, 2-way => 4 sets, set stride = 128 B.
        // Three lines mapping to set 0 thrash a 2-way set.
        for _ in 0..10 {
            for k in 0..3u64 {
                h.access(k * 128, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 30, "every access conflicts");
    }

    #[test]
    fn two_way_avoids_conflict_that_direct_mapped_has() {
        let mut dm = tiny_machine();
        dm.caches[0].associativity = 1;
        let mut h2 = MemoryHierarchy::new(&tiny_machine());
        let mut h1 = MemoryHierarchy::new(&dm);
        // Two lines 256 B apart: same set in both configs.
        for _ in 0..10 {
            for k in 0..2u64 {
                h1.access(k * 256, AccessKind::Load);
                h2.access(k * 256, AccessKind::Load);
            }
        }
        assert_eq!(h1.counters().cache_misses[0], 20, "direct-mapped thrashes");
        assert_eq!(h2.counters().cache_misses[0], 2, "2-way keeps both");
    }

    #[test]
    fn store_is_write_allocate() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.access(0, AccessKind::Store);
        h.access(8, AccessKind::Load);
        assert_eq!(h.counters().stores, 1);
        assert_eq!(h.counters().cache_misses[0], 1, "load hits allocated line");
    }

    #[test]
    fn tlb_covers_four_pages() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 4 pages covered; a 5-page round-robin thrashes the LRU TLB.
        for _ in 0..3 {
            for p in 0..5u64 {
                h.access(p * 256, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().tlb_misses, 15);
    }

    #[test]
    fn prefetch_hides_stall_but_pays_bandwidth() {
        let m = tiny_machine();
        let mut with = MemoryHierarchy::new(&m);
        let mut without = MemoryHierarchy::new(&m);
        for line in 0..64u64 {
            with.access(line * 64 + 32, AccessKind::Prefetch);
            with.access(line * 64, AccessKind::Load);
            without.access(line * 64, AccessKind::Load);
        }
        let cw = with.counters();
        let cwo = without.counters();
        assert_eq!(cw.cache_misses[1], 0, "demand misses eliminated at L2");
        assert_eq!(cwo.cache_misses[1], 64);
        assert!(
            cw.cycles() < cwo.cycles(),
            "prefetch must be a net win here"
        );
        assert_eq!(cw.prefetch_fills[1], 64);
    }

    #[test]
    fn prefetch_counts_as_load_in_paper_metric() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.access(0, AccessKind::Load);
        h.access(4096, AccessKind::Prefetch);
        assert_eq!(h.counters().loads, 1);
        assert_eq!(h.counters().loads_incl_prefetch(), 2);
    }

    #[test]
    fn flops_and_mflops() {
        let m = tiny_machine();
        let mut h = MemoryHierarchy::new(&m);
        h.add_flops(1000);
        let c = h.into_counters();
        assert_eq!(c.flops, 1000);
        // 1000 flops at 0.5 cycles each = 500 cycles; 100 MHz clock.
        assert_eq!(c.cycles(), 500);
        assert!((c.mflops(100) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn loop_overhead_accumulates() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.add_loop_iterations(10);
        assert_eq!(h.counters().loop_iterations, 10);
        assert_eq!(h.counters().cycles(), 10);
    }

    #[test]
    fn empty_counters_mflops_is_zero() {
        let c = Counters::default();
        assert_eq!(c.mflops(1000), 0.0);
    }

    /// A deliberately naive re-implementation of the documented
    /// semantics (no MRU shortcut, no same-line fast path), used to
    /// check that the optimized paths are behaviour-preserving — down
    /// to the LRU stamps, whose influence shows up as eviction (miss)
    /// differences on long adversarial streams.
    mod naive {
        use super::super::{AccessKind, Counters};
        use eco_machine::MachineDesc;

        pub struct Model {
            line_bits: Vec<u32>,
            set_mask: Vec<u64>,
            ways: Vec<usize>,
            tags: Vec<Vec<u64>>,
            stamps: Vec<Vec<u64>>,
            clocks: Vec<u64>,
            miss_pen: Vec<u64>,
            page_bits: u32,
            tlb_pages: Vec<u64>,
            tlb_stamps: Vec<u64>,
            tlb_clock: u64,
            tlb_pen: u64,
            pub counters: Counters,
            mem_issue: u64,
            pf_issue: u64,
            bw_line: u64,
        }

        impl Model {
            pub fn new(m: &MachineDesc) -> Self {
                Model {
                    line_bits: m
                        .caches
                        .iter()
                        .map(|c| c.line_bytes.trailing_zeros())
                        .collect(),
                    set_mask: m.caches.iter().map(|c| c.num_sets() as u64 - 1).collect(),
                    ways: m.caches.iter().map(|c| c.associativity).collect(),
                    tags: m
                        .caches
                        .iter()
                        .map(|c| vec![u64::MAX; c.num_sets() * c.associativity])
                        .collect(),
                    stamps: m
                        .caches
                        .iter()
                        .map(|c| vec![0; c.num_sets() * c.associativity])
                        .collect(),
                    clocks: vec![0; m.caches.len()],
                    miss_pen: m
                        .caches
                        .iter()
                        .map(|c| c.miss_penalty_cycles * 1000)
                        .collect(),
                    page_bits: m.tlb.page_bytes.trailing_zeros(),
                    tlb_pages: vec![u64::MAX; m.tlb.entries],
                    tlb_stamps: vec![0; m.tlb.entries],
                    tlb_clock: 0,
                    tlb_pen: m.tlb.miss_penalty_cycles * 1000,
                    counters: Counters {
                        cache_misses: vec![0; m.caches.len()],
                        prefetch_fills: vec![0; m.caches.len()],
                        ..Default::default()
                    },
                    mem_issue: m.cost.mem_issue_cycles_x1000,
                    pf_issue: m.cost.prefetch_issue_cycles_x1000,
                    bw_line: m.cost.memory_bandwidth_cycles_per_line_x1000,
                }
            }

            fn cache_access(&mut self, level: usize, addr: u64) -> bool {
                let line = addr >> self.line_bits[level];
                let set = (line & self.set_mask[level]) as usize;
                let base = set * self.ways[level];
                self.clocks[level] += 1;
                let mut victim = base;
                let mut oldest = u64::MAX;
                for i in base..base + self.ways[level] {
                    if self.tags[level][i] == line {
                        self.stamps[level][i] = self.clocks[level];
                        return true;
                    }
                    if self.stamps[level][i] < oldest {
                        oldest = self.stamps[level][i];
                        victim = i;
                    }
                }
                self.tags[level][victim] = line;
                self.stamps[level][victim] = self.clocks[level];
                false
            }

            pub fn access(&mut self, addr: u64, kind: AccessKind) {
                let is_prefetch = matches!(kind, AccessKind::Prefetch);
                match kind {
                    AccessKind::Load => {
                        self.counters.loads += 1;
                        self.counters.cycles_x1000 += self.mem_issue;
                    }
                    AccessKind::Store => {
                        self.counters.stores += 1;
                        self.counters.cycles_x1000 += self.mem_issue;
                    }
                    AccessKind::Prefetch => {
                        self.counters.prefetches += 1;
                        self.counters.cycles_x1000 += self.pf_issue;
                    }
                }
                let page = addr >> self.page_bits;
                self.tlb_clock += 1;
                let mut hit = false;
                let mut victim = 0;
                let mut oldest = u64::MAX;
                for i in 0..self.tlb_pages.len() {
                    if self.tlb_pages[i] == page {
                        self.tlb_stamps[i] = self.tlb_clock;
                        hit = true;
                        break;
                    }
                    if self.tlb_stamps[i] < oldest {
                        oldest = self.tlb_stamps[i];
                        victim = i;
                    }
                }
                if !hit {
                    self.tlb_pages[victim] = page;
                    self.tlb_stamps[victim] = self.tlb_clock;
                    self.counters.tlb_misses += 1;
                    self.counters.cycles_x1000 += self.tlb_pen;
                }
                let mut filled = true;
                for level in 0..self.clocks.len() {
                    let hit = self.cache_access(level, addr);
                    if !hit {
                        if is_prefetch {
                            self.counters.prefetch_fills[level] += 1;
                        } else {
                            self.counters.cache_misses[level] += 1;
                            self.counters.cycles_x1000 += self.miss_pen[level];
                        }
                    } else {
                        filled = false;
                        break;
                    }
                }
                if filled {
                    self.counters.cycles_x1000 += self.bw_line;
                }
            }
        }
    }

    /// A small deterministic generator for access streams that mix
    /// strided runs (which exercise the fast path) with random jumps
    /// (which break it) and all three access kinds.
    fn pseudo_stream(seed: u64, len: usize, span: u64) -> Vec<(u64, AccessKind)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::with_capacity(len);
        let mut addr = 0u64;
        while out.len() < len {
            let r = next();
            let kind = match r % 10 {
                0..=5 => AccessKind::Load,
                6..=8 => AccessKind::Store,
                _ => AccessKind::Prefetch,
            };
            if r % 4 == 0 {
                addr = next() % span;
            }
            let stride = [0i64, 8, 8, 8, 16, 32, -8, 24][(next() % 8) as usize];
            let run = 1 + next() % 9;
            for _ in 0..run {
                out.push((addr % span, kind));
                addr = addr.wrapping_add_signed(stride) % span;
                if out.len() == len {
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn fast_paths_match_naive_model() {
        for seed in [3u64, 17, 92, 1234] {
            let m = tiny_machine();
            let mut fast = MemoryHierarchy::new(&m);
            let mut slow = naive::Model::new(&m);
            for (addr, kind) in pseudo_stream(seed, 4000, 16384) {
                fast.access(addr, kind);
                slow.access(addr, kind);
            }
            assert_eq!(fast.into_counters(), slow.counters, "seed {seed}");
        }
    }

    #[test]
    fn fast_paths_match_naive_model_on_real_machines() {
        for m in [
            MachineDesc::sgi_r10000().scaled(32),
            MachineDesc::ultrasparc_iie().scaled(32),
        ] {
            let mut fast = MemoryHierarchy::new(&m);
            let mut slow = naive::Model::new(&m);
            for (addr, kind) in pseudo_stream(7, 6000, 1 << 20) {
                fast.access(addr, kind);
                slow.access(addr, kind);
            }
            assert_eq!(fast.into_counters(), slow.counters, "machine {}", m.name);
        }
    }

    #[test]
    fn access_run_equals_per_access_loop() {
        let cases: &[(u64, i64, u64)] = &[
            (0, 8, 100),     // unit stride
            (12, 8, 1),      // single access
            (0, 8, 0),       // empty run
            (5, 0, 40),      // zero stride
            (40, 4, 17),     // sub-element stride
            (8192, -8, 64),  // descending
            (3, 32, 50),     // exactly one per line
            (0, 48, 33),     // line-crossing stride
            (100, 1000, 20), // page-crossing stride
        ];
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Prefetch] {
            for &(base, stride, count) in cases {
                let m = tiny_machine();
                let mut a = MemoryHierarchy::new(&m);
                let mut b = MemoryHierarchy::new(&m);
                // interleave with a warm-up so the run starts from a
                // non-trivial cache state
                for t in 0..32 {
                    a.access(t * 8, AccessKind::Load);
                    b.access(t * 8, AccessKind::Load);
                }
                a.access_run(base, stride, count, kind, None);
                for t in 0..count {
                    b.access(base.wrapping_add_signed(stride * t as i64), kind);
                }
                // and the post-run state must agree too: do a sweep that
                // is sensitive to LRU stamp differences
                for t in 0..64 {
                    a.access(t * 32, kind);
                    b.access(t * 32, kind);
                }
                assert_eq!(
                    a.into_counters(),
                    b.into_counters(),
                    "kind {kind:?} base {base} stride {stride} count {count}"
                );
            }
        }
    }

    #[test]
    fn access_run_tagged_equals_per_access_loop() {
        let m = tiny_machine();
        let mut a = MemoryHierarchy::new(&m);
        let mut b = MemoryHierarchy::new(&m);
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Prefetch] {
            a.access_run(64, 8, 50, kind, Some(1));
            for t in 0..50u64 {
                b.access_tagged(64 + t * 8, kind, 1);
            }
        }
        assert_eq!(a.into_counters(), b.into_counters());
    }

    #[test]
    fn tagged_accesses_attribute_misses() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // tag 0: one line, hit after first access; tag 1: thrashing.
        for i in 0..10u64 {
            h.access_tagged(0, AccessKind::Load, 0);
            h.access_tagged(4096 + i * 512, AccessKind::Load, 1);
        }
        let c = h.into_counters();
        assert_eq!(c.per_tag.len(), 2);
        assert_eq!(c.per_tag[0].accesses, 10);
        assert_eq!(c.per_tag[0].misses[0], 1);
        assert_eq!(c.per_tag[1].accesses, 10);
        assert_eq!(c.per_tag[1].misses[0], 10);
        // attribution is exhaustive
        assert_eq!(
            c.per_tag[0].misses[0] + c.per_tag[1].misses[0],
            c.cache_misses[0]
        );
        assert_eq!(
            c.per_tag[0].tlb_misses + c.per_tag[1].tlb_misses,
            c.tlb_misses
        );
    }
}
