//! Trace-driven memory-hierarchy simulator.
//!
//! This crate substitutes for the paper's measurement substrate (real SGI
//! R10000 / UltraSparc IIe hardware read through PAPI): it models a
//! multi-level set-associative cache hierarchy with LRU replacement, a
//! fully-associative TLB, software prefetch, and a cycle cost model, and
//! accumulates PAPI-like [`Counters`] (loads, per-level misses, TLB
//! misses, cycles).
//!
//! The executor in `eco-exec` walks an IR program and feeds every memory
//! access to [`MemoryHierarchy::access`]; flop and loop-overhead costs
//! are added through [`MemoryHierarchy::add_flops`] and
//! [`MemoryHierarchy::add_loop_iterations`].
//!
//! Modelling choices (documented deviations from real hardware):
//!
//! * Caches are virtually indexed off a flat address space and arrays are
//!   laid out contiguously, which matches the paper's footnote-1
//!   assumption of a well-behaved page-colouring OS.
//! * A software prefetch brings the line into every cache level
//!   immediately; it pays the issue cost and the memory *bandwidth*
//!   occupancy (if the line comes from memory) but no latency stall —
//!   i.e. prefetch hides latency but cannot create bandwidth.
//! * Demand misses stall for the full per-level penalty; write-backs are
//!   not modelled (stores are write-allocate, write-back, but dirty
//!   evictions are free).
//! * Per-level miss counters count *demand* (load/store) misses only,
//!   like PAPI's `PAPI_L1_DCM`; prefetch fills are counted separately.
//!
//! # Examples
//!
//! ```
//! use eco_cachesim::{AccessKind, MemoryHierarchy};
//! use eco_machine::MachineDesc;
//!
//! let mut h = MemoryHierarchy::new(&MachineDesc::sgi_r10000());
//! h.access(0, AccessKind::Load);     // cold miss
//! h.access(8, AccessKind::Load);     // same 32-byte line: hit
//! let c = h.counters();
//! assert_eq!(c.loads, 2);
//! assert_eq!(c.cache_misses[0], 1);
//! ```

use eco_machine::{CacheDesc, MachineDesc, TlbDesc};

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store (write-allocate).
    Store,
    /// A software prefetch (no stall, bandwidth + issue cost only).
    Prefetch,
}

/// PAPI-like event counters accumulated by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counters {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Software prefetch instructions issued.
    pub prefetches: u64,
    /// Demand misses per cache level (index 0 = L1).
    pub cache_misses: Vec<u64>,
    /// Lines filled by prefetches, per cache level.
    pub prefetch_fills: Vec<u64>,
    /// TLB misses (demand and prefetch).
    pub tlb_misses: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Loop iterations executed (for overhead costing).
    pub loop_iterations: u64,
    /// Total cycles, in milli-cycles (divide by 1000).
    pub cycles_x1000: u64,
    /// Optional per-tag attribution (see
    /// [`MemoryHierarchy::access_tagged`]); empty unless tags are used.
    pub per_tag: Vec<TagCounters>,
}

/// Per-tag (typically per-array) attribution counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TagCounters {
    /// Demand accesses (loads + stores) with this tag.
    pub accesses: u64,
    /// Demand misses per cache level with this tag.
    pub misses: Vec<u64>,
    /// TLB misses with this tag.
    pub tlb_misses: u64,
}

impl Counters {
    /// Total cycles (rounded down from milli-cycles).
    pub fn cycles(&self) -> u64 {
        self.cycles_x1000 / 1000
    }

    /// The paper's "Loads" column counts prefetch instructions too
    /// (compare mm4 and mm5 in Table 1).
    pub fn loads_incl_prefetch(&self) -> u64 {
        self.loads + self.prefetches
    }

    /// Achieved MFLOPS given a clock rate in MHz.
    ///
    /// Returns 0.0 for an empty run.
    pub fn mflops(&self, clock_mhz: u64) -> f64 {
        if self.cycles_x1000 == 0 {
            return 0.0;
        }
        // flops / seconds = flops * clock_hz / cycles
        self.flops as f64 * clock_mhz as f64 * 1000.0 / self.cycles_x1000 as f64
    }

    /// Accumulates `other` into `self` (event counters add; per-level
    /// vectors extend to the longer of the two), so call sites summing
    /// measurements over several runs need no field-by-field copying.
    pub fn merge(&mut self, other: &Counters) {
        fn add_levels(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.prefetches += other.prefetches;
        add_levels(&mut self.cache_misses, &other.cache_misses);
        add_levels(&mut self.prefetch_fills, &other.prefetch_fills);
        self.tlb_misses += other.tlb_misses;
        self.flops += other.flops;
        self.loop_iterations += other.loop_iterations;
        self.cycles_x1000 += other.cycles_x1000;
        if self.per_tag.len() < other.per_tag.len() {
            self.per_tag
                .resize(other.per_tag.len(), TagCounters::default());
        }
        for (a, b) in self.per_tag.iter_mut().zip(&other.per_tag) {
            a.accesses += b.accesses;
            add_levels(&mut a.misses, &b.misses);
            a.tlb_misses += b.tlb_misses;
        }
    }
}

const INVALID: u64 = u64::MAX;

/// One set-associative cache level with LRU replacement.
#[derive(Debug, Clone)]
struct Cache {
    line_bits: u32,
    set_mask: u64,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    miss_penalty_x1000: u64,
}

impl Cache {
    fn new(desc: &CacheDesc) -> Self {
        let sets = desc.num_sets();
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        assert!(
            desc.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            line_bits: desc.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            ways: desc.associativity,
            tags: vec![INVALID; sets * desc.associativity],
            stamps: vec![0; sets * desc.associativity],
            clock: 0,
            miss_penalty_x1000: desc.miss_penalty_cycles * 1000,
        }
    }

    /// Looks up `addr`, filling on miss. Returns `true` on hit.
    #[inline]
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_bits;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.clock += 1;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in base..base + self.ways {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        false
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug, Clone)]
struct Tlb {
    page_bits: u32,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    miss_penalty_x1000: u64,
}

impl Tlb {
    fn new(desc: &TlbDesc) -> Self {
        assert!(
            desc.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            page_bits: desc.page_bytes.trailing_zeros(),
            pages: vec![INVALID; desc.entries],
            stamps: vec![0; desc.entries],
            clock: 0,
            miss_penalty_x1000: desc.miss_penalty_cycles * 1000,
        }
    }

    #[inline]
    fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_bits;
        self.clock += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.pages.len() {
            if self.pages[i] == page {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        false
    }
}

/// The full simulated memory hierarchy for one machine.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    caches: Vec<Cache>,
    tlb: Tlb,
    counters: Counters,
    mem_issue_x1000: u64,
    prefetch_issue_x1000: u64,
    flop_x1000: u64,
    loop_overhead_x1000: u64,
    bandwidth_per_line_x1000: u64,
}

impl MemoryHierarchy {
    /// A cold hierarchy for the given machine.
    pub fn new(machine: &MachineDesc) -> Self {
        let caches: Vec<Cache> = machine.caches.iter().map(Cache::new).collect();
        MemoryHierarchy {
            tlb: Tlb::new(&machine.tlb),
            counters: Counters {
                cache_misses: vec![0; caches.len()],
                prefetch_fills: vec![0; caches.len()],
                ..Default::default()
            },
            caches,
            mem_issue_x1000: machine.cost.mem_issue_cycles_x1000,
            prefetch_issue_x1000: machine.cost.prefetch_issue_cycles_x1000,
            flop_x1000: machine.cost.flop_cycles_x1000,
            loop_overhead_x1000: machine.cost.loop_overhead_cycles_x1000,
            bandwidth_per_line_x1000: machine.cost.memory_bandwidth_cycles_per_line_x1000,
        }
    }

    /// Simulates one access to byte address `addr`, attributing misses
    /// to `tag` (e.g. the array id). Tags grow the per-tag table on
    /// demand; use [`MemoryHierarchy::access`] when attribution is not
    /// needed.
    pub fn access_tagged(&mut self, addr: u64, kind: AccessKind, tag: usize) {
        let levels = self.caches.len();
        if self.counters.per_tag.len() <= tag {
            self.counters.per_tag.resize_with(tag + 1, || TagCounters {
                accesses: 0,
                misses: vec![0; levels],
                tlb_misses: 0,
            });
        }
        let before: Vec<u64> = self.counters.cache_misses.clone();
        let tlb_before = self.counters.tlb_misses;
        self.access(addr, kind);
        let t = &mut self.counters.per_tag[tag];
        if !matches!(kind, AccessKind::Prefetch) {
            t.accesses += 1;
        }
        for (i, b) in before.iter().enumerate() {
            t.misses[i] += self.counters.cache_misses[i] - b;
        }
        t.tlb_misses += self.counters.tlb_misses - tlb_before;
    }

    /// Simulates one access to byte address `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        let is_prefetch = matches!(kind, AccessKind::Prefetch);
        match kind {
            AccessKind::Load => {
                self.counters.loads += 1;
                self.counters.cycles_x1000 += self.mem_issue_x1000;
            }
            AccessKind::Store => {
                self.counters.stores += 1;
                self.counters.cycles_x1000 += self.mem_issue_x1000;
            }
            AccessKind::Prefetch => {
                self.counters.prefetches += 1;
                self.counters.cycles_x1000 += self.prefetch_issue_x1000;
            }
        }
        if !self.tlb.access(addr) {
            self.counters.tlb_misses += 1;
            self.counters.cycles_x1000 += self.tlb.miss_penalty_x1000;
        }
        let mut filled_from_memory = true;
        for (i, cache) in self.caches.iter_mut().enumerate() {
            let hit = cache.access(addr);
            if !hit {
                if is_prefetch {
                    self.counters.prefetch_fills[i] += 1;
                } else {
                    self.counters.cache_misses[i] += 1;
                    self.counters.cycles_x1000 += cache.miss_penalty_x1000;
                }
            }
            if hit {
                filled_from_memory = false;
                break;
            }
        }
        if filled_from_memory {
            // The line came from main memory: bus occupancy is paid whether
            // or not the latency was hidden.
            self.counters.cycles_x1000 += self.bandwidth_per_line_x1000;
        }
    }

    /// Adds `n` floating-point operations to the cost.
    pub fn add_flops(&mut self, n: u64) {
        self.counters.flops += n;
        self.counters.cycles_x1000 += n * self.flop_x1000;
    }

    /// Adds `n` loop iterations' worth of control overhead.
    pub fn add_loop_iterations(&mut self, n: u64) {
        self.counters.loop_iterations += n;
        self.counters.cycles_x1000 += n * self.loop_overhead_x1000;
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Consumes the hierarchy and returns its counters.
    pub fn into_counters(self) -> Counters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_machine::CostModel;

    fn tiny_machine() -> MachineDesc {
        MachineDesc {
            name: "tiny".into(),
            clock_mhz: 100,
            fp_registers: 32,
            caches: vec![
                CacheDesc {
                    name: "L1".into(),
                    capacity_bytes: 256, // 8 lines of 32B
                    associativity: 2,
                    line_bytes: 32,
                    miss_penalty_cycles: 10,
                },
                CacheDesc {
                    name: "L2".into(),
                    capacity_bytes: 1024,
                    associativity: 2,
                    line_bytes: 64,
                    miss_penalty_cycles: 80,
                },
            ],
            tlb: TlbDesc {
                entries: 4,
                page_bytes: 256,
                miss_penalty_cycles: 50,
            },
            cost: CostModel::default(),
        }
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        for off in 0..4 {
            h.access(off * 8, AccessKind::Load);
        }
        assert_eq!(h.counters().loads, 4);
        assert_eq!(h.counters().cache_misses[0], 1);
        assert_eq!(h.counters().cache_misses[1], 1);
        assert_eq!(h.counters().tlb_misses, 1);
    }

    #[test]
    fn temporal_locality_within_capacity() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 8 distinct lines fill L1 exactly; second sweep all hits.
        for rep in 0..2 {
            for line in 0..8u64 {
                h.access(line * 32, AccessKind::Load);
            }
            if rep == 0 {
                assert_eq!(h.counters().cache_misses[0], 8);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 8, "second sweep hits");
    }

    #[test]
    fn capacity_misses_beyond_cache() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 16 lines cycled twice thrash the 8-line LRU L1 completely.
        for _ in 0..2 {
            for line in 0..16u64 {
                h.access(line * 32, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 32);
        // but the data (8 x 64B L2 lines) fits in the 16-line L2:
        // only the first sweep's compulsory misses show up there.
        assert_eq!(h.counters().cache_misses[1], 8);
    }

    #[test]
    fn conflict_misses_in_same_set() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // L1: 8 lines, 2-way => 4 sets, set stride = 128 B.
        // Three lines mapping to set 0 thrash a 2-way set.
        for _ in 0..10 {
            for k in 0..3u64 {
                h.access(k * 128, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 30, "every access conflicts");
    }

    #[test]
    fn two_way_avoids_conflict_that_direct_mapped_has() {
        let mut dm = tiny_machine();
        dm.caches[0].associativity = 1;
        let mut h2 = MemoryHierarchy::new(&tiny_machine());
        let mut h1 = MemoryHierarchy::new(&dm);
        // Two lines 256 B apart: same set in both configs.
        for _ in 0..10 {
            for k in 0..2u64 {
                h1.access(k * 256, AccessKind::Load);
                h2.access(k * 256, AccessKind::Load);
            }
        }
        assert_eq!(h1.counters().cache_misses[0], 20, "direct-mapped thrashes");
        assert_eq!(h2.counters().cache_misses[0], 2, "2-way keeps both");
    }

    #[test]
    fn store_is_write_allocate() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.access(0, AccessKind::Store);
        h.access(8, AccessKind::Load);
        assert_eq!(h.counters().stores, 1);
        assert_eq!(h.counters().cache_misses[0], 1, "load hits allocated line");
    }

    #[test]
    fn tlb_covers_four_pages() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 4 pages covered; a 5-page round-robin thrashes the LRU TLB.
        for _ in 0..3 {
            for p in 0..5u64 {
                h.access(p * 256, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().tlb_misses, 15);
    }

    #[test]
    fn prefetch_hides_stall_but_pays_bandwidth() {
        let m = tiny_machine();
        let mut with = MemoryHierarchy::new(&m);
        let mut without = MemoryHierarchy::new(&m);
        for line in 0..64u64 {
            with.access(line * 64 + 32, AccessKind::Prefetch);
            with.access(line * 64, AccessKind::Load);
            without.access(line * 64, AccessKind::Load);
        }
        let cw = with.counters();
        let cwo = without.counters();
        assert_eq!(cw.cache_misses[1], 0, "demand misses eliminated at L2");
        assert_eq!(cwo.cache_misses[1], 64);
        assert!(
            cw.cycles() < cwo.cycles(),
            "prefetch must be a net win here"
        );
        assert_eq!(cw.prefetch_fills[1], 64);
    }

    #[test]
    fn prefetch_counts_as_load_in_paper_metric() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.access(0, AccessKind::Load);
        h.access(4096, AccessKind::Prefetch);
        assert_eq!(h.counters().loads, 1);
        assert_eq!(h.counters().loads_incl_prefetch(), 2);
    }

    #[test]
    fn flops_and_mflops() {
        let m = tiny_machine();
        let mut h = MemoryHierarchy::new(&m);
        h.add_flops(1000);
        let c = h.into_counters();
        assert_eq!(c.flops, 1000);
        // 1000 flops at 0.5 cycles each = 500 cycles; 100 MHz clock.
        assert_eq!(c.cycles(), 500);
        assert!((c.mflops(100) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn loop_overhead_accumulates() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.add_loop_iterations(10);
        assert_eq!(h.counters().loop_iterations, 10);
        assert_eq!(h.counters().cycles(), 10);
    }

    #[test]
    fn empty_counters_mflops_is_zero() {
        let c = Counters::default();
        assert_eq!(c.mflops(1000), 0.0);
    }

    #[test]
    fn tagged_accesses_attribute_misses() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // tag 0: one line, hit after first access; tag 1: thrashing.
        for i in 0..10u64 {
            h.access_tagged(0, AccessKind::Load, 0);
            h.access_tagged(4096 + i * 512, AccessKind::Load, 1);
        }
        let c = h.into_counters();
        assert_eq!(c.per_tag.len(), 2);
        assert_eq!(c.per_tag[0].accesses, 10);
        assert_eq!(c.per_tag[0].misses[0], 1);
        assert_eq!(c.per_tag[1].accesses, 10);
        assert_eq!(c.per_tag[1].misses[0], 10);
        // attribution is exhaustive
        assert_eq!(
            c.per_tag[0].misses[0] + c.per_tag[1].misses[0],
            c.cache_misses[0]
        );
        assert_eq!(
            c.per_tag[0].tlb_misses + c.per_tag[1].tlb_misses,
            c.tlb_misses
        );
    }
}
